//! Management operations over a churning overlay: §4.2's qualitative
//! claims as assertions at reduced scale — driven through the
//! `avmem_scenario` subsystem, so every experiment here is a declarative
//! spec plus assertions over its report (and doubles as coverage for the
//! scenario runner's operation plumbing).
//!
//! A/B comparisons share one seed: arrivals, target draws and initiator
//! picks come from counter-keyed streams, so two specs differing only in
//! (say) forwarding policy see identical workloads.

use avmem_scenario::{
    builtin, AssignmentSpec, BandSpec, ChurnSpec, MaintenanceModeSpec, OracleSpec, PolicySpec,
    PredicateSpec,
    ScenarioReport, ScenarioRunner, ScenarioSpec, ScopeSpec, TargetMix, TargetSpec,
};

/// Base experiment: the 300-host Overnet population the original harness
/// tests warmed for 24 h, with converged maintenance and hourly rebuilds.
fn base_spec(seed: u64) -> ScenarioSpec {
    let mut spec = builtin::builtin("smoke").expect("smoke builtin");
    spec.name = "ops-over-churn".into();
    spec.seed = seed;
    spec.churn = ChurnSpec::Overnet { hosts: 300, days: 2 };
    // Rebuild on the 20-minute trace-slot lattice: operations then see an
    // overlay no staler than the paper's snapshot experiments do.
    spec.maintenance.mode = MaintenanceModeSpec::Converged {
        rebuild_every_mins: 20,
    };
    spec.warmup_mins = 24 * 60;
    spec.duration_mins = 120;
    spec.health_every_mins = 60;
    spec.workload.ops_per_hour = 40.0;
    spec.workload.anycast_fraction = 1.0;
    spec.workload.policy = PolicySpec::Greedy;
    spec.workload.scope = ScopeSpec::Both;
    spec.workload.initiators = BandSpec::Mid;
    spec.workload.targets = vec![TargetMix {
        weight: 1.0,
        target: TargetSpec::Range { lo: 0.85, hi: 0.95 },
    }];
    spec
}

fn run(spec: ScenarioSpec) -> ScenarioReport {
    ScenarioRunner::new(spec)
        .expect("spec validates")
        .run()
        .expect("scenario runs")
}

#[test]
fn easy_range_anycast_mostly_one_hop() {
    // Fig. 7: MID → [0.85, 0.95] succeeds essentially always, within ~1
    // hop for variants using the vertical sliver. Operations fire at
    // arbitrary instants of the churning trace (not at the snapshot
    // moment the original harness test used), so plain greedy loses a
    // few messages to just-went-offline next-hops; the acknowledged
    // retried-greedy variant carries the "essentially always" claim.
    let mut spec = base_spec(2);
    spec.workload.policy = PolicySpec::RetriedGreedy { retries: 8 };
    let report = run(spec);
    let a = &report.anycast;
    assert!(a.sent >= 20, "only {} anycasts fired", a.sent);
    assert!(
        a.delivery_rate() >= 0.9,
        "only {}/{} delivered",
        a.delivered,
        a.sent
    );
    // Paper (442 online nodes): w.h.p. one hop. At ~120 online the
    // vertical slivers are smaller, so allow some two-hop deliveries.
    let within_one_hop = a.hops_histogram[0] + a.hops_histogram[1];
    assert!(
        within_one_hop as f64 >= 0.7 * a.delivered as f64,
        "only {}/{} within one hop",
        within_one_hop,
        a.delivered
    );
}

#[test]
fn hs_only_needs_more_hops_than_vs() {
    // Fig. 7's qualitative point: HS-only messages crawl through
    // availability space; VS/HS+VS jump. Same seed ⇒ same workload.
    let mut hs_spec = base_spec(2);
    hs_spec.workload.scope = ScopeSpec::Hs;
    let hs = run(hs_spec);
    let both = run(base_spec(2));
    assert!(both.anycast.delivered > 0);
    // HS-only either delivers in more hops or fails much more often.
    let hs_worse = hs.anycast.delivered == 0
        || hs.anycast.mean_hops() > both.anycast.mean_hops()
        || hs.anycast.delivered < both.anycast.delivered / 2;
    assert!(
        hs_worse,
        "HS-only ({} delivered, mean {:.2} hops) should be worse than HS+VS ({}, {:.2})",
        hs.anycast.delivered,
        hs.anycast.mean_hops(),
        both.anycast.delivered,
        both.anycast.mean_hops()
    );
}

#[test]
fn harsh_targets_reduce_delivery() {
    // Fig. 8: lower-availability targets have lower success rates.
    let mut easy_spec = base_spec(3);
    easy_spec.workload.initiators = BandSpec::High;
    let mut harsh_spec = easy_spec.clone();
    harsh_spec.workload.targets = vec![TargetMix {
        weight: 1.0,
        target: TargetSpec::Range { lo: 0.15, hi: 0.25 },
    }];
    let easy = run(easy_spec);
    let harsh = run(harsh_spec);
    assert!(easy.anycast.sent > 0 && harsh.anycast.sent > 0);
    assert!(
        harsh.anycast.delivery_rate() <= easy.anycast.delivery_rate(),
        "harsh target rate {} should not beat easy {}",
        harsh.anycast.delivery_rate(),
        easy.anycast.delivery_rate()
    );
}

#[test]
fn retries_improve_harsh_delivery() {
    // Fig. 9: retried-greedy recovers deliveries that plain greedy loses
    // to offline next-hops.
    let mut plain_spec = base_spec(4);
    plain_spec.workload.initiators = BandSpec::High;
    plain_spec.workload.targets = vec![TargetMix {
        weight: 1.0,
        target: TargetSpec::Range { lo: 0.15, hi: 0.25 },
    }];
    plain_spec.workload.ops_per_hour = 60.0;
    let mut retried_spec = plain_spec.clone();
    retried_spec.workload.policy = PolicySpec::RetriedGreedy { retries: 8 };
    let plain = run(plain_spec);
    let retried = run(retried_spec);
    assert!(
        retried.anycast.delivery_rate() >= plain.anycast.delivery_rate(),
        "retried {} should be at least plain {}",
        retried.anycast.delivery_rate(),
        plain.anycast.delivery_rate()
    );
}

#[test]
fn avmem_beats_random_overlay_on_harsh_anycast() {
    // Figs. 9 vs 10: "overlays based on AVMEM predicates give a higher
    // success rate than random graphs". The paper's baseline is a
    // SCAMP/CYCLON-like overlay with O(log N) uniform neighbors — the
    // online population here is ~120, so 2·ln N ≈ 10.
    let mut avmem_spec = base_spec(5);
    avmem_spec.workload.initiators = BandSpec::High;
    avmem_spec.workload.policy = PolicySpec::RetriedGreedy { retries: 8 };
    avmem_spec.workload.ops_per_hour = 60.0;
    avmem_spec.workload.targets = vec![TargetMix {
        weight: 1.0,
        target: TargetSpec::Range { lo: 0.15, hi: 0.25 },
    }];
    let mut random_spec = avmem_spec.clone();
    random_spec.predicate = PredicateSpec::Random { degree: 10.0 };
    let avmem = run(avmem_spec);
    let random = run(random_spec);
    assert!(
        avmem.anycast.delivery_rate() >= random.anycast.delivery_rate(),
        "AVMEM rate {} should be at least random-overlay rate {}",
        avmem.anycast.delivery_rate(),
        random.anycast.delivery_rate()
    );
}

#[test]
fn flood_is_reliable_and_gossip_is_cheaper() {
    // Figs. 11/13: flooding reaches >90% of the range; gossip trades
    // reliability for messages.
    let mut flood_spec = base_spec(6);
    flood_spec.workload.anycast_fraction = 0.0;
    flood_spec.workload.policy = PolicySpec::RetriedGreedy { retries: 8 };
    flood_spec.workload.initiators = BandSpec::High;
    flood_spec.workload.ops_per_hour = 10.0;
    flood_spec.workload.targets = vec![TargetMix {
        weight: 1.0,
        target: TargetSpec::Threshold { min: 0.7 },
    }];
    let mut gossip_spec = flood_spec.clone();
    gossip_spec.workload.multicast = avmem_scenario::MulticastSpec::Gossip {
        fanout: 5,
        rounds: 2,
        period_secs: 1,
    };
    let flood = run(flood_spec);
    let gossip = run(gossip_spec);
    assert!(flood.multicast.sent > 0, "no multicasts fired");
    assert!(
        flood.multicast.mean_reliability() > 0.85,
        "flood reliability {:.2}",
        flood.multicast.mean_reliability()
    );
    assert!(
        gossip.multicast.total_messages < flood.multicast.total_messages,
        "gossip {} messages should undercut flood {}",
        gossip.multicast.total_messages,
        flood.multicast.total_messages
    );
}

#[test]
fn multicast_spam_stays_low_with_exact_oracle() {
    // Fig. 12: spam ratio below ~8% in most scenarios; with an exact
    // oracle the only spam source is believed-vs-true divergence, which
    // is zero here.
    let mut spec = base_spec(7);
    spec.workload.anycast_fraction = 0.0;
    spec.workload.policy = PolicySpec::RetriedGreedy { retries: 8 };
    spec.workload.initiators = BandSpec::High;
    spec.workload.ops_per_hour = 10.0;
    spec.workload.targets = vec![TargetMix {
        weight: 1.0,
        target: TargetSpec::Range { lo: 0.7, hi: 0.9 },
    }];
    let report = run(spec);
    assert!(
        report.multicast.mean_spam() <= 0.01,
        "spam {} with exact oracle",
        report.multicast.mean_spam()
    );
}

#[test]
fn full_stack_event_driven_avmon_operations() {
    // Everything real at once: CYCLON shuffling feeds discovery, AVMON
    // pings produce the availability estimates, refresh keeps lists
    // honest — and operations still work on top, firing between live
    // maintenance cohorts. This is the paper's actual deployment story,
    // not the converged shortcut.
    let mut spec = base_spec(9);
    spec.churn = ChurnSpec::Overnet { hosts: 100, days: 1 };
    spec.maintenance.mode = MaintenanceModeSpec::EventDriven {
        protocol_secs: 60,
        refresh_mins: 20,
    };
    spec.oracle = OracleSpec::Avmon {
        assignment: AssignmentSpec::AllPairs,
    };
    spec.warmup_mins = 14 * 60;
    spec.duration_mins = 120;
    spec.workload.policy = PolicySpec::RetriedGreedy { retries: 8 };
    spec.workload.initiators = BandSpec::Mid;
    spec.workload.targets = vec![TargetMix {
        weight: 1.0,
        target: TargetSpec::Threshold { min: 0.6 },
    }];
    let report = run(spec);
    assert!(
        report.health.last().expect("health sampled").mean_degree > 1.0,
        "event-driven + AVMON built no overlay (degree {})",
        report.health.last().unwrap().mean_degree
    );
    let a = &report.anycast;
    assert!(a.sent > 10, "no initiators online");
    assert!(
        a.delivered * 2 > a.sent,
        "full stack delivered only {}/{}",
        a.delivered,
        a.sent
    );
}

#[test]
fn threshold_and_range_variants_agree() {
    // A threshold b behaves like the range [b, 1.0] (§3.2).
    let mut threshold_spec = base_spec(8);
    threshold_spec.workload.targets = vec![TargetMix {
        weight: 1.0,
        target: TargetSpec::Threshold { min: 0.8 },
    }];
    let mut range_spec = base_spec(8);
    range_spec.workload.targets = vec![TargetMix {
        weight: 1.0,
        target: TargetSpec::Range { lo: 0.8, hi: 1.0 },
    }];
    let threshold = run(threshold_spec);
    let range = run(range_spec);
    let diff =
        (threshold.anycast.delivered as i64 - range.anycast.delivered as i64).abs();
    assert!(
        diff <= 6,
        "threshold {} vs range {}",
        threshold.anycast.delivered,
        range.anycast.delivered
    );
}

#[test]
fn reports_render_without_panicking() {
    // The rendering paths over a real report (text and JSON) stay sound.
    let report = run(base_spec(10));
    let text = report.render_text();
    assert!(text.contains("anycast"));
    let json = report.render_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
