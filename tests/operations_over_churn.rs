//! Management operations over a churning overlay: §4.2's qualitative
//! claims as assertions at reduced scale.

use avmem::harness::{AvmemSim, InitiatorBand, PredicateChoice, SimConfig};
use avmem::ops::{
    AnycastConfig, AvailabilityTarget, ForwardPolicy, MulticastConfig, MulticastStrategy,
};
use avmem::SliverScope;
use avmem_sim::SimDuration;
use avmem_trace::OvernetModel;

fn warmed(seed: u64) -> AvmemSim {
    let trace = OvernetModel::default().hosts(300).days(2).generate(53);
    let mut sim = AvmemSim::new(trace, SimConfig::paper_default(seed));
    sim.warm_up(SimDuration::from_hours(24));
    sim
}

fn anycast_success_rate(
    sim: &mut AvmemSim,
    band: InitiatorBand,
    target: AvailabilityTarget,
    policy: ForwardPolicy,
    scope: SliverScope,
    tries: usize,
) -> (usize, usize) {
    let mut delivered = 0;
    let mut sent = 0;
    for _ in 0..tries {
        let Some(initiator) = sim.random_online_initiator(band) else {
            continue;
        };
        sent += 1;
        let outcome = sim.anycast(initiator, target, AnycastConfig { policy, scope, ttl: 6 });
        if outcome.is_delivered() {
            delivered += 1;
        }
    }
    (delivered, sent)
}

#[test]
fn easy_range_anycast_mostly_one_hop() {
    // Fig. 7: MID → [0.85, 0.95] succeeds essentially always, within ~1
    // hop for variants using the vertical sliver.
    let mut sim = warmed(1);
    let target = AvailabilityTarget::range(0.85, 0.95);
    let mut one_hop = 0;
    let mut delivered = 0;
    let mut sent = 0;
    for _ in 0..40 {
        let Some(initiator) = sim.random_online_initiator(InitiatorBand::Mid) else {
            continue;
        };
        sent += 1;
        let outcome = sim.anycast(initiator, target, AnycastConfig::paper_default());
        if outcome.is_delivered() {
            delivered += 1;
            if outcome.hops <= 1 {
                one_hop += 1;
            }
        }
    }
    assert!(sent >= 20);
    assert!(
        delivered as f64 >= 0.9 * sent as f64,
        "only {delivered}/{sent} delivered"
    );
    // Paper (442 online nodes): w.h.p. one hop. At ~120 online the
    // vertical slivers are smaller, so allow some two-hop deliveries.
    assert!(
        one_hop as f64 >= 0.7 * delivered as f64,
        "only {one_hop}/{delivered} within one hop"
    );
}

#[test]
fn hs_only_needs_more_hops_than_vs() {
    // Fig. 7's qualitative point: HS-only messages crawl through
    // availability space; VS/HS+VS jump.
    let mut sim = warmed(2);
    let target = AvailabilityTarget::range(0.85, 0.95);
    let mut hops_hs = Vec::new();
    let mut hops_both = Vec::new();
    for _ in 0..60 {
        let Some(initiator) = sim.random_online_initiator(InitiatorBand::Mid) else {
            continue;
        };
        let hs = sim.anycast(
            initiator,
            target,
            AnycastConfig {
                policy: ForwardPolicy::Greedy,
                scope: SliverScope::HsOnly,
                ttl: 6,
            },
        );
        let both = sim.anycast(
            initiator,
            target,
            AnycastConfig {
                policy: ForwardPolicy::Greedy,
                scope: SliverScope::Both,
                ttl: 6,
            },
        );
        if hs.is_delivered() {
            hops_hs.push(hs.hops as f64);
        }
        if both.is_delivered() {
            hops_both.push(both.hops as f64);
        }
    }
    assert!(!hops_both.is_empty());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    // HS-only either delivers in more hops or fails much more often.
    let hs_worse = hops_hs.is_empty()
        || mean(&hops_hs) > mean(&hops_both)
        || hops_hs.len() < hops_both.len() / 2;
    assert!(
        hs_worse,
        "HS-only ({} delivered, mean {:.2} hops) should be worse than HS+VS ({}, {:.2})",
        hops_hs.len(),
        mean(&hops_hs),
        hops_both.len(),
        mean(&hops_both)
    );
}

#[test]
fn harsh_targets_reduce_delivery() {
    // Fig. 8: lower-availability targets have lower success rates.
    let mut sim = warmed(3);
    let (easy, easy_sent) = anycast_success_rate(
        &mut sim,
        InitiatorBand::High,
        AvailabilityTarget::range(0.85, 0.95),
        ForwardPolicy::Greedy,
        SliverScope::Both,
        40,
    );
    let (harsh, harsh_sent) = anycast_success_rate(
        &mut sim,
        InitiatorBand::High,
        AvailabilityTarget::range(0.15, 0.25),
        ForwardPolicy::Greedy,
        SliverScope::Both,
        40,
    );
    assert!(easy_sent > 0 && harsh_sent > 0);
    let easy_rate = easy as f64 / easy_sent as f64;
    let harsh_rate = harsh as f64 / harsh_sent as f64;
    assert!(
        harsh_rate <= easy_rate,
        "harsh target rate {harsh_rate} should not beat easy {easy_rate}"
    );
}

#[test]
fn retries_improve_harsh_delivery() {
    // Fig. 9: retried-greedy recovers deliveries that plain greedy loses
    // to offline next-hops.
    let mut sim = warmed(4);
    let target = AvailabilityTarget::range(0.15, 0.25);
    let (plain, plain_sent) = anycast_success_rate(
        &mut sim,
        InitiatorBand::High,
        target,
        ForwardPolicy::Greedy,
        SliverScope::Both,
        60,
    );
    let (retried, retried_sent) = anycast_success_rate(
        &mut sim,
        InitiatorBand::High,
        target,
        ForwardPolicy::RetriedGreedy { retries: 8 },
        SliverScope::Both,
        60,
    );
    let plain_rate = plain as f64 / plain_sent.max(1) as f64;
    let retried_rate = retried as f64 / retried_sent.max(1) as f64;
    assert!(
        retried_rate >= plain_rate,
        "retried {retried_rate} should be at least plain {plain_rate}"
    );
}

#[test]
fn avmem_beats_random_overlay_on_harsh_anycast() {
    // Figs. 9 vs 10: "overlays based on AVMEM predicates give a higher
    // success rate than random graphs". The paper's baseline is a
    // SCAMP/CYCLON-like overlay with O(log N) uniform neighbors.
    let trace = OvernetModel::default().hosts(300).days(2).generate(53);
    let mut avmem_sim = AvmemSim::new(trace.clone(), SimConfig::paper_default(5));
    avmem_sim.warm_up(SimDuration::from_hours(24));
    let degree = 2.0 * avmem_sim.n_star().ln();

    let mut random_cfg = SimConfig::paper_default(5);
    random_cfg.predicate = PredicateChoice::Random {
        expected_degree: degree,
    };
    let mut random_sim = AvmemSim::new(trace, random_cfg);
    random_sim.warm_up(SimDuration::from_hours(24));

    let target = AvailabilityTarget::range(0.15, 0.25);
    let policy = ForwardPolicy::RetriedGreedy { retries: 8 };
    let (a_del, a_sent) = anycast_success_rate(
        &mut avmem_sim,
        InitiatorBand::High,
        target,
        policy,
        SliverScope::Both,
        80,
    );
    let (r_del, r_sent) = anycast_success_rate(
        &mut random_sim,
        InitiatorBand::High,
        target,
        policy,
        SliverScope::Both,
        80,
    );
    let avmem_rate = a_del as f64 / a_sent.max(1) as f64;
    let random_rate = r_del as f64 / r_sent.max(1) as f64;
    assert!(
        avmem_rate >= random_rate,
        "AVMEM rate {avmem_rate} should be at least random-overlay rate {random_rate}"
    );
}

#[test]
fn flood_is_reliable_and_gossip_is_cheaper() {
    // Figs. 11/13: flooding reaches >90% of the range; gossip trades
    // reliability for messages.
    let mut sim = warmed(6);
    let target = AvailabilityTarget::threshold(0.7);
    let mut flood_reliability = Vec::new();
    let mut flood_messages = 0u64;
    let mut gossip_reliability = Vec::new();
    let mut gossip_messages = 0u64;
    for _ in 0..10 {
        let Some(initiator) = sim.random_online_initiator(InitiatorBand::High) else {
            continue;
        };
        let flood = sim.multicast(initiator, target, MulticastConfig::paper_default());
        {
            let world = sim.world();
            if let Some(r) = flood.reliability(&world, target) {
                flood_reliability.push(r);
            }
        }
        flood_messages += u64::from(flood.messages);

        let gossip = sim.multicast(
            initiator,
            target,
            MulticastConfig {
                strategy: MulticastStrategy::paper_gossip(),
                ..MulticastConfig::paper_default()
            },
        );
        let world = sim.world();
        if let Some(r) = gossip.reliability(&world, target) {
            gossip_reliability.push(r);
        }
        gossip_messages += u64::from(gossip.messages);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&flood_reliability) > 0.85,
        "flood reliability {:.2}",
        mean(&flood_reliability)
    );
    assert!(
        gossip_messages < flood_messages,
        "gossip {gossip_messages} messages should undercut flood {flood_messages}"
    );
}

#[test]
fn multicast_spam_stays_low_with_exact_oracle() {
    // Fig. 12: spam ratio below ~8% in most scenarios; with an exact
    // oracle the only spam source is believed-vs-true divergence, which
    // is zero here.
    let mut sim = warmed(7);
    let target = AvailabilityTarget::range(0.7, 0.9);
    let Some(initiator) = sim.random_online_initiator(InitiatorBand::High) else {
        panic!("no initiator online");
    };
    let outcome = sim.multicast(initiator, target, MulticastConfig::paper_default());
    let world = sim.world();
    if let Some(spam) = outcome.spam_ratio(&world, target) {
        assert!(spam <= 0.01, "spam {spam} with exact oracle");
    }
}

#[test]
fn full_stack_event_driven_avmon_operations() {
    // Everything real at once: CYCLON shuffling feeds discovery, AVMON
    // pings produce the availability estimates, refresh keeps lists
    // honest — and operations still work on top. This is the paper's
    // actual deployment story, not the converged shortcut.
    let trace = OvernetModel::default().hosts(100).days(1).generate(61);
    let mut config = SimConfig::paper_default(9);
    config.maintenance = avmem::harness::MaintenanceMode::paper_event_driven();
    config.oracle = avmem::harness::OracleChoice::Avmon {
        config: avmem_avmon::AvmonConfig::default(),
    };
    let mut sim = AvmemSim::new(trace, config);
    sim.warm_up(SimDuration::from_hours(16));

    let snapshot = sim.snapshot();
    assert!(
        snapshot.mean_degree() > 1.0,
        "event-driven + AVMON built no overlay (degree {})",
        snapshot.mean_degree()
    );

    let target = AvailabilityTarget::threshold(0.6);
    let mut delivered = 0;
    let mut sent = 0;
    for _ in 0..30 {
        let Some(initiator) = sim.random_online_initiator(InitiatorBand::Mid) else {
            continue;
        };
        sent += 1;
        let outcome = sim.anycast(
            initiator,
            target,
            AnycastConfig {
                policy: ForwardPolicy::RetriedGreedy { retries: 8 },
                scope: SliverScope::Both,
                ttl: 6,
            },
        );
        if outcome.is_delivered() {
            delivered += 1;
        }
    }
    assert!(sent > 10, "no initiators online");
    assert!(
        delivered * 2 > sent,
        "full stack delivered only {delivered}/{sent}"
    );
}

#[test]
fn threshold_and_range_variants_agree() {
    // A threshold b behaves like the range [b, 1.0] (§3.2).
    let mut sim = warmed(8);
    let threshold = AvailabilityTarget::threshold(0.8);
    let range = AvailabilityTarget::range(0.8, 1.0);
    let mut threshold_delivered = 0;
    let mut range_delivered = 0;
    for _ in 0..30 {
        let Some(initiator) = sim.random_online_initiator(InitiatorBand::Mid) else {
            continue;
        };
        if sim
            .anycast(initiator, threshold, AnycastConfig::paper_default())
            .is_delivered()
        {
            threshold_delivered += 1;
        }
        if sim
            .anycast(initiator, range, AnycastConfig::paper_default())
            .is_delivered()
        {
            range_delivered += 1;
        }
    }
    let diff = (threshold_delivered as i64 - range_delivered as i64).abs();
    assert!(diff <= 6, "threshold {threshold_delivered} vs range {range_delivered}");
}
