//! End-to-end overlay properties over the full harness: the §4.1
//! microbenchmark claims, checked as assertions at reduced scale.

use avmem::harness::{AvmemSim, MaintenanceMode, OracleChoice, SimConfig};
use avmem::SliverScope;
use avmem_sim::SimDuration;
use avmem_trace::OvernetModel;
use avmem_util::stats::correlation;

fn warmed(seed: u64, hosts: usize) -> AvmemSim {
    let trace = OvernetModel::default().hosts(hosts).days(2).generate(31);
    let mut sim = AvmemSim::new(trace, SimConfig::paper_default(seed));
    sim.warm_up(SimDuration::from_hours(24));
    sim
}

#[test]
fn overlay_is_connected_after_warmup() {
    let sim = warmed(1, 250);
    let snapshot = sim.snapshot();
    assert!(
        snapshot.largest_component_fraction(SliverScope::Both) > 0.95,
        "overlay should be (nearly) fully connected"
    );
}

#[test]
fn vertical_sliver_sizes_uncorrelated_with_availability() {
    // Fig. 2c: "median values of the vertical sliver sizes are
    // uncorrelated to the availability."
    let sim = warmed(2, 250);
    let snapshot = sim.snapshot();
    let points: Vec<(f64, f64)> = snapshot
        .vs_sizes()
        .into_iter()
        .map(|(a, s)| (a, s as f64))
        .collect();
    let corr = correlation(&points);
    assert!(
        corr.abs() < 0.35,
        "VS size correlates with availability: {corr}"
    );
}

#[test]
fn horizontal_sliver_grows_sublinearly() {
    // Fig. 3: HS size grows sublinearly with the number of in-band
    // candidates: the marginal growth flattens.
    let sim = warmed(3, 300);
    let snapshot = sim.snapshot();
    let points = snapshot.hs_scaling_points();
    let max_c = points.iter().map(|p| p.0).fold(0.0f64, f64::max);
    assert!(max_c > 0.0);
    let low: Vec<(f64, f64)> = points.iter().copied().filter(|p| p.0 <= max_c / 2.0).collect();
    let high: Vec<(f64, f64)> = points.iter().copied().filter(|p| p.0 > max_c / 2.0).collect();
    if low.len() > 10 && high.len() > 10 {
        let slope_low = avmem_util::stats::slope(&low);
        let slope_high = avmem_util::stats::slope(&high);
        assert!(
            slope_high <= slope_low + 0.05,
            "HS growth not sublinear: low {slope_low}, high {slope_high}"
        );
    }
}

#[test]
fn incoming_vs_links_do_not_follow_population() {
    // Fig. 4: incoming VS links per availability range are "largely
    // uncorrelated to the distribution of nodes".
    let sim = warmed(4, 300);
    let snapshot = sim.snapshot();
    let links = snapshot.incoming_vs_links(10);
    let histogram = snapshot.availability_histogram(10);
    // Compare the shape: links per bucket should be much flatter than the
    // (skewed) population. Use the ratio of coefficients of variation.
    let populated: Vec<(f64, f64)> = (0..10)
        .filter(|&b| histogram.count(b) > 0)
        .map(|b| (histogram.count(b) as f64, links[b] as f64))
        .collect();
    assert!(populated.len() >= 4, "too few populated buckets");
    let cv = |values: &[f64]| {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            var.sqrt() / mean
        }
    };
    let pop_cv = cv(&populated.iter().map(|p| p.0).collect::<Vec<_>>());
    let link_cv = cv(&populated.iter().map(|p| p.1).collect::<Vec<_>>());
    assert!(
        link_cv < pop_cv * 1.25,
        "links (cv {link_cv:.2}) should be flatter than population (cv {pop_cv:.2})"
    );
}

#[test]
fn membership_lists_scale_logarithmically() {
    // Theorem 3: expected total degree O(log N*). Check the mean degree
    // doesn't explode with N.
    let small = warmed(5, 150);
    let large = warmed(5, 450);
    let d_small = small.snapshot().mean_degree();
    let d_large = large.snapshot().mean_degree();
    // Tripling N should grow the degree far less than 3×.
    assert!(
        d_large < d_small * 2.0,
        "degree grew too fast: {d_small} → {d_large}"
    );
}

#[test]
fn event_driven_converges_to_predicate_overlay() {
    let trace = OvernetModel::default().hosts(150).days(2).generate(31);
    let mut converged_cfg = SimConfig::paper_default(6);
    converged_cfg.oracle = OracleChoice::Exact;
    let mut reference = AvmemSim::new(trace.clone(), converged_cfg);
    reference.warm_up(SimDuration::from_hours(24));

    let mut ed_cfg = SimConfig::paper_default(6);
    ed_cfg.maintenance = MaintenanceMode::paper_event_driven();
    let mut sim = AvmemSim::new(trace, ed_cfg);
    sim.warm_up(SimDuration::from_hours(24));

    // Compare per-node membership against the converged reference for
    // online nodes: discovered entries must be a subset, and coverage
    // should be substantial after a day of 1-minute protocol periods.
    let mut covered = 0usize;
    let mut expected = 0usize;
    for i in 0..sim.trace().num_nodes() {
        if !sim.trace().is_online(i, sim.now()) {
            continue;
        }
        let id = avmem_util::NodeId::new(i as u64);
        let reference_membership = reference.membership(id);
        let discovered = sim.membership(id);
        expected += reference_membership.len();
        for nb in discovered.neighbors(SliverScope::Both) {
            assert!(
                reference_membership.contains(nb.id),
                "discovered non-neighbor {}",
                nb.id
            );
            covered += 1;
        }
    }
    assert!(expected > 0);
    let coverage = covered as f64 / expected as f64;
    assert!(
        coverage > 0.5,
        "event-driven coverage after 24h only {coverage:.2}"
    );
}

#[test]
fn deterministic_given_seed() {
    let a = warmed(9, 150).snapshot();
    let b = warmed(9, 150).snapshot();
    assert_eq!(a, b);
}
