//! Shape assertions over the figure harness itself: every experiment of
//! EXPERIMENTS.md runs at reduced scale and must reproduce the paper's
//! qualitative shape (who wins, directions of effects, bounds).

use avmem_bench::figures;
use avmem_bench::PaperSetup;

fn small() -> PaperSetup {
    PaperSetup {
        hosts: 200,
        days: 2,
        runs: 2,
        messages_per_run: 25,
        ..PaperSetup::default()
    }
}

#[test]
fn fig2_availability_skew_and_sliver_shapes() {
    let fig = figures::fig2(&small());
    assert!(fig.online > 20, "too few online nodes: {}", fig.online);
    // Fig 2c: VS uncorrelated with availability.
    assert!(
        fig.vs_correlation.abs() < 0.4,
        "VS correlation {}",
        fig.vs_correlation
    );
    // Fig 2b: HS size grows (weakly, log-scale) with availability under
    // the Overnet-like online distribution. At this reduced scale the
    // effect is noisy, so only rule out a clear *negative* trend; the
    // full-scale run in EXPERIMENTS.md shows the increasing medians.
    assert!(
        fig.hs_correlation > -0.25,
        "HS correlation {} is clearly negative",
        fig.hs_correlation
    );
}

#[test]
fn fig3_sublinear_scaling() {
    let fig = figures::fig3(&small());
    assert!(fig.points.len() >= 3);
    assert!(
        fig.slope_high <= fig.slope_low + 0.05,
        "slope should flatten: {} → {}",
        fig.slope_low,
        fig.slope_high
    );
}

#[test]
fn fig4_incoming_links_flat() {
    let fig = figures::fig4(&small());
    // Links should not simply mirror the population distribution.
    assert!(
        fig.population_correlation < 0.9,
        "links track population too closely: {}",
        fig.population_correlation
    );
}

#[test]
fn fig56_attack_bounds_and_cushion_tradeoff() {
    let fig = figures::fig56(&small());
    let max = |series: &[Option<f64>]| {
        series.iter().flatten().fold(0.0f64, |acc, &v| acc.max(v))
    };
    let mean = |series: &[Option<f64>]| {
        let present: Vec<f64> = series.iter().flatten().copied().collect();
        present.iter().sum::<f64>() / present.len().max(1) as f64
    };
    // Fig 5 shape: flooding acceptance low everywhere.
    assert!(
        max(&fig.flooding_strict) < 0.3,
        "flooding acceptance too high: {}",
        max(&fig.flooding_strict)
    );
    // Fig 6 shape: cushion reduces rejection.
    assert!(
        mean(&fig.rejection_cushion) <= mean(&fig.rejection_strict),
        "cushion should reduce rejections"
    );
    // And the cushion's cost: acceptance surface grows (or stays equal).
    assert!(mean(&fig.flooding_cushion) >= mean(&fig.flooding_strict));
}

#[test]
fn fig7_easy_anycast_one_hop_except_hs_only() {
    let fig = figures::fig7(&small());
    for (name, delivered, per_hop) in &fig.variants {
        if name == "HS-only" {
            continue;
        }
        // Paper: ~100% at 442 online nodes. At this reduced scale (≈80
        // online) stored lists are small and stale entries cost more, so
        // accept a softer bound; the full-scale run reports the ~1.0.
        assert!(
            *delivered > 0.6,
            "{name} delivered only {delivered}"
        );
        // Most deliveries within two hops for vertical-capable variants.
        // (The paper's one-hop w.h.p. claim holds at 442+ online nodes,
        // where every node has an in-range vertical neighbor w.h.p.; at
        // ~90 online the expected in-range VS population is ~1, so a
        // second hop is routinely needed.)
        let within_two = per_hop[0] + per_hop[1] + per_hop[2];
        assert!(
            within_two > 0.6 * delivered,
            "{name}: only {within_two} of {delivered} within two hops"
        );
    }
}

#[test]
fn fig8_harshness_ordering() {
    let fig = figures::fig8(&small());
    // Mean success per row should not increase as targets get harsher.
    let row_mean = |fractions: &Vec<f64>| {
        fractions.iter().sum::<f64>() / fractions.len().max(1) as f64
    };
    let easy = row_mean(&fig.rows[0].1);
    let harsh = row_mean(&fig.rows[2].1);
    assert!(
        harsh <= easy + 0.05,
        "harsh {harsh} should not beat easy {easy}"
    );
}

#[test]
fn fig9_retry_plateau_and_fig10_baseline_gap() {
    let setup = small();
    let avmem = figures::fig9(&setup);
    let random = figures::fig10(&setup);
    // Delivery should not decrease with more retries.
    for window in avmem.rows.windows(2) {
        assert!(
            window[1].delivered >= window[0].delivered - 0.15,
            "delivery collapsed between retries {} and {}",
            window[0].retries,
            window[1].retries
        );
    }
    // Fig 10: the availability-aware overlay wins on harsh targets at
    // retry=8 against the paper's CYCLON-size baseline (first sweep).
    let avmem_at_8 = avmem.rows.iter().find(|r| r.retries == 8).unwrap();
    let random_at_8 = random[0].rows.iter().find(|r| r.retries == 8).unwrap();
    assert!(
        avmem_at_8.delivered >= random_at_8.delivered - 0.05,
        "AVMEM {} should be at least random {}",
        avmem_at_8.delivered,
        random_at_8.delivered
    );
}

#[test]
fn fig11_to_13_multicast_shapes() {
    let fig = figures::fig111213(&small());
    let by_label = |label: &str| {
        fig.scenarios
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing scenario {label}"))
    };
    let flood_high = by_label("HIGH to > 0.90");
    let gossip_high = by_label("Gossip: HIGH to > 0.90");

    // Fig 13: flood reliability beats gossip.
    assert!(
        flood_high.reliability.quantile(0.5) >= gossip_high.reliability.quantile(0.5) - 0.05,
        "flood median reliability {} vs gossip {}",
        flood_high.reliability.quantile(0.5),
        gossip_high.reliability.quantile(0.5)
    );
    // Fig 13: flood reliability is high in absolute terms.
    assert!(
        flood_high.reliability.quantile(0.5) > 0.8,
        "flood reliability {}",
        flood_high.reliability.quantile(0.5)
    );
    // Fig 11: gossip's worst latency exceeds flood's (periodic rounds vs
    // immediate forwarding).
    assert!(
        gossip_high.latency.quantile(0.9) >= flood_high.latency.quantile(0.9),
        "gossip p90 latency {} should exceed flood {}",
        gossip_high.latency.quantile(0.9),
        flood_high.latency.quantile(0.9)
    );
    // Fig 12: spam stays low.
    assert!(
        flood_high.spam.quantile(0.9) < 0.2,
        "spam {}",
        flood_high.spam.quantile(0.9)
    );
}

#[test]
fn theorem_checks_hold_at_small_scale() {
    let checks = figures::theorem_checks(&small());
    assert!(checks.component_fraction > 0.9);
    assert!(checks.mean_vs > 0.0);
    // VS prediction within a factor of ~2.5 (finite-size effects).
    let ratio = checks.mean_vs / checks.predicted_vs;
    assert!(
        (0.3..3.5).contains(&ratio),
        "VS size {} vs prediction {}",
        checks.mean_vs,
        checks.predicted_vs
    );
}
