//! Cross-crate contracts between the substrates: the trace drives the
//! monitoring service; the monitoring service feeds the predicate; the
//! shuffle service feeds discovery. These are the interfaces §3.1 of the
//! paper assumes — each test pins one of those assumptions.

use avmem::membership::{Membership, SliverScope};
use avmem::predicate::{AvmemPredicate, MembershipPredicate, NodeInfo};
use avmem_avmon::{AvailabilityOracle, AvmonConfig, AvmonService, NoisyOracle, TraceOracle};
use avmem_shuffle::{optimal_view_size, sim::RoundSim, ShuffleConfig};
use avmem_sim::{SimDuration, SimTime};
use avmem_trace::{AvailabilityPdf, ChurnTrace, OvernetModel};
use avmem_util::{Availability, NodeId};

fn trace() -> ChurnTrace {
    OvernetModel::default().hosts(120).days(2).generate(77)
}

fn pdf_for(trace: &ChurnTrace) -> AvailabilityPdf {
    let weighted: Vec<(Availability, f64)> = (0..trace.num_nodes())
        .map(|i| {
            let av = trace.long_term_availability(i);
            (av, av.value())
        })
        .collect();
    AvailabilityPdf::from_weighted_sample(&weighted, 10)
}

#[test]
fn avmon_estimates_feed_the_predicate() {
    // The full pipeline the paper describes: AVMON measures availability
    // by pinging over churn; AVMEM evaluates its predicate on those
    // estimates; the resulting lists approximate the ground-truth overlay.
    let trace = trace();
    let mut avmon = AvmonService::new(&trace, AvmonConfig::default(), 5);
    avmon.step_to(&trace, SimTime::ZERO + trace.duration());

    let pred = AvmemPredicate::paper_default(trace.stats().mean_online, pdf_for(&trace));
    let truth = TraceOracle::new(&trace);
    let now = SimTime::ZERO + trace.duration();

    let mut agree = 0usize;
    let mut total = 0usize;
    for x in 0..trace.num_nodes() {
        let x_id = trace.node_id(x);
        let (Some(est_x), Some(true_x)) = (
            avmon.estimate(x_id, x_id, now),
            truth.estimate(x_id, x_id, now),
        ) else {
            continue;
        };
        for y in 0..trace.num_nodes() {
            if x == y {
                continue;
            }
            let y_id = trace.node_id(y);
            let (Some(est_y), Some(true_y)) = (
                avmon.estimate(x_id, y_id, now),
                truth.estimate(x_id, y_id, now),
            ) else {
                continue;
            };
            let with_est = pred.member(NodeInfo::new(x_id, est_x), NodeInfo::new(y_id, est_y));
            let with_truth = pred.member(NodeInfo::new(x_id, true_x), NodeInfo::new(y_id, true_y));
            total += 1;
            if with_est == with_truth {
                agree += 1;
            }
        }
    }
    assert!(total > 1000, "only {total} pairs evaluated");
    let agreement = agree as f64 / total as f64;
    assert!(
        agreement > 0.9,
        "estimate-driven membership agrees with truth on only {agreement:.2} of pairs"
    );
}

#[test]
fn shuffle_views_feed_discovery() {
    // Coarse-view entries are the discovery candidates (§3.1). After some
    // shuffling every node can discover a meaningful share of its
    // predicate neighbors from its view stream.
    let trace = trace();
    let oracle = TraceOracle::new(&trace);
    let pred = AvmemPredicate::paper_default(trace.stats().mean_online, pdf_for(&trace));
    let n = trace.num_nodes();

    let mut shuffle = RoundSim::new(n, ShuffleConfig::for_system_size(n), 9);
    let mut membership = Membership::new(NodeId::new(0));
    let own = NodeInfo::new(NodeId::new(0), trace.long_term_availability(0));

    // Run discovery over 60 shuffle rounds, scanning node 0's view each
    // round.
    for _ in 0..60 {
        shuffle.run_round();
        let candidates: Vec<NodeId> = shuffle.nodes()[0].view().ids().collect();
        membership.discover(own, candidates, &oracle, &pred, SimTime::ZERO);
    }

    // Converged reference.
    let mut reference = Membership::new(NodeId::new(0));
    reference.discover(own, trace.node_ids(), &oracle, &pred, SimTime::ZERO);

    let found = membership.neighbors(SliverScope::Both).count();
    let expected = reference.neighbors(SliverScope::Both).count();
    assert!(expected > 0, "reference overlay is empty");
    assert!(
        found as f64 >= 0.3 * expected as f64,
        "discovery found {found} of {expected} neighbors after 60 rounds"
    );
    // Everything discovered is a true predicate neighbor.
    for nb in membership.neighbors(SliverScope::Both) {
        assert!(reference.contains(nb.id), "{} is not a valid neighbor", nb.id);
    }
}

#[test]
fn view_size_optimality_contract() {
    // §3.1: v = √N minimizes v + N/v. Check the discovery-cost proxy.
    let n = 400;
    let cost = |v: usize| v as f64 + n as f64 / v as f64;
    let optimal = optimal_view_size(n);
    assert!(cost(optimal) <= cost(optimal / 2) + 1e-9);
    assert!(cost(optimal) <= cost(optimal * 2) + 1e-9);
}

#[test]
fn noisy_oracle_respects_trace_truth_envelope() {
    let trace = trace();
    let oracle = NoisyOracle::new(
        TraceOracle::new(&trace),
        0.05,
        SimDuration::from_mins(20),
        3,
    );
    for i in 0..trace.num_nodes() {
        let id = trace.node_id(i);
        let est = oracle
            .estimate(NodeId::new(0), id, SimTime::ZERO)
            .expect("trace oracle knows every node");
        let truth = trace.long_term_availability(i).value();
        assert!((est.value() - truth).abs() <= 0.05 + 1e-12);
    }
}

#[test]
fn refresh_tracks_availability_drift_through_avmon() {
    // A node whose measured availability drifts across the ε band must be
    // migrated by refresh within one period (§3.1's worst-case bound).
    let trace = trace();
    let mut avmon = AvmonService::new(&trace, AvmonConfig::default(), 5);
    let pred = AvmemPredicate::paper_default(trace.stats().mean_online, pdf_for(&trace));

    // Discover with early estimates (after 12 h), then refresh with final
    // estimates: everything kept/migrated must satisfy the predicate on
    // the fresh values.
    let half = SimTime::ZERO + SimDuration::from_hours(12);
    avmon.step_to(&trace, half);
    let own_id = trace.node_id(1);
    let Some(own_av) = avmon.estimate(own_id, own_id, half) else {
        panic!("node 1 unknown to avmon after 12h");
    };
    let mut membership = Membership::new(own_id);
    membership.discover(
        NodeInfo::new(own_id, own_av),
        trace.node_ids(),
        &avmon,
        &pred,
        half,
    );

    let end = SimTime::ZERO + trace.duration();
    avmon.step_to(&trace, end);
    let own_av_end = avmon.estimate(own_id, own_id, end).expect("still known");
    let own_end = NodeInfo::new(own_id, own_av_end);
    membership.refresh(own_end, &avmon, &pred, end);

    for nb in membership.neighbors(SliverScope::Both) {
        let fresh = avmon.estimate(own_id, nb.id, end).expect("kept ⇒ known");
        assert_eq!(nb.cached_availability, fresh, "cache not refreshed");
        assert!(
            pred.member(own_end, NodeInfo::new(nb.id, fresh)),
            "kept neighbor violates predicate after refresh"
        );
    }
}
