//! Deterministic random number generation for property tests.

/// A SplitMix64 generator seeded from the test's name, so every run of a
/// given property draws the same input stream (reproducible failures
/// without a persistence file).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Seed directly.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}
