//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate a `Vec` whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
