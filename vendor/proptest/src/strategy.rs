//! Input-generation strategies: the core [`Strategy`] trait plus the
//! combinators the workspace's tests use.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from every generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe mirror of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy producing `T`.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among several strategies for the same type (the
/// expansion of `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of erased strategies.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64())
                    | (u128::from(rng.next_u64()) << 64))
                    % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64())
                    | (u128::from(rng.next_u64()) << 64))
                    % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                // Occasionally pin to the lower endpoint to exercise it.
                if rng.below(16) == 0 {
                    return self.start;
                }
                let v = self.start + (rng.next_f64() as $t) * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                // Hit both endpoints with non-negligible probability.
                match rng.below(16) {
                    0 => lo,
                    1 => hi,
                    _ => lo + (rng.next_f64() as $t) * (hi - lo),
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
