//! Offline miniature stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this crate reimplements
//! the slice of proptest's API the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `boxed`, tuple / range /
//!   collection strategies and [`strategy::Union`] (behind [`prop_oneof!`]);
//! * [`arbitrary::any`] for primitive types;
//! * the [`proptest!`] macro, which runs each property over a
//!   deterministic, name-seeded stream of random inputs (case count
//!   overridable via the `PROPTEST_CASES` env var);
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! regression file: a failing case panics with the generated inputs'
//! `Debug` representation, which is enough to reproduce (generation is
//! deterministic per test name).

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Number of random cases each `proptest!` property runs.
///
/// Defaults to 32 (the simulations under test make proptest's default of
/// 256 too slow for tier-1); override with the `PROPTEST_CASES`
/// environment variable.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
///
/// Each property becomes a regular `#[test]` that draws [`cases`] inputs
/// from its strategies using a deterministic RNG seeded from the test
/// name, then runs the body.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __proptest_case in 0..$crate::cases() {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&$strat, &mut __proptest_rng),)+
                    );
                    // A closure so `prop_assume!` can skip the case via `return`.
                    let mut __proptest_body = || { $body };
                    __proptest_body();
                }
            }
        )*
    };
}

/// Assert a condition inside a property, with an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Assert two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
///
/// Real proptest rejects and redraws; this stub simply skips the case,
/// which preserves soundness (no false failures) at a small coverage cost.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
