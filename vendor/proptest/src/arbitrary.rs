//! `any::<T>()` — default strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix raw values with small ones and the extremes so edge
                // cases show up within a few dozen draws.
                match rng.next_u64() % 8 {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => (rng.next_u64() % 16) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // A mix of unit-interval, large-scale, endpoint and
                // non-finite cases, mirroring real proptest's inclusion
                // of NaN and infinities in any::<f64>().
                match rng.next_u64() % 12 {
                    0 => 0.0,
                    1 => 1.0,
                    2 => -1.0,
                    3 => <$t>::NAN,
                    4 => <$t>::INFINITY,
                    5 => <$t>::NEG_INFINITY,
                    6 => rng.next_f64() as $t,
                    7 => -(rng.next_f64() as $t),
                    _ => ((rng.next_f64() - 0.5) * 2e9) as $t,
                }
            }
        }
    )*};
}

float_arbitrary!(f32, f64);
