//! Offline stand-in for `serde_derive`.
//!
//! The AVMEM workspace uses serde purely in derive position — no type is
//! ever serialized at run time — so these derives accept the same input
//! (including `#[serde(...)]` helper attributes) and expand to nothing.
//! Swap in the real `serde`/`serde_derive` when a wire or disk format is
//! actually needed.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepted and expanded to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepted and expanded to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
