//! Offline, derive-only stand-in for `serde`.
//!
//! The container this workspace builds in has no access to crates.io, and
//! the AVMEM crates only use serde in derive position (`#[derive(Serialize,
//! Deserialize)]` plus `#[serde(...)]` helper attributes) — nothing is
//! serialized at run time. This crate supplies just enough surface for that
//! to compile: the two marker traits and, under the `derive` feature, the
//! no-op derive macros from the sibling `serde_derive` stub.

#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
