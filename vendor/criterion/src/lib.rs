//! Offline miniature stand-in for `criterion`.
//!
//! The build container has no crates.io access, so this crate provides the
//! small slice of criterion's API the workspace's benches use: `Criterion`,
//! benchmark groups with `sample_size` / `bench_function` /
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain wall-clock mean over a
//! fixed number of samples — no outlier analysis, no plots — printed as
//! `<group>/<id> ... <mean per iteration>`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `BenchmarkId::new("name", param)` — name plus parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Identify a benchmark purely by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Measures one closure: hands the closure to the benchmark body via
/// [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then time `samples` calls.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples;
    }
}

fn report(group: &str, id: &BenchmarkId, b: &Bencher) {
    let per_iter = if b.iters > 0 {
        b.elapsed / (b.iters as u32)
    } else {
        Duration::ZERO
    };
    if group.is_empty() {
        println!("{:<40} {:>12.2?}/iter", id.0, per_iter);
    } else {
        println!("{:<40} {:>12.2?}/iter", format!("{}/{}", group, id.0), per_iter);
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, ..Bencher::default() };
        f(&mut b);
        report(&self.name, &id, &b);
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, ..Bencher::default() };
        f(&mut b, input);
        report(&self.name, &id, &b);
        self
    }

    /// End the group (rendering is already done incrementally).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: u64,
}

impl Criterion {
    /// Benchmark a closure under `id` with the default sample size.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size(), ..Bencher::default() };
        f(&mut b);
        report("", &id, &b);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size();
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }

    fn sample_size(&self) -> u64 {
        if self.default_sample_size == 0 { 50 } else { self.default_sample_size }
    }
}

/// Group benchmark functions into one callable: `criterion_group!(benches, a, b)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Produce a `main` that runs the listed groups.
///
/// When invoked by `cargo test` (which passes `--test` to harness-less
/// bench targets), the benchmarks are skipped so test runs stay fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}
