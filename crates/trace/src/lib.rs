#![warn(missing_docs)]

//! Churn traces for the AVMEM reproduction.
//!
//! The paper's evaluation (§4) injects "churn (availability variation)
//! traces from the Overnet p2p system … collected over a 7 day period, at
//! 20 minute intervals, for a fixed population of 1442 hosts". The
//! original trace (Bhagwan et al., IPTPS'03) is not redistributable, so
//! this crate supplies:
//!
//! * [`ChurnTrace`] — the trace representation itself: a per-node
//!   online/offline matrix over fixed-width time slots, with availability
//!   accessors;
//! * [`OvernetModel`] — a synthetic generator reproducing the published
//!   Overnet marginals (heavily skewed availability — about half the hosts
//!   below 0.3 — with slot-level churn), so experiments run out of the box;
//! * [`GridModel`] — a reboot-heavy Grid'5000-style generator (§1 of the
//!   paper cites machines rebooting tens of times per day), for workload
//!   sensitivity studies;
//! * [`FlashCrowdModel`] — population-scale regime changes: a flash
//!   crowd joining a running system, or a mass departure, for scenario
//!   stress tests;
//! * [`AvailabilityPdf`] — the discretized availability PDF `p(·)` that
//!   the AVMEM predicates take as a consistent, system-wide input,
//!   together with the derived quantities `N*_av(x)` and `N*min_av(x)`
//!   from §2.1 of the paper;
//! * [`OnlineIndex`] — a per-slot cache of the online population, so
//!   event-driven drivers answer "who is up right now" without scanning
//!   the trace per event;
//! * [`io`] — a plain-text trace format, so real traces can be dropped in
//!   as a replacement for the synthetic ones.
//!
//! # Examples
//!
//! ```
//! use avmem_trace::{ChurnTrace, OvernetModel};
//!
//! let trace = OvernetModel::default().hosts(100).days(1).generate(42);
//! assert_eq!(trace.num_nodes(), 100);
//! // Long-term availability equals the fraction of slots spent online.
//! let av = trace.long_term_availability(0);
//! assert!((0.0..=1.0).contains(&av.value()));
//! ```

pub mod churn;
pub mod flash;
pub mod grid;
pub mod io;
pub mod online;
pub mod overnet;
pub mod pdf;

pub use churn::{ChurnStats, ChurnTrace};
pub use flash::{CrowdDirection, FlashCrowdModel};
pub use grid::GridModel;
pub use online::OnlineIndex;
pub use overnet::OvernetModel;
pub use pdf::AvailabilityPdf;
