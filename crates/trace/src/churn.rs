//! The churn-trace representation.
//!
//! A [`ChurnTrace`] is a dense matrix: one row per node, one column per
//! time slot (the Overnet trace uses 20-minute slots over 7 days — 504
//! slots). Everything the simulation needs from a trace reduces to three
//! questions this type answers: *is node i online at time t*, *who is
//! online at time t*, and *what is node i's long-term availability*.

use avmem_sim::{SimDuration, SimTime};
use avmem_util::{Availability, NodeId};
use serde::{Deserialize, Serialize};

/// A fixed-population churn trace over uniform time slots.
///
/// Nodes are identified by dense indices `0..num_nodes`, with
/// [`NodeId`]s equal to the index; this matches the fixed-population
/// Overnet methodology (hosts are tracked even while offline).
///
/// # Examples
///
/// ```
/// use avmem_sim::{SimDuration, SimTime};
/// use avmem_trace::ChurnTrace;
///
/// // Two nodes over three 20-minute slots: node 0 always up, node 1 up
/// // only in the middle slot.
/// let trace = ChurnTrace::from_rows(
///     SimDuration::from_mins(20),
///     vec![vec![true, true, true], vec![false, true, false]],
/// );
/// assert!(trace.is_online(0, SimTime::ZERO));
/// assert!(!trace.is_online(1, SimTime::ZERO));
/// assert!(trace.is_online(1, SimTime::ZERO + SimDuration::from_mins(25)));
/// assert_eq!(trace.long_term_availability(0).value(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnTrace {
    slot: SimDuration,
    slots: usize,
    /// Row-major online matrix: `online[node * slots + slot]`.
    online: Vec<bool>,
}

impl ChurnTrace {
    /// Builds a trace from per-node slot rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths, if there are no rows, if
    /// rows are empty, or if the slot duration is zero.
    pub fn from_rows(slot: SimDuration, rows: Vec<Vec<bool>>) -> Self {
        assert!(slot > SimDuration::ZERO, "slot duration must be positive");
        assert!(!rows.is_empty(), "trace needs at least one node");
        let slots = rows[0].len();
        assert!(slots > 0, "trace needs at least one slot");
        assert!(
            rows.iter().all(|r| r.len() == slots),
            "all rows must have the same number of slots"
        );
        let mut online = Vec::with_capacity(rows.len() * slots);
        for row in &rows {
            online.extend_from_slice(row);
        }
        ChurnTrace {
            slot,
            slots,
            online,
        }
    }

    /// Number of nodes (the fixed population size).
    pub fn num_nodes(&self) -> usize {
        self.online.len() / self.slots
    }

    /// Number of time slots.
    pub fn num_slots(&self) -> usize {
        self.slots
    }

    /// Width of one slot.
    pub fn slot_duration(&self) -> SimDuration {
        self.slot
    }

    /// Total trace duration.
    pub fn duration(&self) -> SimDuration {
        self.slot.mul(self.slots as u64)
    }

    /// The [`NodeId`] of node index `i`.
    pub fn node_id(&self, i: usize) -> NodeId {
        NodeId::new(i as u64)
    }

    /// The node index of a [`NodeId`] produced by this trace.
    ///
    /// # Panics
    ///
    /// Panics if the id is outside the population.
    pub fn index_of(&self, id: NodeId) -> usize {
        let idx = id.raw() as usize;
        assert!(idx < self.num_nodes(), "unknown node id {id}");
        idx
    }

    /// All node ids in the population.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(|i| NodeId::new(i as u64))
    }

    /// Maps a time to its slot index; times past the end clamp to the last
    /// slot (the trace's final state persists).
    pub fn slot_at(&self, time: SimTime) -> usize {
        let idx = (time.as_millis() / self.slot.as_millis()) as usize;
        idx.min(self.slots - 1)
    }

    /// Whether node `i` is online in the slot containing `time`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_online(&self, i: usize, time: SimTime) -> bool {
        assert!(i < self.num_nodes(), "node index {i} out of range");
        self.online[i * self.slots + self.slot_at(time)]
    }

    /// Whether node `i` is online in slot `s`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn is_online_in_slot(&self, i: usize, s: usize) -> bool {
        assert!(i < self.num_nodes(), "node index {i} out of range");
        assert!(s < self.slots, "slot index {s} out of range");
        self.online[i * self.slots + s]
    }

    /// Indices of all nodes online in the slot containing `time`.
    pub fn online_at(&self, time: SimTime) -> Vec<usize> {
        let s = self.slot_at(time);
        (0..self.num_nodes())
            .filter(|&i| self.online[i * self.slots + s])
            .collect()
    }

    /// Number of nodes online in the slot containing `time`.
    pub fn online_count_at(&self, time: SimTime) -> usize {
        let s = self.slot_at(time);
        (0..self.num_nodes())
            .filter(|&i| self.online[i * self.slots + s])
            .count()
    }

    /// Node `i`'s long-term availability: fraction of all slots online.
    ///
    /// This is the ground-truth `av(x)` that the availability monitoring
    /// service estimates.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn long_term_availability(&self, i: usize) -> Availability {
        assert!(i < self.num_nodes(), "node index {i} out of range");
        let row = &self.online[i * self.slots..(i + 1) * self.slots];
        let up = row.iter().filter(|&&b| b).count();
        Availability::saturating(up as f64 / self.slots as f64)
    }

    /// Node `i`'s availability measured over slots `[0, slot_at(time)]`
    /// inclusive — the "raw availability so far" a monitor could have
    /// observed by `time`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn availability_up_to(&self, i: usize, time: SimTime) -> Availability {
        assert!(i < self.num_nodes(), "node index {i} out of range");
        let end = self.slot_at(time) + 1;
        let row = &self.online[i * self.slots..i * self.slots + end];
        let up = row.iter().filter(|&&b| b).count();
        Availability::saturating(up as f64 / end as f64)
    }

    /// Node `i`'s availability over the slots intersecting `[from, to]` —
    /// the "current behaviour" ground truth for drifting traces, where
    /// the whole-trace long-term availability is stale by construction.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `from > to`.
    pub fn availability_between(&self, i: usize, from: SimTime, to: SimTime) -> Availability {
        assert!(i < self.num_nodes(), "node index {i} out of range");
        assert!(from <= to, "window must be ordered");
        let first = self.slot_at(from);
        let last = self.slot_at(to);
        let row = &self.online[i * self.slots + first..=i * self.slots + last];
        let up = row.iter().filter(|&&b| b).count();
        Availability::saturating(up as f64 / row.len() as f64)
    }

    /// The next slot boundary strictly after `time`, or `None` if `time`
    /// is in the final slot. Simulation drivers use this to schedule churn
    /// (join/leave) events.
    pub fn next_transition_after(&self, time: SimTime) -> Option<SimTime> {
        let s = (time.as_millis() / self.slot.as_millis()) as usize;
        if s + 1 >= self.slots {
            None
        } else {
            Some(SimTime::from_millis((s as u64 + 1) * self.slot.as_millis()))
        }
    }

    /// Summary statistics of the trace.
    pub fn stats(&self) -> ChurnStats {
        let n = self.num_nodes();
        let mut sum_av = 0.0;
        for i in 0..n {
            sum_av += self.long_term_availability(i).value();
        }
        let mut transitions = 0u64;
        for i in 0..n {
            let row = &self.online[i * self.slots..(i + 1) * self.slots];
            transitions += row.windows(2).filter(|w| w[0] != w[1]).count() as u64;
        }
        let mut min_online = usize::MAX;
        let mut max_online = 0usize;
        let mut sum_online = 0usize;
        for s in 0..self.slots {
            let count = (0..n).filter(|&i| self.online[i * self.slots + s]).count();
            min_online = min_online.min(count);
            max_online = max_online.max(count);
            sum_online += count;
        }
        ChurnStats {
            num_nodes: n,
            num_slots: self.slots,
            mean_availability: sum_av / n as f64,
            transitions,
            min_online,
            max_online,
            mean_online: sum_online as f64 / self.slots as f64,
        }
    }
}

/// Aggregate statistics over a [`ChurnTrace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnStats {
    /// Population size.
    pub num_nodes: usize,
    /// Number of slots.
    pub num_slots: usize,
    /// Mean long-term availability across the population.
    pub mean_availability: f64,
    /// Total number of online/offline transitions across all nodes.
    pub transitions: u64,
    /// Fewest nodes online in any slot.
    pub min_online: usize,
    /// Most nodes online in any slot.
    pub max_online: usize,
    /// Average number of nodes online per slot.
    pub mean_online: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ChurnTrace {
        ChurnTrace::from_rows(
            SimDuration::from_mins(20),
            vec![
                vec![true, true, true, true],
                vec![false, true, true, false],
                vec![false, false, false, false],
            ],
        )
    }

    #[test]
    fn geometry_accessors() {
        let t = toy();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_slots(), 4);
        assert_eq!(t.duration(), SimDuration::from_mins(80));
    }

    #[test]
    fn slot_mapping_and_clamping() {
        let t = toy();
        assert_eq!(t.slot_at(SimTime::ZERO), 0);
        assert_eq!(t.slot_at(SimTime::from_millis(SimDuration::from_mins(20).as_millis())), 1);
        // Past the end: clamps to final slot.
        assert_eq!(t.slot_at(SimTime::from_millis(SimDuration::from_hours(100).as_millis())), 3);
    }

    #[test]
    fn online_queries() {
        let t = toy();
        let mid = SimTime::ZERO + SimDuration::from_mins(30);
        assert!(t.is_online(0, mid));
        assert!(t.is_online(1, mid));
        assert!(!t.is_online(2, mid));
        assert_eq!(t.online_at(mid), vec![0, 1]);
        assert_eq!(t.online_count_at(mid), 2);
    }

    #[test]
    fn long_term_availability_is_slot_fraction() {
        let t = toy();
        assert_eq!(t.long_term_availability(0).value(), 1.0);
        assert_eq!(t.long_term_availability(1).value(), 0.5);
        assert_eq!(t.long_term_availability(2).value(), 0.0);
    }

    #[test]
    fn availability_up_to_uses_prefix() {
        let t = toy();
        let after_two_slots = SimTime::ZERO + SimDuration::from_mins(25);
        assert_eq!(t.availability_up_to(1, after_two_slots).value(), 0.5);
        let end = SimTime::ZERO + SimDuration::from_mins(79);
        assert_eq!(t.availability_up_to(1, end).value(), 0.5);
    }

    #[test]
    fn availability_between_uses_window() {
        let t = toy();
        // Node 1 row: [false, true, true, false].
        let slot = SimDuration::from_mins(20).as_millis();
        let av = t.availability_between(
            1,
            SimTime::from_millis(slot),
            SimTime::from_millis(2 * slot),
        );
        assert_eq!(av.value(), 1.0); // slots 1..=2 both online
        let whole = t.availability_between(1, SimTime::ZERO, SimTime::from_millis(4 * slot));
        assert_eq!(whole.value(), 0.5);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn availability_between_rejects_inverted_window() {
        let t = toy();
        let _ = t.availability_between(0, SimTime::from_millis(100), SimTime::ZERO);
    }

    #[test]
    fn next_transition_walks_slot_boundaries() {
        let t = toy();
        let first = t.next_transition_after(SimTime::ZERO).unwrap();
        assert_eq!(first, SimTime::from_millis(SimDuration::from_mins(20).as_millis()));
        let last_slot = SimTime::ZERO + SimDuration::from_mins(70);
        assert_eq!(t.next_transition_after(last_slot), None);
    }

    #[test]
    fn stats_summarize_population() {
        let s = toy().stats();
        assert_eq!(s.num_nodes, 3);
        assert_eq!(s.num_slots, 4);
        assert!((s.mean_availability - 0.5).abs() < 1e-12);
        assert_eq!(s.transitions, 2); // node 1: off->on, on->off
        assert_eq!(s.min_online, 1);
        assert_eq!(s.max_online, 2);
    }

    #[test]
    #[should_panic(expected = "same number of slots")]
    fn inconsistent_rows_panic() {
        let _ = ChurnTrace::from_rows(
            SimDuration::from_mins(20),
            vec![vec![true], vec![true, false]],
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_trace_panics() {
        let _ = ChurnTrace::from_rows(SimDuration::from_mins(20), vec![]);
    }

    #[test]
    fn node_id_round_trip() {
        let t = toy();
        for i in 0..t.num_nodes() {
            assert_eq!(t.index_of(t.node_id(i)), i);
        }
    }
}
