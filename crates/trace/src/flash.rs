//! Flash-crowd and mass-departure churn generation.
//!
//! The Overnet and Grid models are stationary: every host churns around a
//! fixed long-term availability. Management-plane stress scenarios need
//! the opposite — population-scale regime changes. [`FlashCrowdModel`]
//! generates them:
//!
//! * **join** ([`CrowdDirection::Join`]) — a *crowd fraction* of the
//!   population is entirely offline until the switch point of the trace,
//!   then starts churning like everyone else (a flash crowd arriving on
//!   a running system);
//! * **leave** ([`CrowdDirection::Leave`]) — the crowd churns normally
//!   until the switch point, then goes dark for the rest of the trace (a
//!   mass departure / correlated failure).
//!
//! The steady population churns through the same two-state Markov chain
//! the Overnet model uses, with per-host availabilities drawn uniformly
//! from a configurable band. The generator is deterministic in its seed.

use avmem_sim::SimDuration;
use avmem_util::{Rng, SplitMix64};
use serde::{Deserialize, Serialize};

use crate::churn::ChurnTrace;
use crate::overnet::transition_probabilities;

/// Which way the crowd moves at the switch point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrowdDirection {
    /// Crowd hosts are offline before the switch, churning after.
    Join,
    /// Crowd hosts churn before the switch, offline after.
    Leave,
}

/// Configuration and builder for flash-crowd / mass-departure traces.
///
/// # Examples
///
/// ```
/// use avmem_trace::{CrowdDirection, FlashCrowdModel};
///
/// let trace = FlashCrowdModel::new(CrowdDirection::Join)
///     .hosts(200)
///     .days(1)
///     .crowd_fraction(0.5)
///     .switch_point(0.25)
///     .generate(7);
/// assert_eq!(trace.num_nodes(), 200);
/// // The crowd is dark early on, so fewer hosts are online in the first
/// // slot than in the last.
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdModel {
    direction: CrowdDirection,
    hosts: usize,
    days: u64,
    slot_minutes: u64,
    crowd_fraction: f64,
    switch_point: f64,
    mean_up_session_slots: f64,
    availability_range: (f64, f64),
}

impl FlashCrowdModel {
    /// Creates a model with paper-like defaults: 800 hosts, 1 day,
    /// 20-minute slots, half the population in the crowd, switch at a
    /// quarter of the trace, availabilities uniform in `[0.2, 0.95]`.
    pub fn new(direction: CrowdDirection) -> Self {
        FlashCrowdModel {
            direction,
            hosts: 800,
            days: 1,
            slot_minutes: 20,
            crowd_fraction: 0.5,
            switch_point: 0.25,
            mean_up_session_slots: 6.0,
            availability_range: (0.2, 0.95),
        }
    }

    /// Sets the number of hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0`.
    pub fn hosts(mut self, hosts: usize) -> Self {
        assert!(hosts > 0, "need at least one host");
        self.hosts = hosts;
        self
    }

    /// Sets the trace length in days.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`.
    pub fn days(mut self, days: u64) -> Self {
        assert!(days > 0, "need at least one day");
        self.days = days;
        self
    }

    /// Sets the probe-slot width in minutes.
    ///
    /// # Panics
    ///
    /// Panics if `minutes == 0` or a day is not a whole number of slots.
    pub fn slot_minutes(mut self, minutes: u64) -> Self {
        assert!(minutes > 0, "slot width must be positive");
        assert!(1440 % minutes == 0, "a day must be a whole number of slots");
        self.slot_minutes = minutes;
        self
    }

    /// Sets the fraction of hosts belonging to the crowd.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn crowd_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "crowd fraction must be in [0, 1]"
        );
        self.crowd_fraction = fraction;
        self
    }

    /// Sets where in the trace the crowd switches, as a fraction of the
    /// total duration.
    ///
    /// # Panics
    ///
    /// Panics if `point` is outside `[0, 1]`.
    pub fn switch_point(mut self, point: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&point),
            "switch point must be in [0, 1]"
        );
        self.switch_point = point;
        self
    }

    /// Sets the mean up-session length in slots for churning hosts.
    ///
    /// # Panics
    ///
    /// Panics if `slots < 1.0`.
    pub fn mean_up_session_slots(mut self, slots: f64) -> Self {
        assert!(slots >= 1.0, "mean session must be at least one slot");
        self.mean_up_session_slots = slots;
        self
    }

    /// Sets the band per-host availabilities are drawn from (uniformly).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lo ≤ hi ≤ 1`.
    pub fn availability_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi,
            "availability range must satisfy 0 ≤ lo ≤ hi ≤ 1"
        );
        self.availability_range = (lo, hi);
        self
    }

    /// Generates a deterministic trace for the given seed. Crowd
    /// membership is assigned to the first `⌈crowd_fraction·hosts⌉` host
    /// indices (membership is observable, which scenario assertions use).
    pub fn generate(&self, seed: u64) -> ChurnTrace {
        let slots = ((1440 / self.slot_minutes) * self.days) as usize;
        let switch_slot = ((slots as f64) * self.switch_point).round() as usize;
        let crowd = ((self.hosts as f64) * self.crowd_fraction).ceil() as usize;
        let mut master = SplitMix64::new(seed);
        let (lo, hi) = self.availability_range;
        let mut rows = Vec::with_capacity(self.hosts);
        for host in 0..self.hosts {
            let mut rng = master.fork(host as u64);
            let target = rng.range_f64(lo, hi.max(lo + f64::EPSILON)).clamp(0.001, 0.999);
            let dark_range = if host < crowd {
                match self.direction {
                    CrowdDirection::Join => 0..switch_slot,
                    CrowdDirection::Leave => switch_slot..slots,
                }
            } else {
                0..0
            };
            let mut row = Vec::with_capacity(slots);
            let mut up = rng.chance(target);
            let (p_down, p_up) = transition_probabilities(target, self.mean_up_session_slots);
            for s in 0..slots {
                if dark_range.contains(&s) {
                    row.push(false);
                    // A crowd host joins the system offline: its first
                    // live slot is decided by the chain's down→up draw.
                    up = false;
                } else {
                    row.push(up);
                    up = if up { !rng.chance(p_down) } else { rng.chance(p_up) };
                }
            }
            rows.push(row);
        }
        ChurnTrace::from_rows(SimDuration::from_mins(self.slot_minutes), rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_sim::SimTime;

    fn online_in_slot(trace: &ChurnTrace, s: usize) -> usize {
        (0..trace.num_nodes())
            .filter(|&i| trace.is_online_in_slot(i, s))
            .count()
    }

    #[test]
    fn generation_is_deterministic() {
        let model = FlashCrowdModel::new(CrowdDirection::Join).hosts(60);
        assert_eq!(model.generate(5), model.generate(5));
        assert_ne!(model.generate(5), model.generate(6));
    }

    #[test]
    fn join_crowd_is_dark_before_the_switch() {
        let trace = FlashCrowdModel::new(CrowdDirection::Join)
            .hosts(100)
            .crowd_fraction(0.4)
            .switch_point(0.5)
            .generate(11);
        let switch = trace.num_slots() / 2;
        for host in 0..40 {
            for s in 0..switch {
                assert!(!trace.is_online_in_slot(host, s), "crowd host {host} up early");
            }
        }
        assert!(
            online_in_slot(&trace, trace.num_slots() - 1) > 0,
            "someone must be online at the end"
        );
        // The arrival is visible as a population jump.
        let early = online_in_slot(&trace, switch.saturating_sub(1));
        let late = online_in_slot(&trace, trace.num_slots() - 1);
        assert!(late > early, "flash crowd should grow the population");
    }

    #[test]
    fn leave_crowd_is_dark_after_the_switch() {
        let trace = FlashCrowdModel::new(CrowdDirection::Leave)
            .hosts(100)
            .crowd_fraction(0.5)
            .switch_point(0.5)
            .generate(13);
        let switch = trace.num_slots() / 2;
        for host in 0..50 {
            for s in switch..trace.num_slots() {
                assert!(!trace.is_online_in_slot(host, s), "crowd host {host} up late");
            }
        }
    }

    #[test]
    fn steady_hosts_churn_throughout() {
        let trace = FlashCrowdModel::new(CrowdDirection::Join)
            .hosts(80)
            .crowd_fraction(0.25)
            .days(2)
            .generate(17);
        // Non-crowd hosts (indices ≥ 20) should be online a nontrivial
        // share of the time from the very start.
        let online_at_start = (20..80)
            .filter(|&i| trace.is_online(i, SimTime::ZERO))
            .count();
        assert!(online_at_start > 5, "only {online_at_start} steady hosts up");
    }

    #[test]
    fn availability_range_bounds_targets() {
        let trace = FlashCrowdModel::new(CrowdDirection::Join)
            .hosts(120)
            .crowd_fraction(0.0)
            .availability_range(0.8, 0.95)
            .days(3)
            .generate(23);
        let mean = (0..trace.num_nodes())
            .map(|i| trace.long_term_availability(i).value())
            .sum::<f64>()
            / trace.num_nodes() as f64;
        assert!((0.7..1.0).contains(&mean), "mean availability {mean}");
    }

    #[test]
    #[should_panic(expected = "crowd fraction")]
    fn bad_crowd_fraction_panics() {
        let _ = FlashCrowdModel::new(CrowdDirection::Join).crowd_fraction(1.5);
    }
}
