//! Generates synthetic Overnet-like churn traces in `AVTRACE v1` format.
//!
//! ```text
//! cargo run --release -p avmem_trace --bin tracegen -- --hosts 1442 --days 7 --seed 1 > trace.avt
//! cargo run --release -p avmem_trace --bin tracegen -- --stats < trace.avt   # summarize a trace
//! ```
//!
//! The output format is the same one [`avmem_trace::ChurnTrace::read_from`]
//! parses, so generated traces are interchangeable with converted real
//! probe data.

use std::env;
use std::io::{self, Write};
use std::process::ExitCode;

use avmem_trace::{ChurnTrace, OvernetModel};

struct Options {
    hosts: usize,
    days: u64,
    slot_minutes: u64,
    seed: u64,
    diurnal: f64,
    stats_mode: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        hosts: 1442,
        days: 7,
        slot_minutes: 20,
        seed: 1,
        diurnal: 0.0,
        stats_mode: false,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--hosts" => options.hosts = value("--hosts")?.parse().map_err(|e| format!("--hosts: {e}"))?,
            "--days" => options.days = value("--days")?.parse().map_err(|e| format!("--days: {e}"))?,
            "--slot-minutes" => {
                options.slot_minutes = value("--slot-minutes")?
                    .parse()
                    .map_err(|e| format!("--slot-minutes: {e}"))?
            }
            "--seed" => options.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--diurnal" => {
                options.diurnal = value("--diurnal")?
                    .parse()
                    .map_err(|e| format!("--diurnal: {e}"))?
            }
            "--stats" => options.stats_mode = true,
            "--help" | "-h" => {
                return Err(
                    "usage: tracegen [--hosts N] [--days D] [--slot-minutes M] [--seed S] \
                     [--diurnal A]   # writes AVTRACE v1 to stdout\n       \
                     tracegen --stats   # reads AVTRACE v1 from stdin, prints a summary"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(options)
}

fn print_stats(trace: &ChurnTrace) {
    let stats = trace.stats();
    println!("nodes               {}", stats.num_nodes);
    println!("slots               {}", stats.num_slots);
    println!("slot width          {}", trace.slot_duration());
    println!("mean availability   {:.3}", stats.mean_availability);
    println!("transitions         {}", stats.transitions);
    println!(
        "online min/mean/max {} / {:.1} / {}",
        stats.min_online, stats.mean_online, stats.max_online
    );
    // Availability histogram, 10 buckets.
    let mut counts = [0usize; 10];
    for i in 0..trace.num_nodes() {
        let av = trace.long_term_availability(i).value();
        counts[((av * 10.0) as usize).min(9)] += 1;
    }
    println!("availability histogram (0.1 buckets):");
    for (b, count) in counts.iter().enumerate() {
        println!("  [{:.1},{:.1})  {count}", b as f64 / 10.0, (b + 1) as f64 / 10.0);
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if options.stats_mode {
        match ChurnTrace::read_from(io::stdin().lock()) {
            Ok(trace) => {
                print_stats(&trace);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to read trace from stdin: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let trace = OvernetModel::default()
            .hosts(options.hosts)
            .days(options.days)
            .slot_minutes(options.slot_minutes)
            .diurnal_amplitude(options.diurnal)
            .generate(options.seed);
        let stdout = io::stdout();
        let mut out = stdout.lock();
        if let Err(e) = trace.write_to(&mut out).and_then(|()| out.flush()) {
            eprintln!("failed to write trace: {e}");
            return ExitCode::FAILURE;
        }
        ExitCode::SUCCESS
    }
}
