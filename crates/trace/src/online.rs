//! An incrementally maintained index of the online population.
//!
//! Event-driven maintenance asks "who is online right now?" thousands of
//! times per simulated minute (bootstrap seeding, initiator selection),
//! but the answer only changes when the trace crosses a slot boundary —
//! every 20 minutes at Overnet granularity. [`OnlineIndex`] exploits
//! that: it caches the online set per slot and refreshes with one `O(N)`
//! column scan *per slot transition*, so the per-event cost collapses
//! from materializing a fresh `Vec<usize>` (as
//! [`ChurnTrace::online_at`] does) to a borrow of the cached slice plus
//! `O(k)` sampling.

use avmem_sim::SimTime;
use avmem_util::Rng;

use crate::churn::ChurnTrace;

/// Cached index of the nodes online in the current trace slot.
///
/// # Examples
///
/// ```
/// use avmem_sim::SimTime;
/// use avmem_trace::{OnlineIndex, OvernetModel};
///
/// let trace = OvernetModel::default().hosts(50).days(1).generate(3);
/// let mut index = OnlineIndex::new();
/// index.refresh(&trace, SimTime::ZERO);
/// let cached: Vec<usize> = index.online().iter().map(|&i| i as usize).collect();
/// assert_eq!(cached, trace.online_at(SimTime::ZERO));
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineIndex {
    /// The slot the cache reflects (`None` before the first refresh).
    slot: Option<usize>,
    /// Ascending node indices online in `slot`.
    online: Vec<u32>,
}

impl OnlineIndex {
    /// Creates an empty index; call [`OnlineIndex::refresh`] before use.
    pub fn new() -> Self {
        OnlineIndex::default()
    }

    /// Brings the index up to date with the slot containing `now`.
    ///
    /// A no-op when `now` falls in the already-cached slot — the common
    /// case, since maintenance events are far denser than slot
    /// boundaries. Returns whether the cache was rebuilt.
    pub fn refresh(&mut self, trace: &ChurnTrace, now: SimTime) -> bool {
        let slot = trace.slot_at(now);
        if self.slot == Some(slot) {
            return false;
        }
        self.online.clear();
        for i in 0..trace.num_nodes() {
            if trace.is_online_in_slot(i, slot) {
                self.online.push(i as u32);
            }
        }
        self.slot = Some(slot);
        true
    }

    /// The online node indices, ascending. Empty before the first
    /// [`OnlineIndex::refresh`].
    pub fn online(&self) -> &[u32] {
        &self.online
    }

    /// Number of online nodes in the cached slot.
    pub fn len(&self) -> usize {
        self.online.len()
    }

    /// Whether no node is online (or the index was never refreshed).
    pub fn is_empty(&self) -> bool {
        self.online.is_empty()
    }

    /// Samples up to `k` *distinct* online nodes other than `exclude`,
    /// uniformly, into `out` (cleared first).
    ///
    /// Cost is `O(k)` expected draws via rejection against the cached
    /// slice — independent of the population size — except when fewer
    /// than `k` candidates exist, in which case all of them are returned
    /// (in ascending order) without consuming randomness.
    pub fn sample_excluding<R: Rng>(
        &self,
        rng: &mut R,
        k: usize,
        exclude: usize,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        let excluded_present = self.online.binary_search(&(exclude as u32)).is_ok();
        let candidates = self.online.len() - usize::from(excluded_present);
        if candidates <= k {
            out.extend(self.online.iter().copied().filter(|&i| i as usize != exclude));
            return;
        }
        while out.len() < k {
            let pick = self.online[rng.index(self.online.len())];
            if pick as usize == exclude || out.contains(&pick) {
                continue;
            }
            out.push(pick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overnet::OvernetModel;
    use avmem_sim::SimDuration;
    use avmem_util::Xoshiro256;

    fn trace() -> ChurnTrace {
        OvernetModel::default().hosts(80).days(1).generate(11)
    }

    #[test]
    fn matches_online_at_across_slots() {
        let t = trace();
        let mut index = OnlineIndex::new();
        for s in 0..t.num_slots() {
            let now = SimTime::from_millis(s as u64 * t.slot_duration().as_millis());
            index.refresh(&t, now);
            let cached: Vec<usize> = index.online().iter().map(|&i| i as usize).collect();
            assert_eq!(cached, t.online_at(now), "slot {s}");
            assert_eq!(index.len(), t.online_count_at(now));
        }
    }

    #[test]
    fn refresh_is_a_no_op_within_a_slot() {
        let t = trace();
        let mut index = OnlineIndex::new();
        assert!(index.refresh(&t, SimTime::ZERO));
        // Any instant inside the same slot: cache untouched.
        assert!(!index.refresh(&t, SimTime::ZERO + SimDuration::from_mins(19)));
        // Next slot: rebuilt.
        assert!(index.refresh(&t, SimTime::ZERO + SimDuration::from_mins(20)));
    }

    #[test]
    fn sample_is_distinct_and_excludes() {
        let t = trace();
        let mut index = OnlineIndex::new();
        index.refresh(&t, SimTime::ZERO);
        let exclude = index.online()[0] as usize;
        let mut rng = Xoshiro256::new(5);
        let mut out = Vec::new();
        for _ in 0..50 {
            index.sample_excluding(&mut rng, 3, exclude, &mut out);
            assert_eq!(out.len(), 3.min(index.len().saturating_sub(1)));
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), out.len(), "duplicates in {out:?}");
            assert!(out.iter().all(|&i| i as usize != exclude));
            assert!(out.iter().all(|&i| index.online().contains(&i)));
        }
    }

    #[test]
    fn sample_returns_everything_when_short() {
        let t = ChurnTrace::from_rows(
            SimDuration::from_mins(20),
            vec![
                vec![true],
                vec![true],
                vec![false],
                vec![true],
            ],
        );
        let mut index = OnlineIndex::new();
        index.refresh(&t, SimTime::ZERO);
        let mut rng = Xoshiro256::new(1);
        let mut out = Vec::new();
        index.sample_excluding(&mut rng, 5, 0, &mut out);
        assert_eq!(out, vec![1, 3]);
        index.sample_excluding(&mut rng, 5, 7, &mut out);
        assert_eq!(out, vec![0, 1, 3]);
    }

    #[test]
    fn sample_zero_is_empty() {
        let t = trace();
        let mut index = OnlineIndex::new();
        index.refresh(&t, SimTime::ZERO);
        let mut rng = Xoshiro256::new(2);
        let mut out = vec![9];
        index.sample_excluding(&mut rng, 0, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn unrefreshed_index_is_empty() {
        let index = OnlineIndex::new();
        assert!(index.is_empty());
        assert_eq!(index.online(), &[] as &[u32]);
    }
}
