//! Synthetic Overnet-like churn generation.
//!
//! The original evaluation replays the Overnet availability trace of
//! Bhagwan, Savage and Voelker (IPTPS'03): 1442 hosts probed every 20
//! minutes for 7 days, with a *heavily skewed* availability distribution —
//! "50% of hosts have a 10-day availability lower than 30%" (§1 of the
//! AVMEM paper). That data set is not redistributable, so [`OvernetModel`]
//! synthesizes traces with the same marginals:
//!
//! * per-host long-term availability drawn from a skewed three-component
//!   mixture (defaults: half the mass below 0.3, a thin tail of
//!   highly-available hosts);
//! * slot-level churn produced by a two-state Markov chain whose
//!   stationary distribution matches the host's target availability and
//!   whose mean session length is configurable (hosts churn multiple
//!   times per day, as in the measured trace);
//! * an optional diurnal modulation, since the measured trace shows
//!   day/night cycles.
//!
//! The generator is deterministic in its seed.

use avmem_sim::SimDuration;
use avmem_util::{Rng, SplitMix64};
use serde::{Deserialize, Serialize};

use crate::churn::ChurnTrace;

/// Configuration and builder for synthetic Overnet-like churn traces.
///
/// The default configuration matches the paper's trace geometry: 1442
/// hosts, 7 days, 20-minute slots.
///
/// # Examples
///
/// ```
/// use avmem_trace::OvernetModel;
///
/// let trace = OvernetModel::default().hosts(200).days(2).generate(7);
/// assert_eq!(trace.num_nodes(), 200);
/// assert_eq!(trace.num_slots(), 2 * 72); // 72 twenty-minute slots per day
///
/// // Same seed, same trace.
/// let again = OvernetModel::default().hosts(200).days(2).generate(7);
/// assert_eq!(trace, again);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OvernetModel {
    hosts: usize,
    days: u64,
    slot_minutes: u64,
    mean_up_session_slots: f64,
    diurnal_amplitude: f64,
    drift_fraction: f64,
    low_fraction: f64,
    mid_fraction: f64,
    low_range: (f64, f64),
    mid_range: (f64, f64),
    high_range: (f64, f64),
}

impl Default for OvernetModel {
    fn default() -> Self {
        OvernetModel {
            hosts: 1442,
            days: 7,
            slot_minutes: 20,
            // ~2 hours mean up-session: hosts churn several times a day,
            // consistent with the Grid'5000/Overnet observations cited in §1.
            mean_up_session_slots: 6.0,
            diurnal_amplitude: 0.0,
            drift_fraction: 0.0,
            // Availability mixture: 50% low (matching "50% of hosts below
            // 0.3" from Bhagwan et al.), 30% middle, 20% concentrated
            // high. The high cluster mirrors the measured trace's heavy
            // mass of (near-)always-on hosts, which dominates the
            // *online* population (the paper's Fig. 2a peaks at the top
            // availability bucket).
            low_fraction: 0.5,
            mid_fraction: 0.3,
            low_range: (0.02, 0.30),
            mid_range: (0.30, 0.85),
            high_range: (0.85, 0.999),
        }
    }
}

impl OvernetModel {
    /// Creates the default model (1442 hosts, 7 days, 20-minute slots).
    pub fn new() -> Self {
        OvernetModel::default()
    }

    /// Sets the number of hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0`.
    pub fn hosts(mut self, hosts: usize) -> Self {
        assert!(hosts > 0, "need at least one host");
        self.hosts = hosts;
        self
    }

    /// Sets the trace length in days.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`.
    pub fn days(mut self, days: u64) -> Self {
        assert!(days > 0, "need at least one day");
        self.days = days;
        self
    }

    /// Sets the probe-slot width in minutes (the paper uses 20).
    ///
    /// # Panics
    ///
    /// Panics if `minutes == 0` or a day is not a whole number of slots.
    pub fn slot_minutes(mut self, minutes: u64) -> Self {
        assert!(minutes > 0, "slot width must be positive");
        assert!(
            1440 % minutes == 0,
            "a day must be a whole number of slots"
        );
        self.slot_minutes = minutes;
        self
    }

    /// Sets the mean up-session length in slots (controls churn rate
    /// independently of availability).
    ///
    /// # Panics
    ///
    /// Panics if `slots < 1.0`.
    pub fn mean_up_session_slots(mut self, slots: f64) -> Self {
        assert!(slots >= 1.0, "mean session must be at least one slot");
        self.mean_up_session_slots = slots;
        self
    }

    /// Sets the diurnal modulation amplitude in `[0, 1)`: availability
    /// targets swing by `±amplitude` over a 24-hour sine.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is not in `[0, 1)`.
    pub fn diurnal_amplitude(mut self, amplitude: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        self.diurnal_amplitude = amplitude;
        self
    }

    /// Sets the fraction of hosts whose availability *drifts*: a
    /// drifting host redraws a second target from the mixture and
    /// interpolates linearly from the first to the second across the
    /// trace. Availability in real systems is not stationary (users
    /// change habits, machines get redeployed); drift is what makes the
    /// monitoring service's *aged* estimates and AVMEM's refresh
    /// migration matter.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn drift_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "drift fraction must be in [0, 1]"
        );
        self.drift_fraction = fraction;
        self
    }

    /// Overrides the availability mixture: `low_fraction` of hosts drawn
    /// uniformly from `low_range`, `mid_fraction` from `mid_range`, the
    /// rest from `high_range`.
    ///
    /// # Panics
    ///
    /// Panics if fractions are negative or sum above 1, or any range is
    /// not inside `[0, 1]` in increasing order.
    pub fn mixture(
        mut self,
        low_fraction: f64,
        low_range: (f64, f64),
        mid_fraction: f64,
        mid_range: (f64, f64),
        high_range: (f64, f64),
    ) -> Self {
        assert!(low_fraction >= 0.0 && mid_fraction >= 0.0);
        assert!(low_fraction + mid_fraction <= 1.0, "fractions exceed 1");
        for (lo, hi) in [low_range, mid_range, high_range] {
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi);
        }
        self.low_fraction = low_fraction;
        self.mid_fraction = mid_fraction;
        self.low_range = low_range;
        self.mid_range = mid_range;
        self.high_range = high_range;
        self
    }

    /// Draws one host's target long-term availability from the mixture.
    fn draw_target_availability<R: Rng>(&self, rng: &mut R) -> f64 {
        let u = rng.next_f64();
        let (lo, hi) = if u < self.low_fraction {
            self.low_range
        } else if u < self.low_fraction + self.mid_fraction {
            self.mid_range
        } else {
            self.high_range
        };
        rng.range_f64(lo, hi.max(lo + f64::EPSILON))
    }

    /// Generates a deterministic trace for the given seed.
    pub fn generate(&self, seed: u64) -> ChurnTrace {
        let slots_per_day = (1440 / self.slot_minutes) as usize;
        let slots = slots_per_day * self.days as usize;
        let mut master = SplitMix64::new(seed);
        let mut rows = Vec::with_capacity(self.hosts);

        for host in 0..self.hosts {
            let mut rng = master.fork(host as u64);
            let start_target = self.draw_target_availability(&mut rng);
            let end_target = if self.drift_fraction > 0.0 && rng.chance(self.drift_fraction) {
                self.draw_target_availability(&mut rng)
            } else {
                start_target
            };
            rows.push(self.generate_row(&mut rng, start_target, end_target, slots, slots_per_day));
        }
        ChurnTrace::from_rows(SimDuration::from_mins(self.slot_minutes), rows)
    }

    /// Two-state Markov chain over slots whose stationary availability
    /// interpolates from `start_target` to `end_target`, with mean
    /// up-session `mean_up_session_slots`.
    fn generate_row<R: Rng>(
        &self,
        rng: &mut R,
        start_target: f64,
        end_target: f64,
        slots: usize,
        slots_per_day: usize,
    ) -> Vec<bool> {
        let mut row = Vec::with_capacity(slots);
        let mut up = rng.chance(start_target);
        for s in 0..slots {
            row.push(up);
            // Drift: the instantaneous target moves linearly across the
            // trace.
            let progress = s as f64 / slots.max(1) as f64;
            let target = start_target + (end_target - start_target) * progress;
            // Diurnal modulation of the *target*: hosts are more likely
            // online at the day peak.
            let phase = (s % slots_per_day) as f64 / slots_per_day as f64;
            let modulated = if self.diurnal_amplitude > 0.0 {
                (target * (1.0 + self.diurnal_amplitude * (std::f64::consts::TAU * phase).sin()))
                    .clamp(0.001, 0.999)
            } else {
                target.clamp(0.001, 0.999)
            };
            let (p_down, p_up) = transition_probabilities(modulated, self.mean_up_session_slots);
            up = if up {
                !rng.chance(p_down)
            } else {
                rng.chance(p_up)
            };
        }
        row
    }
}

/// Computes `(P(up→down), P(down→up))` for a two-state chain with
/// stationary availability `a` and mean up-session `mean_up` slots.
///
/// Stationarity requires `p_up / (p_up + p_down) = a`. We fix
/// `p_down = 1 / mean_up` and derive `p_up = a·p_down / (1−a)`; when that
/// exceeds 1 (very high availability with short sessions) we instead pin
/// `p_up = 1` and derive `p_down = (1−a)/a`.
pub(crate) fn transition_probabilities(a: f64, mean_up: f64) -> (f64, f64) {
    let p_down = 1.0 / mean_up;
    let p_up = a * p_down / (1.0 - a);
    if p_up <= 1.0 {
        (p_down, p_up)
    } else {
        ((1.0 - a) / a, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_paper() {
        let model = OvernetModel::default();
        let trace = model.hosts(50).generate(1);
        assert_eq!(trace.num_slots(), 7 * 72);
        assert_eq!(
            trace.slot_duration(),
            SimDuration::from_mins(20)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = OvernetModel::default().hosts(30).days(1).generate(5);
        let b = OvernetModel::default().hosts(30).days(1).generate(5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = OvernetModel::default().hosts(30).days(1).generate(5);
        let b = OvernetModel::default().hosts(30).days(1).generate(6);
        assert_ne!(a, b);
    }

    #[test]
    fn availability_distribution_is_skewed() {
        // The headline Overnet stat: about half the hosts below 0.3.
        let trace = OvernetModel::default().hosts(1442).generate(42);
        let below = (0..trace.num_nodes())
            .filter(|&i| trace.long_term_availability(i).value() < 0.3)
            .count();
        let frac = below as f64 / trace.num_nodes() as f64;
        assert!(
            (0.40..0.60).contains(&frac),
            "fraction below 0.3 availability = {frac}"
        );
    }

    #[test]
    fn stationary_availability_tracks_target() {
        // With long traces the Markov chain's empirical availability
        // should be near its stationary target. We check the mean over
        // hosts lands near the mixture mean.
        let model = OvernetModel::default().hosts(300).days(7);
        let trace = model.generate(9);
        let stats = trace.stats();
        // Mixture mean: 0.5·0.16 + 0.3·0.5 + 0.2·0.8475 ≈ 0.40.
        assert!(
            (0.30..0.50).contains(&stats.mean_availability),
            "mean availability = {}",
            stats.mean_availability
        );
    }

    #[test]
    fn hosts_churn_multiple_times() {
        let trace = OvernetModel::default().hosts(100).generate(3);
        let stats = trace.stats();
        // With ~2 h mean sessions over 7 days, transitions are plentiful.
        assert!(
            stats.transitions > 1000,
            "transitions = {}",
            stats.transitions
        );
    }

    #[test]
    fn diurnal_modulation_changes_online_counts() {
        let flat = OvernetModel::default().hosts(400).days(2).generate(11);
        let wavy = OvernetModel::default()
            .hosts(400)
            .days(2)
            .diurnal_amplitude(0.8)
            .generate(11);
        // Peak-to-trough swing should widen under modulation.
        let swing = |t: &ChurnTrace| {
            let s = t.stats();
            s.max_online - s.min_online
        };
        assert!(swing(&wavy) >= swing(&flat), "diurnal should widen swing");
    }

    #[test]
    fn transition_probabilities_are_stationary() {
        for &(a, m) in &[(0.1, 6.0), (0.5, 6.0), (0.9, 6.0), (0.99, 3.0)] {
            let (p_down, p_up) = transition_probabilities(a, m);
            assert!((0.0..=1.0).contains(&p_down), "p_down={p_down}");
            assert!((0.0..=1.0).contains(&p_up), "p_up={p_up}");
            let stationary = p_up / (p_up + p_down);
            assert!(
                (stationary - a).abs() < 1e-9,
                "a={a} stationary={stationary}"
            );
        }
    }

    #[test]
    fn drift_changes_half_trace_availability() {
        // With 100% drift, per-host availability in the first half of the
        // trace should frequently differ from the second half.
        let trace = OvernetModel::default()
            .hosts(200)
            .days(6)
            .drift_fraction(1.0)
            .generate(31);
        let half = trace.num_slots() / 2;
        let mut moved = 0;
        for i in 0..trace.num_nodes() {
            let first: usize = (0..half)
                .filter(|&s| trace.is_online_in_slot(i, s))
                .count();
            let second: usize = (half..trace.num_slots())
                .filter(|&s| trace.is_online_in_slot(i, s))
                .count();
            let a1 = first as f64 / half as f64;
            let a2 = second as f64 / (trace.num_slots() - half) as f64;
            if (a1 - a2).abs() > 0.15 {
                moved += 1;
            }
        }
        assert!(
            moved > trace.num_nodes() / 4,
            "only {moved} hosts drifted noticeably"
        );
    }

    #[test]
    fn zero_drift_is_default_behaviour() {
        let plain = OvernetModel::default().hosts(40).days(1).generate(7);
        let no_drift = OvernetModel::default()
            .hosts(40)
            .days(1)
            .drift_fraction(0.0)
            .generate(7);
        assert_eq!(plain, no_drift);
    }

    #[test]
    fn mixture_override_is_respected() {
        let trace = OvernetModel::default()
            .hosts(300)
            .days(2)
            .mixture(1.0, (0.0, 0.05), 0.0, (0.5, 0.5), (0.9, 1.0))
            .generate(13);
        let stats = trace.stats();
        assert!(
            stats.mean_availability < 0.1,
            "all-low mixture should give low mean, got {}",
            stats.mean_availability
        );
    }

    #[test]
    #[should_panic(expected = "whole number of slots")]
    fn bad_slot_width_panics() {
        let _ = OvernetModel::default().slot_minutes(7);
    }
}
