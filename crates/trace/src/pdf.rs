//! The discretized availability PDF `p(·)` and its derived quantities.
//!
//! §2.1 of the paper: "the PDF of the availability distribution of the
//! system is specified as p : \[0,1\] → \[0,1\], i.e., p(a)·da is the fraction
//! of nodes with availability between a and (a−da)". The PDF — like the
//! stable system size `N*` — is computed offline (by a crawler or a
//! central server), communicated to all nodes pre-run-time, and used
//! *consistently* thereafter. Predicates I.B, I.C and II.B consume it:
//!
//! * `p(av(y))` — the density at the candidate's availability;
//! * `N*_av(x) = N* · ∫_{av(x)−ε}^{av(x)+ε} p(a) da` — expected online
//!   nodes in `x`'s horizontal band;
//! * `N*min_av(x) = N* · min { ∫_v^{v+ε} p(a) da : [v, v+ε] ⊆
//!   [av(x)−ε, av(x)+ε] }` — the thinnest ε-window inside the band.
//!
//! "These values can be easily calculated from a discretized PDF
//! distribution of the system created from a small sample set of nodes" —
//! [`AvailabilityPdf`] is exactly that discretization, with Laplace
//! smoothing so that the density never vanishes (predicate I.B divides by
//! `p(av(y))`; an exact zero would make the sliver probability blow up to
//! the `min(…, 1.0)` cap for every candidate in an empty band, which is
//! the intended behaviour, but smoothing keeps estimates stable for thin
//! non-empty bands too).

use avmem_util::Availability;
use serde::{Deserialize, Serialize};

/// A discretized availability PDF over `[0, 1]`.
///
/// # Examples
///
/// ```
/// use avmem_trace::AvailabilityPdf;
/// use avmem_util::Availability;
///
/// // A population concentrated at low availability.
/// let sample: Vec<Availability> = (0..100)
///     .map(|i| Availability::saturating(if i < 80 { 0.15 } else { 0.85 }))
///     .collect();
/// let pdf = AvailabilityPdf::from_sample(&sample, 10);
///
/// // Density is much higher in the crowded band.
/// let low = pdf.density(Availability::saturating(0.15));
/// let high = pdf.density(Availability::saturating(0.85));
/// assert!(low > high);
///
/// // Total mass integrates to one.
/// assert!((pdf.mass_between(0.0, 1.0) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityPdf {
    /// Probability mass per bucket (sums to 1).
    mass: Vec<f64>,
}

impl AvailabilityPdf {
    /// Builds a PDF from a sample of availabilities using `buckets`
    /// equal-width buckets and Laplace (+1) smoothing.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or the sample is empty.
    pub fn from_sample(sample: &[Availability], buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(!sample.is_empty(), "need a non-empty sample");
        let mut counts = vec![1.0f64; buckets]; // Laplace smoothing
        for av in sample {
            let b = ((av.value() * buckets as f64).floor() as usize).min(buckets - 1);
            counts[b] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        AvailabilityPdf {
            mass: counts.into_iter().map(|c| c / total).collect(),
        }
    }

    /// Builds a PDF from weighted samples: each availability contributes
    /// `weight` to its bucket (plus Laplace smoothing).
    ///
    /// AVMEM's `N*` counts *online* nodes (§2.1), so the matching PDF is
    /// the availability distribution *of online nodes*: a node with
    /// availability `a` is online a fraction `a` of the time, hence
    /// weighting each sampled node by its own availability yields the
    /// online-node density.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`, the sample is empty, or any weight is
    /// negative or non-finite.
    pub fn from_weighted_sample(sample: &[(Availability, f64)], buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(!sample.is_empty(), "need a non-empty sample");
        let mut counts = vec![1.0f64; buckets]; // Laplace smoothing
        for (av, weight) in sample {
            assert!(
                weight.is_finite() && *weight >= 0.0,
                "weights must be finite and non-negative"
            );
            let b = ((av.value() * buckets as f64).floor() as usize).min(buckets - 1);
            counts[b] += weight;
        }
        let total: f64 = counts.iter().sum();
        AvailabilityPdf {
            mass: counts.into_iter().map(|c| c / total).collect(),
        }
    }

    /// Builds a PDF directly from per-bucket masses (normalizing them).
    ///
    /// # Panics
    ///
    /// Panics if `mass` is empty, contains negatives/NaN, or sums to zero.
    pub fn from_bucket_mass(mass: Vec<f64>) -> Self {
        assert!(!mass.is_empty(), "need at least one bucket");
        assert!(
            mass.iter().all(|&m| m.is_finite() && m >= 0.0),
            "bucket masses must be finite and non-negative"
        );
        let total: f64 = mass.iter().sum();
        assert!(total > 0.0, "total mass must be positive");
        AvailabilityPdf {
            mass: mass.into_iter().map(|m| m / total).collect(),
        }
    }

    /// The uniform PDF on `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn uniform(buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        AvailabilityPdf {
            mass: vec![1.0 / buckets as f64; buckets],
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.mass.len()
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> f64 {
        1.0 / self.mass.len() as f64
    }

    /// Probability mass of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bucket_mass(&self, i: usize) -> f64 {
        self.mass[i]
    }

    /// The density `p(a)`: bucket mass divided by bucket width, so that
    /// `∫ p = 1`.
    pub fn density(&self, a: Availability) -> f64 {
        let b = ((a.value() * self.mass.len() as f64).floor() as usize).min(self.mass.len() - 1);
        self.mass[b] / self.bucket_width()
    }

    /// `∫_lo^hi p(a) da` for `lo ≤ hi`, both clamped into `[0, 1]`.
    /// Handles partial bucket overlap exactly (the PDF is piecewise
    /// constant).
    pub fn mass_between(&self, lo: f64, hi: f64) -> f64 {
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(0.0, 1.0);
        if hi <= lo {
            return 0.0;
        }
        let w = self.bucket_width();
        let mut total = 0.0;
        for (i, &m) in self.mass.iter().enumerate() {
            let b_lo = i as f64 * w;
            let b_hi = b_lo + w;
            let overlap = (hi.min(b_hi) - lo.max(b_lo)).max(0.0);
            total += m * overlap / w;
        }
        total
    }

    /// The paper's `N*_av(x)`: expected number of online nodes in the
    /// horizontal band `[av(x)−ε, av(x)+ε]`, for a stable system size
    /// `n_star`.
    pub fn expected_in_band(&self, n_star: f64, center: Availability, epsilon: f64) -> f64 {
        n_star * self.mass_between(center.value() - epsilon, center.value() + epsilon)
    }

    /// The paper's `N*min_av(x)`: the minimum expected number of online
    /// nodes over any ε-wide window wholly inside `[av(x)−ε, av(x)+ε]`.
    ///
    /// The band is clamped to `[0, 1]` first, matching how a deployed
    /// system would read its discretized PDF near the edges. The mass of
    /// a sliding window over a piecewise-constant density is piecewise
    /// linear in the window position, so the minimum is attained when a
    /// window endpoint aligns with a bucket edge (or at the band ends);
    /// we evaluate exactly those candidate positions.
    pub fn min_window_mass(&self, n_star: f64, center: Availability, epsilon: f64) -> f64 {
        let band_lo = (center.value() - epsilon).max(0.0);
        let band_hi = (center.value() + epsilon).min(1.0);
        if band_hi - band_lo <= epsilon {
            // Degenerate: the clamped band is no wider than one window;
            // the only window is the band itself (or as much as fits).
            return n_star * self.mass_between(band_lo, band_hi);
        }
        let w = self.bucket_width();
        let last_start = band_hi - epsilon;
        let mut candidates = vec![band_lo, last_start];
        // Bucket edges that could serve as a window start, either
        // directly or by aligning the window *end* with an edge.
        let mut edge = (band_lo / w).ceil() * w;
        while edge < band_hi {
            if edge <= last_start {
                candidates.push(edge);
            }
            let start_for_end = edge - epsilon;
            if start_for_end >= band_lo && start_for_end <= last_start {
                candidates.push(start_for_end);
            }
            edge += w;
        }
        let mut min_mass = f64::INFINITY;
        for v in candidates {
            let m = self.mass_between(v, v + epsilon);
            if m < min_mass {
                min_mass = m;
            }
        }
        n_star * min_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn av(v: f64) -> Availability {
        Availability::saturating(v)
    }

    #[test]
    fn uniform_pdf_has_unit_density() {
        let pdf = AvailabilityPdf::uniform(10);
        for i in 0..10 {
            let a = av(i as f64 / 10.0 + 0.05);
            assert!((pdf.density(a) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_between_full_range_is_one() {
        let pdf = AvailabilityPdf::from_bucket_mass(vec![1.0, 3.0, 6.0]);
        assert!((pdf.mass_between(0.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mass_between_partial_buckets() {
        let pdf = AvailabilityPdf::from_bucket_mass(vec![1.0, 1.0]);
        // Half of the first bucket = 0.25 of total mass.
        assert!((pdf.mass_between(0.0, 0.25) - 0.25).abs() < 1e-12);
        // Straddling the bucket edge.
        assert!((pdf.mass_between(0.25, 0.75) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mass_between_clamps_and_orders() {
        let pdf = AvailabilityPdf::uniform(4);
        assert_eq!(pdf.mass_between(0.5, 0.2), 0.0);
        assert!((pdf.mass_between(-1.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_sample_concentrates_mass() {
        let sample: Vec<Availability> = (0..1000).map(|_| av(0.55)).collect();
        let pdf = AvailabilityPdf::from_sample(&sample, 10);
        assert!(pdf.bucket_mass(5) > 0.9);
        // Laplace smoothing keeps other buckets slightly positive.
        assert!(pdf.bucket_mass(0) > 0.0);
    }

    #[test]
    fn density_never_zero_with_smoothing() {
        let sample = vec![av(0.9); 50];
        let pdf = AvailabilityPdf::from_sample(&sample, 20);
        for i in 0..20 {
            assert!(pdf.density(av(i as f64 / 20.0 + 0.01)) > 0.0);
        }
    }

    #[test]
    fn expected_in_band_scales_with_n_star() {
        let pdf = AvailabilityPdf::uniform(10);
        let e = pdf.expected_in_band(1000.0, av(0.5), 0.1);
        assert!((e - 200.0).abs() < 1e-9); // band width 0.2 × N* 1000
    }

    #[test]
    fn min_window_uniform_equals_epsilon_mass() {
        let pdf = AvailabilityPdf::uniform(10);
        let m = pdf.min_window_mass(1000.0, av(0.5), 0.1);
        assert!((m - 100.0).abs() < 1e-9);
    }

    #[test]
    fn min_window_finds_thin_side() {
        // Dense below 0.5, sparse above.
        let mut mass = vec![2.0; 5];
        mass.extend(vec![0.5; 5]);
        let pdf = AvailabilityPdf::from_bucket_mass(mass);
        let thin = pdf.min_window_mass(1.0, av(0.5), 0.1);
        // The sparse side window [0.5, 0.6]: mass 0.5/12.5 = 0.04.
        assert!((thin - 0.04).abs() < 1e-9, "thin={thin}");
    }

    #[test]
    fn min_window_clamped_at_edges() {
        let pdf = AvailabilityPdf::uniform(10);
        // Center at 0.05: band clamps to [0, 0.15]; min ε-window has mass 0.1.
        let m = pdf.min_window_mass(1.0, av(0.05), 0.1);
        assert!((m - 0.1).abs() < 1e-9, "m={m}");
    }

    #[test]
    fn min_window_degenerate_band() {
        let pdf = AvailabilityPdf::uniform(10);
        // Center at 0.0: band [0, 0.1] is exactly one window wide.
        let m = pdf.min_window_mass(1.0, av(0.0), 0.1);
        assert!((m - 0.1).abs() < 1e-9, "m={m}");
    }

    #[test]
    fn weighted_sample_shifts_mass_toward_heavy_entries() {
        let sample = vec![(av(0.15), 0.15), (av(0.85), 0.85)];
        let pdf = AvailabilityPdf::from_weighted_sample(&sample, 10);
        assert!(
            pdf.bucket_mass(8) > pdf.bucket_mass(1),
            "weighting should favour the high-availability bucket"
        );
    }

    #[test]
    fn weighted_sample_with_equal_weights_matches_unweighted_shape() {
        let avs = [0.1, 0.1, 0.5, 0.9];
        let weighted: Vec<(Availability, f64)> = avs.iter().map(|&a| (av(a), 1.0)).collect();
        let plain: Vec<Availability> = avs.iter().map(|&a| av(a)).collect();
        let w = AvailabilityPdf::from_weighted_sample(&weighted, 10);
        let p = AvailabilityPdf::from_sample(&plain, 10);
        for i in 0..10 {
            assert!((w.bucket_mass(i) - p.bucket_mass(i)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "weights must be finite")]
    fn negative_weight_panics() {
        let _ = AvailabilityPdf::from_weighted_sample(&[(av(0.5), -1.0)], 10);
    }

    #[test]
    #[should_panic(expected = "non-empty sample")]
    fn empty_sample_panics() {
        let _ = AvailabilityPdf::from_sample(&[], 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mass_panics() {
        let _ = AvailabilityPdf::from_bucket_mass(vec![0.0, 0.0]);
    }
}
