//! Grid-style churn generation.
//!
//! §1 of the paper motivates AVMEM with Grid settings too: "Grid'5000
//! designers report that each machine reboots several tens of times per
//! day". That is a very different availability process from Overnet's:
//! most machines are *highly available in aggregate* but suffer frequent,
//! short outages (reboots between batch jobs), plus a minority of
//! long-maintenance stragglers. [`GridModel`] synthesizes such traces so
//! the overlay and operations can be evaluated under reboot-heavy churn
//! (see the `ablation-workload` experiment).

use avmem_sim::SimDuration;
use avmem_util::{Rng, SplitMix64};
use serde::{Deserialize, Serialize};

use crate::churn::ChurnTrace;

/// Configuration and builder for Grid-like churn traces.
///
/// Defaults model a Grid'5000-style cluster: 95 % of machines are up
/// ~90 % of slots with many short outages; 5 % are in long maintenance
/// (up only ~30 %).
///
/// # Examples
///
/// ```
/// use avmem_trace::GridModel;
///
/// let trace = GridModel::default().machines(64).days(1).generate(3);
/// let stats = trace.stats();
/// assert!(stats.mean_availability > 0.7);
/// // Reboot-heavy: plenty of up/down transitions.
/// assert!(stats.transitions > 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridModel {
    machines: usize,
    days: u64,
    slot_minutes: u64,
    healthy_availability: (f64, f64),
    maintenance_availability: (f64, f64),
    maintenance_fraction: f64,
    mean_up_session_slots: f64,
}

impl Default for GridModel {
    fn default() -> Self {
        GridModel {
            machines: 512,
            days: 7,
            // Finer slots than the Overnet probe: a reboot lasts minutes,
            // not a 20-minute probe period. At 5-minute slots a machine
            // with 90 % availability reboots ~30 times a day, matching
            // the Grid'5000 observation.
            slot_minutes: 5,
            healthy_availability: (0.80, 0.98),
            maintenance_availability: (0.15, 0.45),
            maintenance_fraction: 0.05,
            // Short sessions: a reboot every few slots on average.
            mean_up_session_slots: 3.0,
        }
    }
}

impl GridModel {
    /// Creates the default model (512 machines, 7 days, 20-minute slots).
    pub fn new() -> Self {
        GridModel::default()
    }

    /// Sets the number of machines.
    ///
    /// # Panics
    ///
    /// Panics if `machines == 0`.
    pub fn machines(mut self, machines: usize) -> Self {
        assert!(machines > 0, "need at least one machine");
        self.machines = machines;
        self
    }

    /// Sets the trace length in days.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`.
    pub fn days(mut self, days: u64) -> Self {
        assert!(days > 0, "need at least one day");
        self.days = days;
        self
    }

    /// Sets the fraction of machines in long maintenance, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1]`.
    pub fn maintenance_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "maintenance fraction must be in [0, 1]"
        );
        self.maintenance_fraction = fraction;
        self
    }

    /// Sets the mean up-session length in slots (lower = more reboots).
    ///
    /// # Panics
    ///
    /// Panics if `slots < 1.0`.
    pub fn mean_up_session_slots(mut self, slots: f64) -> Self {
        assert!(slots >= 1.0, "mean session must be at least one slot");
        self.mean_up_session_slots = slots;
        self
    }

    /// Generates a deterministic trace for the given seed.
    pub fn generate(&self, seed: u64) -> ChurnTrace {
        let slots = (self.days * 1440 / self.slot_minutes) as usize;
        let mut master = SplitMix64::new(seed ^ 0x6772_6964); // "grid"
        let mut rows = Vec::with_capacity(self.machines);
        for machine in 0..self.machines {
            let mut rng = master.fork(machine as u64);
            let (lo, hi) = if rng.chance(self.maintenance_fraction) {
                self.maintenance_availability
            } else {
                self.healthy_availability
            };
            let target = rng.range_f64(lo, hi.max(lo + f64::EPSILON));
            rows.push(self.generate_row(&mut rng, target, slots));
        }
        ChurnTrace::from_rows(SimDuration::from_mins(self.slot_minutes), rows)
    }

    /// Two-state chain with stationary availability `target`; same
    /// construction as the Overnet generator but with short sessions.
    fn generate_row<R: Rng>(&self, rng: &mut R, target: f64, slots: usize) -> Vec<bool> {
        let target = target.clamp(0.001, 0.999);
        let p_down = 1.0 / self.mean_up_session_slots;
        let p_up_raw = target * p_down / (1.0 - target);
        let (p_down, p_up) = if p_up_raw <= 1.0 {
            (p_down, p_up_raw)
        } else {
            ((1.0 - target) / target, 1.0)
        };
        let mut up = rng.chance(target);
        let mut row = Vec::with_capacity(slots);
        for _ in 0..slots {
            row.push(up);
            up = if up {
                !rng.chance(p_down)
            } else {
                rng.chance(p_up)
            };
        }
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = GridModel::default().machines(40).days(1).generate(9);
        let b = GridModel::default().machines(40).days(1).generate(9);
        assert_eq!(a, b);
    }

    #[test]
    fn most_machines_are_highly_available() {
        let trace = GridModel::default().machines(400).days(3).generate(1);
        let high = (0..trace.num_nodes())
            .filter(|&i| trace.long_term_availability(i).value() > 0.7)
            .count();
        let frac = high as f64 / trace.num_nodes() as f64;
        assert!(frac > 0.85, "only {frac} of machines above 0.7");
    }

    #[test]
    fn maintenance_fraction_is_respected() {
        let trace = GridModel::default()
            .machines(600)
            .days(3)
            .maintenance_fraction(0.3)
            .generate(2);
        let low = (0..trace.num_nodes())
            .filter(|&i| trace.long_term_availability(i).value() < 0.5)
            .count();
        let frac = low as f64 / trace.num_nodes() as f64;
        assert!(
            (0.2..0.4).contains(&frac),
            "maintenance share {frac}, expected ≈ 0.3"
        );
    }

    /// Transitions per online node-hour (slot-width independent).
    fn hourly_churn(t: &ChurnTrace) -> f64 {
        let s = t.stats();
        let hours = t.duration().as_millis() as f64 / 3_600_000.0;
        s.transitions as f64 / (s.mean_online * hours)
    }

    #[test]
    fn grid_churns_more_than_overnet_per_online_hour() {
        // Reboot-heavy: transitions per online node-hour exceed the p2p
        // trace's.
        let grid = GridModel::default().machines(200).days(2).generate(3);
        let overnet = crate::OvernetModel::default().hosts(200).days(2).generate(3);
        assert!(
            hourly_churn(&grid) > hourly_churn(&overnet),
            "grid churn rate {} should exceed overnet {}",
            hourly_churn(&grid),
            hourly_churn(&overnet)
        );
    }

    #[test]
    fn healthy_machines_reboot_tens_of_times_a_day() {
        let trace = GridModel::default().machines(100).days(2).generate(4);
        // Count reboots (up→down transitions) for a healthy machine.
        let mut daily_rates = Vec::new();
        for i in 0..trace.num_nodes() {
            if trace.long_term_availability(i).value() < 0.7 {
                continue; // skip maintenance stragglers
            }
            let mut reboots = 0;
            let mut prev = trace.is_online_in_slot(i, 0);
            for s in 1..trace.num_slots() {
                let now = trace.is_online_in_slot(i, s);
                if prev && !now {
                    reboots += 1;
                }
                prev = now;
            }
            daily_rates.push(reboots as f64 / 2.0); // 2-day trace
        }
        let mean = daily_rates.iter().sum::<f64>() / daily_rates.len().max(1) as f64;
        assert!(
            (8.0..80.0).contains(&mean),
            "healthy machines reboot {mean}/day, expected tens"
        );
    }

    #[test]
    #[should_panic(expected = "maintenance fraction")]
    fn bad_maintenance_fraction_panics() {
        let _ = GridModel::default().maintenance_fraction(1.5);
    }
}
