//! Plain-text trace serialization.
//!
//! The on-disk format is deliberately trivial so that real availability
//! traces (e.g. the actual Overnet probe data, or PlanetLab all-pairs
//! pings) can be converted with a few lines of awk:
//!
//! ```text
//! AVTRACE v1
//! slot_millis 1200000
//! nodes 3
//! slots 4
//! 1111
//! 0110
//! 0000
//! ```
//!
//! One row per node; `1` = online in that slot.

use std::io::{self, BufRead, BufReader, Read, Write};

use avmem_sim::SimDuration;

use crate::churn::ChurnTrace;

/// Error parsing a trace file.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file deviates from the `AVTRACE v1` format; the message names
    /// the offending line.
    Format(String),
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ParseTraceError::Format(msg) => write!(f, "invalid trace format: {msg}"),
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            ParseTraceError::Format(_) => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

impl ChurnTrace {
    /// Writes the trace in `AVTRACE v1` format.
    ///
    /// A `&mut` reference can be passed as the writer.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "AVTRACE v1")?;
        writeln!(w, "slot_millis {}", self.slot_duration().as_millis())?;
        writeln!(w, "nodes {}", self.num_nodes())?;
        writeln!(w, "slots {}", self.num_slots())?;
        let mut row = String::with_capacity(self.num_slots());
        for i in 0..self.num_nodes() {
            row.clear();
            for s in 0..self.num_slots() {
                row.push(if self.is_online_in_slot(i, s) { '1' } else { '0' });
            }
            writeln!(w, "{row}")?;
        }
        Ok(())
    }

    /// Reads a trace in `AVTRACE v1` format.
    ///
    /// A `&mut` reference can be passed as the reader.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError::Io`] on reader failure and
    /// [`ParseTraceError::Format`] on any structural problem (bad header,
    /// wrong row count or width, characters other than `0`/`1`).
    pub fn read_from<R: Read>(r: R) -> Result<ChurnTrace, ParseTraceError> {
        let mut lines = BufReader::new(r).lines();
        let mut next_line = |what: &str| -> Result<String, ParseTraceError> {
            lines
                .next()
                .ok_or_else(|| ParseTraceError::Format(format!("missing {what}")))?
                .map_err(ParseTraceError::from)
        };

        let magic = next_line("magic header")?;
        if magic.trim() != "AVTRACE v1" {
            return Err(ParseTraceError::Format(format!(
                "bad magic line {magic:?}, expected \"AVTRACE v1\""
            )));
        }
        let slot_millis: u64 = parse_header_field(&next_line("slot_millis header")?, "slot_millis")?;
        if slot_millis == 0 {
            return Err(ParseTraceError::Format("slot_millis must be positive".into()));
        }
        let nodes: usize = parse_header_field(&next_line("nodes header")?, "nodes")?;
        let slots: usize = parse_header_field(&next_line("slots header")?, "slots")?;
        if nodes == 0 || slots == 0 {
            return Err(ParseTraceError::Format(
                "nodes and slots must be positive".into(),
            ));
        }

        let mut rows = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let line = next_line(&format!("row {i}"))?;
            let line = line.trim();
            if line.len() != slots {
                return Err(ParseTraceError::Format(format!(
                    "row {i} has {} slots, expected {slots}",
                    line.len()
                )));
            }
            let mut row = Vec::with_capacity(slots);
            for ch in line.chars() {
                match ch {
                    '0' => row.push(false),
                    '1' => row.push(true),
                    other => {
                        return Err(ParseTraceError::Format(format!(
                            "row {i} contains invalid character {other:?}"
                        )))
                    }
                }
            }
            rows.push(row);
        }
        Ok(ChurnTrace::from_rows(
            SimDuration::from_millis(slot_millis),
            rows,
        ))
    }
}

fn parse_header_field<T: std::str::FromStr>(
    line: &str,
    key: &str,
) -> Result<T, ParseTraceError> {
    let mut parts = line.split_whitespace();
    let found_key = parts
        .next()
        .ok_or_else(|| ParseTraceError::Format(format!("empty line where {key} expected")))?;
    if found_key != key {
        return Err(ParseTraceError::Format(format!(
            "expected header {key:?}, found {found_key:?}"
        )));
    }
    let value = parts
        .next()
        .ok_or_else(|| ParseTraceError::Format(format!("header {key} missing a value")))?;
    value
        .parse()
        .map_err(|_| ParseTraceError::Format(format!("header {key} has invalid value {value:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overnet::OvernetModel;

    #[test]
    fn round_trip_preserves_trace() {
        let trace = OvernetModel::default().hosts(20).days(1).generate(17);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let read = ChurnTrace::read_from(buf.as_slice()).unwrap();
        assert_eq!(trace, read);
    }

    #[test]
    fn format_is_human_readable() {
        let trace = ChurnTrace::from_rows(
            SimDuration::from_mins(20),
            vec![vec![true, false], vec![false, true]],
        );
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("AVTRACE v1\n"));
        assert!(text.contains("slot_millis 1200000"));
        assert!(text.contains("\n10\n"));
        assert!(text.contains("\n01\n"));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = ChurnTrace::read_from("NOPE\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseTraceError::Format(_)));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_wrong_row_width() {
        let text = "AVTRACE v1\nslot_millis 1000\nnodes 1\nslots 3\n10\n";
        let err = ChurnTrace::read_from(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("row 0"));
    }

    #[test]
    fn rejects_invalid_characters() {
        let text = "AVTRACE v1\nslot_millis 1000\nnodes 1\nslots 3\n1x0\n";
        let err = ChurnTrace::read_from(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid character"));
    }

    #[test]
    fn rejects_missing_rows() {
        let text = "AVTRACE v1\nslot_millis 1000\nnodes 2\nslots 2\n10\n";
        let err = ChurnTrace::read_from(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("row 1"));
    }

    #[test]
    fn rejects_zero_slot_width() {
        let text = "AVTRACE v1\nslot_millis 0\nnodes 1\nslots 1\n1\n";
        let err = ChurnTrace::read_from(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("slot_millis"));
    }

    #[test]
    fn rejects_swapped_headers() {
        let text = "AVTRACE v1\nnodes 1\nslot_millis 1000\nslots 1\n1\n";
        let err = ChurnTrace::read_from(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected header"));
    }
}
