//! Property-based tests for churn traces and availability PDFs.

use proptest::prelude::*;

use avmem_sim::{SimDuration, SimTime};
use avmem_trace::{AvailabilityPdf, ChurnTrace, OvernetModel};
use avmem_util::Availability;

fn arbitrary_rows() -> impl Strategy<Value = Vec<Vec<bool>>> {
    (1usize..12, 1usize..48).prop_flat_map(|(nodes, slots)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), slots..=slots), nodes..=nodes)
    })
}

proptest! {
    #[test]
    fn trace_round_trips_through_io(rows in arbitrary_rows()) {
        let trace = ChurnTrace::from_rows(SimDuration::from_mins(20), rows);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let read = ChurnTrace::read_from(buf.as_slice()).unwrap();
        prop_assert_eq!(trace, read);
    }

    #[test]
    fn long_term_availability_matches_row_fraction(rows in arbitrary_rows()) {
        let trace = ChurnTrace::from_rows(SimDuration::from_mins(20), rows.clone());
        for (i, row) in rows.iter().enumerate() {
            let up = row.iter().filter(|&&b| b).count();
            let expected = up as f64 / row.len() as f64;
            prop_assert!((trace.long_term_availability(i).value() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn availability_prefix_converges_to_long_term(rows in arbitrary_rows()) {
        let trace = ChurnTrace::from_rows(SimDuration::from_mins(20), rows);
        let end = SimTime::from_millis(trace.duration().as_millis().saturating_sub(1));
        for i in 0..trace.num_nodes() {
            prop_assert_eq!(
                trace.availability_up_to(i, end),
                trace.long_term_availability(i)
            );
        }
    }

    #[test]
    fn online_counts_are_bounded(rows in arbitrary_rows()) {
        let trace = ChurnTrace::from_rows(SimDuration::from_mins(20), rows);
        let stats = trace.stats();
        prop_assert!(stats.min_online <= stats.max_online);
        prop_assert!(stats.mean_online <= stats.num_nodes as f64);
        prop_assert!(stats.max_online <= stats.num_nodes);
        for s in 0..trace.num_slots() {
            let t = SimTime::from_millis(s as u64 * trace.slot_duration().as_millis());
            let count = trace.online_count_at(t);
            prop_assert!(count >= stats.min_online && count <= stats.max_online);
        }
    }

    #[test]
    fn overnet_trace_is_deterministic_and_valid(seed in any::<u64>(), hosts in 2usize..40) {
        let a = OvernetModel::default().hosts(hosts).days(1).generate(seed);
        let b = OvernetModel::default().hosts(hosts).days(1).generate(seed);
        prop_assert_eq!(&a, &b);
        for i in 0..a.num_nodes() {
            let av = a.long_term_availability(i).value();
            prop_assert!((0.0..=1.0).contains(&av));
        }
    }

    #[test]
    fn pdf_total_mass_is_one(masses in proptest::collection::vec(0.01f64..10.0, 1..24)) {
        let pdf = AvailabilityPdf::from_bucket_mass(masses);
        prop_assert!((pdf.mass_between(0.0, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pdf_mass_is_additive(
        masses in proptest::collection::vec(0.01f64..10.0, 1..24),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        c in 0.0f64..1.0,
    ) {
        let pdf = AvailabilityPdf::from_bucket_mass(masses);
        let mut points = [a, b, c];
        points.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let [lo, mid, hi] = points;
        let split = pdf.mass_between(lo, mid) + pdf.mass_between(mid, hi);
        let whole = pdf.mass_between(lo, hi);
        prop_assert!((split - whole).abs() < 1e-9, "split {split} vs whole {whole}");
    }

    #[test]
    fn pdf_mass_is_monotone_in_interval(
        masses in proptest::collection::vec(0.01f64..10.0, 1..24),
        lo in 0.0f64..1.0,
        hi in 0.0f64..1.0,
        wider in 0.0f64..0.5,
    ) {
        let pdf = AvailabilityPdf::from_bucket_mass(masses);
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let narrow = pdf.mass_between(lo, hi);
        let wide = pdf.mass_between((lo - wider).max(0.0), (hi + wider).min(1.0));
        prop_assert!(wide + 1e-12 >= narrow);
    }

    #[test]
    fn min_window_is_at_most_any_window(
        masses in proptest::collection::vec(0.01f64..10.0, 4..16),
        center in 0.0f64..1.0,
        offset in -0.1f64..0.1,
    ) {
        let pdf = AvailabilityPdf::from_bucket_mass(masses);
        let epsilon = 0.1;
        let center_av = Availability::saturating(center);
        let min = pdf.min_window_mass(1.0, center_av, epsilon);
        // Any ε-window within the clamped band has at least `min` mass.
        let band_lo = (center - epsilon).max(0.0);
        let band_hi = (center + epsilon).min(1.0);
        if band_hi - band_lo > epsilon {
            let v = (band_lo + offset.abs()).min(band_hi - epsilon);
            let window = pdf.mass_between(v, v + epsilon);
            prop_assert!(window + 1e-9 >= min, "window {window} below min {min}");
        }
    }

    #[test]
    fn density_integrates_to_bucket_mass(
        masses in proptest::collection::vec(0.01f64..10.0, 1..16),
        bucket in 0usize..16,
    ) {
        let pdf = AvailabilityPdf::from_bucket_mass(masses);
        let b = bucket % pdf.buckets();
        let w = pdf.bucket_width();
        let lo = b as f64 * w;
        // Piecewise-constant density: mass = density × width.
        let mid = Availability::saturating(lo + w / 2.0);
        let integral = pdf.density(mid) * w;
        prop_assert!((integral - pdf.bucket_mass(b)).abs() < 1e-9);
    }

    #[test]
    fn weighted_pdf_total_is_one(
        sample in proptest::collection::vec((0.0f64..=1.0, 0.0f64..5.0), 1..64),
        buckets in 1usize..16,
    ) {
        let weighted: Vec<(Availability, f64)> = sample
            .into_iter()
            .map(|(a, w)| (Availability::saturating(a), w))
            .collect();
        let pdf = AvailabilityPdf::from_weighted_sample(&weighted, buckets);
        prop_assert!((pdf.mass_between(0.0, 1.0) - 1.0).abs() < 1e-9);
    }
}
