//! Example applications for the AVMEM reproduction.
//!
//! This crate exists to host the runnable examples in the repository's
//! top-level `examples/` directory; it exposes no library API of its own.
//! Run them with:
//!
//! ```text
//! cargo run -p avmem-examples --example quickstart
//! cargo run -p avmem-examples --example supernode_selection
//! cargo run -p avmem-examples --example avcast_publish
//! cargo run -p avmem-examples --example fingerprint_survey
//! ```
