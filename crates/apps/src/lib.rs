//! Example applications for the AVMEM reproduction.
//!
//! The runnable examples live in the repository's top-level `examples/`
//! directory and are wired in as `[[example]]` targets of the
//! `avmem_integration` crate (alongside the workspace-spanning tests);
//! this crate exposes no library API of its own. Run them with:
//!
//! ```text
//! cargo run -p avmem_integration --release --example quickstart
//! cargo run -p avmem_integration --release --example supernode_selection
//! cargo run -p avmem_integration --release --example avcast_publish
//! cargo run -p avmem_integration --release --example fingerprint_survey
//! ```
