#![warn(missing_docs)]

//! Benchmark harness for the AVMEM reproduction.
//!
//! [`setup`] builds paper-scale simulations (1442 hosts, 7 days, 20-minute
//! slots); [`figures`] implements one experiment per table/figure of the
//! paper's §4, each returning a printable, machine-checkable result
//! struct. The `figures` binary dispatches on experiment id; the
//! Criterion benches in `benches/` cover the per-operation costs.

pub mod ablations;
pub mod figures;
pub mod setup;

pub use setup::PaperSetup;
