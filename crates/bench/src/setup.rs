//! Paper-scale experiment setup.
//!
//! The evaluation methodology of §4: Overnet churn traces (1442 hosts,
//! 7 days, 20-minute slots), a 24-hour warm-up before snapshots, default
//! predicates I.B + II.B with ε = 0.1, hop latency uniform in
//! [20 ms, 80 ms], and "each point … the average of 5 different protocol
//! runs, each with 50 messages".

use std::sync::{Arc, OnceLock};

use avmem::harness::{
    AvmemSim, MaintenanceMode, OracleChoice, PairHashes, PredicateChoice, SimConfig,
};
use avmem_sim::SimDuration;
use avmem_trace::{ChurnTrace, OvernetModel};

/// Builder for paper-scale simulations.
#[derive(Debug, Clone)]
pub struct PaperSetup {
    /// Number of hosts (paper: 1442).
    pub hosts: usize,
    /// Trace length in days (paper: 7).
    pub days: u64,
    /// Trace generation seed.
    pub trace_seed: u64,
    /// Warm-up before measurements (paper: 24 h).
    pub warmup: SimDuration,
    /// Protocol runs per data point (paper: 5).
    pub runs: u64,
    /// Messages per run (paper: 50).
    pub messages_per_run: usize,
    /// Shared pair-hash matrix; computed once per setup, reused by every
    /// simulation in a sweep (the matrix depends only on `hosts`).
    /// Public only so struct-update syntax (`..PaperSetup::default()`)
    /// works; leave it defaulted.
    #[doc(hidden)]
    pub hashes: OnceLock<Arc<PairHashes>>,
}

impl Default for PaperSetup {
    fn default() -> Self {
        PaperSetup {
            hosts: 1442,
            days: 7,
            trace_seed: 20070101,
            warmup: SimDuration::from_hours(24),
            runs: 5,
            messages_per_run: 50,
            hashes: OnceLock::new(),
        }
    }
}

impl PaperSetup {
    /// Full paper scale.
    pub fn paper() -> Self {
        PaperSetup::default()
    }

    /// A reduced-scale setup for tests and smoke runs (fast in debug
    /// builds).
    pub fn small() -> Self {
        PaperSetup {
            hosts: 200,
            days: 2,
            runs: 2,
            messages_per_run: 20,
            ..PaperSetup::default()
        }
    }

    /// Generates the churn trace for this setup.
    pub fn trace(&self) -> ChurnTrace {
        OvernetModel::default()
            .hosts(self.hosts)
            .days(self.days)
            .generate(self.trace_seed)
    }

    /// The shared pair-hash matrix for this population size (computed on
    /// first use). Custom experiments building their own [`AvmemSim`]
    /// over a different trace of the *same* population can reuse it.
    pub fn shared_hashes(&self) -> Arc<PairHashes> {
        self.hashes
            .get_or_init(|| Arc::new(PairHashes::compute(self.hosts)))
            .clone()
    }

    /// Builds a warmed-up simulation with the paper-default config and
    /// the given protocol seed.
    pub fn sim(&self, seed: u64) -> AvmemSim {
        self.sim_with(seed, |_| {})
    }

    /// Builds a warmed-up simulation, letting `customize` adjust the
    /// config first (e.g. switch predicate or oracle).
    pub fn sim_with(&self, seed: u64, customize: impl FnOnce(&mut SimConfig)) -> AvmemSim {
        self.sim_over_trace(self.trace(), seed, customize)
    }

    /// Builds a warmed-up simulation over a caller-supplied trace of the
    /// same population size (e.g. a [`avmem_trace::GridModel`] workload).
    ///
    /// # Panics
    ///
    /// Panics if the trace population differs from `self.hosts`.
    pub fn sim_over_trace(
        &self,
        trace: ChurnTrace,
        seed: u64,
        customize: impl FnOnce(&mut SimConfig),
    ) -> AvmemSim {
        assert_eq!(
            trace.num_nodes(),
            self.hosts,
            "trace population must match the setup"
        );
        let mut config = SimConfig::paper_default(seed);
        customize(&mut config);
        let mut sim = AvmemSim::with_hashes(trace, config, self.shared_hashes());
        sim.warm_up(self.warmup);
        sim
    }

    /// A noisy-oracle variant (for the attack analysis figures).
    pub fn noisy_sim(&self, seed: u64) -> AvmemSim {
        self.sim_with(seed, |config| {
            config.oracle = OracleChoice::paper_noise();
        })
    }

    /// A random-overlay baseline variant (Fig. 10), degree-matched to
    /// `expected_degree`.
    pub fn random_overlay_sim(&self, seed: u64, expected_degree: f64) -> AvmemSim {
        self.sim_with(seed, |config| {
            config.predicate = PredicateChoice::Random { expected_degree };
        })
    }

    /// An event-driven maintenance variant (ablation: protocol dynamics
    /// instead of the converged overlay).
    pub fn event_driven_sim(&self, seed: u64) -> AvmemSim {
        self.sim_with(seed, |config| {
            config.maintenance = MaintenanceMode::paper_event_driven();
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_methodology() {
        let setup = PaperSetup::paper();
        assert_eq!(setup.hosts, 1442);
        assert_eq!(setup.days, 7);
        assert_eq!(setup.runs, 5);
        assert_eq!(setup.messages_per_run, 50);
        assert_eq!(setup.warmup, SimDuration::from_hours(24));
    }

    #[test]
    fn small_setup_builds_and_warms_up() {
        let setup = PaperSetup::small();
        let sim = setup.sim(1);
        assert!(sim.snapshot().mean_degree() > 0.0);
    }
}
