//! Regenerates the data series behind every figure of the paper's
//! evaluation (§4).
//!
//! ```text
//! cargo run --release -p avmem_bench --bin figures -- all
//! cargo run --release -p avmem_bench --bin figures -- fig9 fig10
//! cargo run --release -p avmem_bench --bin figures -- --small all
//! ```
//!
//! Experiment ids: `fig2 fig3 fig4 fig56 fig7 fig8 fig9 fig10 fig11`
//! (`fig12`/`fig13` alias `fig11` — one run produces all three CDFs),
//! `discovery`, `theorems`.

use std::env;
use std::process::ExitCode;

use avmem_bench::{ablations, figures};
use avmem_bench::PaperSetup;

const ALL: [&str; 10] = [
    "fig2", "fig3", "fig4", "fig56", "fig7", "fig8", "fig9", "fig10", "fig11", "discovery",
];

const ABLATIONS: [&str; 5] = [
    "ablation-predicates",
    "ablation-cushion",
    "ablation-gossip",
    "ablation-workload",
    "ablation-aged",
];

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    args.retain(|a| a != "--small");
    if args.is_empty() {
        eprintln!("usage: figures [--small] <experiment-id>... | all | ablations");
        eprintln!("experiments: {} theorems", ALL.join(" "));
        eprintln!("ablations:   {}", ABLATIONS.join(" "));
        return ExitCode::FAILURE;
    }

    let setup = if small {
        PaperSetup::small()
    } else {
        PaperSetup::paper()
    };
    println!(
        "# AVMEM figure harness: {} hosts, {} days, {} runs × {} messages{}",
        setup.hosts,
        setup.days,
        setup.runs,
        setup.messages_per_run,
        if small { " (small mode)" } else { "" }
    );
    println!();

    let mut requested: Vec<String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "all" => {
                requested.extend(ALL.iter().map(|s| (*s).to_owned()));
                requested.push("theorems".to_owned());
            }
            "ablations" => requested.extend(ABLATIONS.iter().map(|s| (*s).to_owned())),
            other => requested.push(other.to_owned()),
        }
    }

    for experiment in &requested {
        match experiment.as_str() {
            "fig2" => println!("{}", figures::fig2(&setup)),
            "fig3" => println!("{}", figures::fig3(&setup)),
            "fig4" => println!("{}", figures::fig4(&setup)),
            "fig5" | "fig6" | "fig56" => println!("{}", figures::fig56(&setup)),
            "fig7" => println!("{}", figures::fig7(&setup)),
            "fig8" => println!("{}", figures::fig8(&setup)),
            "fig9" => println!("{}", figures::fig9(&setup)),
            "fig10" => {
                for sweep in figures::fig10(&setup) {
                    println!("{sweep}");
                }
            }
            "fig11" | "fig12" | "fig13" => println!("{}", figures::fig111213(&setup)),
            "discovery" => {
                let n = if small { 128 } else { 1024 };
                println!("{}", figures::discovery_micro(n, 30));
            }
            "theorems" => println!("{}", figures::theorem_checks(&setup)),
            "ablation-predicates" => println!("{}", ablations::ablation_predicates(&setup)),
            "ablation-cushion" => println!("{}", ablations::ablation_cushion(&setup)),
            "ablation-gossip" => println!("{}", ablations::ablation_gossip(&setup)),
            "ablation-workload" => println!("{}", ablations::ablation_workload(&setup)),
            "ablation-aged" => println!("{}", ablations::ablation_aged(&setup)),
            other => {
                eprintln!("unknown experiment id {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
