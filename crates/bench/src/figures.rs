//! One experiment per figure of the paper's evaluation (§4).
//!
//! Each function regenerates the data series behind a figure and returns
//! a result struct whose `Display` impl prints the same rows/series the
//! paper reports. Absolute numbers differ (synthetic trace, simulated
//! latencies) but the *shapes* — who wins, by what factor, where
//! crossovers fall — are the reproduction targets; see EXPERIMENTS.md.

use std::collections::BTreeMap;
use std::fmt;

use avmem::harness::{AvmemSim, InitiatorBand};
use avmem::ops::{
    AnycastConfig, AvailabilityTarget, ForwardPolicy, MulticastConfig, MulticastStrategy,
};
use avmem::{AnycastOutcome, SliverScope};
use avmem_shuffle::{sim::RoundSim, ShuffleConfig};
use avmem_util::stats::{correlation, Ecdf, Summary};
use avmem_util::NodeId;

use crate::setup::PaperSetup;

/// The anycast algorithm variants compared throughout §4.2.
pub const ANYCAST_VARIANTS: [(&str, ForwardPolicy, SliverScope); 4] = [
    ("sim-annealing", ForwardPolicy::SimulatedAnnealing, SliverScope::Both),
    ("HS+VS", ForwardPolicy::Greedy, SliverScope::Both),
    ("VS-only", ForwardPolicy::Greedy, SliverScope::VsOnly),
    ("HS-only", ForwardPolicy::Greedy, SliverScope::HsOnly),
];

// ---------------------------------------------------------------------
// Fig. 2 — system snapshot: online distribution and sliver sizes
// ---------------------------------------------------------------------

/// Fig. 2: snapshot after 24 h warm-up.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Online node count.
    pub online: usize,
    /// Online nodes per 0.1 availability bucket (Fig. 2a).
    pub histogram: Vec<u64>,
    /// Median HS size per availability bucket (Fig. 2b).
    pub hs_median: Vec<Option<f64>>,
    /// Median VS size per availability bucket (Fig. 2c).
    pub vs_median: Vec<Option<f64>>,
    /// Pearson correlation of (availability, |HS|).
    pub hs_correlation: f64,
    /// Pearson correlation of (availability, |VS|).
    pub vs_correlation: f64,
}

/// Runs the Fig. 2 snapshot experiment.
pub fn fig2(setup: &PaperSetup) -> Fig2 {
    let sim = setup.sim(1);
    let snapshot = sim.snapshot();
    let buckets = 10;

    let histogram: Vec<u64> = (0..buckets)
        .map(|i| snapshot.availability_histogram(buckets).count(i))
        .collect();

    let median_per_bucket = |points: &[(f64, usize)]| -> Vec<Option<f64>> {
        (0..buckets)
            .map(|b| {
                let lo = b as f64 / buckets as f64;
                let hi = (b + 1) as f64 / buckets as f64;
                let values: Vec<f64> = points
                    .iter()
                    .filter(|(av, _)| *av >= lo && (*av < hi || (b == buckets - 1 && *av <= hi)))
                    .map(|(_, size)| *size as f64)
                    .collect();
                if values.is_empty() {
                    None
                } else {
                    Some(Summary::from_values(values).median())
                }
            })
            .collect()
    };

    let hs_points = snapshot.hs_sizes();
    let vs_points = snapshot.vs_sizes();
    let to_f64 = |points: &[(f64, usize)]| -> Vec<(f64, f64)> {
        points.iter().map(|&(a, s)| (a, s as f64)).collect()
    };

    Fig2 {
        online: snapshot.online_count(),
        histogram,
        hs_median: median_per_bucket(&hs_points),
        vs_median: median_per_bucket(&vs_points),
        hs_correlation: correlation(&to_f64(&hs_points)),
        vs_correlation: correlation(&to_f64(&vs_points)),
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 2. snapshot after warm-up: {} online nodes", self.online)?;
        writeln!(f, "  bucket  online  median|HS|  median|VS|")?;
        for b in 0..self.histogram.len() {
            let fmt_opt = |v: &Option<f64>| match v {
                Some(x) => format!("{x:>8.1}"),
                None => "       -".to_owned(),
            };
            writeln!(
                f,
                "  [{:.1},{:.1})  {:>5}  {}  {}",
                b as f64 / 10.0,
                (b + 1) as f64 / 10.0,
                self.histogram[b],
                fmt_opt(&self.hs_median[b]),
                fmt_opt(&self.vs_median[b]),
            )?;
        }
        writeln!(
            f,
            "  corr(av,|HS|) = {:+.2} (paper: increasing)   corr(av,|VS|) = {:+.2} (paper: ~0)",
            self.hs_correlation, self.vs_correlation
        )
    }
}

// ---------------------------------------------------------------------
// Fig. 3 — horizontal sliver scaling
// ---------------------------------------------------------------------

/// Fig. 3: HS size vs number of in-band candidates.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Mean HS size bucketed by candidate count (bucket width
    /// `candidate_bucket`).
    pub points: Vec<(f64, f64)>,
    /// Bucket width on the candidates axis.
    pub candidate_bucket: f64,
    /// Least-squares slope over the lower half of the candidates range.
    pub slope_low: f64,
    /// Least-squares slope over the upper half.
    pub slope_high: f64,
}

/// Runs the Fig. 3 scaling experiment.
pub fn fig3(setup: &PaperSetup) -> Fig3 {
    let sim = setup.sim(1);
    let snapshot = sim.snapshot();
    let raw = snapshot.hs_scaling_points();

    let max_candidates = raw.iter().map(|p| p.0).fold(0.0f64, f64::max).max(1.0);
    let bucket = (max_candidates / 12.0).max(1.0);
    let mut grouped: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for &(candidates, size) in &raw {
        grouped
            .entry((candidates / bucket) as u64)
            .or_default()
            .push(size);
    }
    let points: Vec<(f64, f64)> = grouped
        .into_iter()
        .map(|(b, sizes)| {
            let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
            ((b as f64 + 0.5) * bucket, mean)
        })
        .collect();

    let mid = max_candidates / 2.0;
    let low: Vec<(f64, f64)> = raw.iter().copied().filter(|p| p.0 <= mid).collect();
    let high: Vec<(f64, f64)> = raw.iter().copied().filter(|p| p.0 > mid).collect();

    Fig3 {
        points,
        candidate_bucket: bucket,
        slope_low: avmem_util::stats::slope(&low),
        slope_high: avmem_util::stats::slope(&high),
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 3. horizontal sliver scaling (bucket {:.0} candidates)", self.candidate_bucket)?;
        writeln!(f, "  candidates-in-band   mean|HS|")?;
        for &(candidates, hs) in &self.points {
            writeln!(f, "  {candidates:>12.0}   {hs:>10.1}")?;
        }
        writeln!(
            f,
            "  slope lower half {:.3}, upper half {:.3} (paper: sublinear growth ⇒ flattening slope)",
            self.slope_low, self.slope_high
        )
    }
}

// ---------------------------------------------------------------------
// Fig. 4 — incoming vertical sliver link distribution
// ---------------------------------------------------------------------

/// Fig. 4: incoming VS references per availability range.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Total incoming VS links per 0.1 bucket.
    pub links: Vec<u64>,
    /// Online population per bucket, for reference.
    pub population: Vec<u64>,
    /// Coefficient of variation of links across non-empty buckets.
    pub coefficient_of_variation: f64,
    /// Pearson correlation between bucket population and bucket links.
    pub population_correlation: f64,
}

/// Runs the Fig. 4 in-link experiment.
pub fn fig4(setup: &PaperSetup) -> Fig4 {
    let sim = setup.sim(1);
    let snapshot = sim.snapshot();
    let buckets = 10;
    let links = snapshot.incoming_vs_links(buckets);
    let population: Vec<u64> = (0..buckets)
        .map(|i| snapshot.availability_histogram(buckets).count(i))
        .collect();

    let populated: Vec<(u64, u64)> = links
        .iter()
        .zip(&population)
        .filter(|(_, &p)| p > 0)
        .map(|(&l, &p)| (l, p))
        .collect();
    let values: Vec<f64> = populated.iter().map(|&(l, _)| l as f64).collect();
    let summary = Summary::from_values(values.clone());
    let cv = if summary.mean() > 0.0 {
        summary.std_dev() / summary.mean()
    } else {
        0.0
    };
    let corr_points: Vec<(f64, f64)> = populated
        .iter()
        .map(|&(l, p)| (p as f64, l as f64))
        .collect();

    Fig4 {
        links,
        population,
        coefficient_of_variation: cv,
        population_correlation: correlation(&corr_points),
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 4. incoming vertical-sliver links per availability range")?;
        writeln!(f, "  bucket   online  incoming-VS-links")?;
        for b in 0..self.links.len() {
            writeln!(
                f,
                "  [{:.1},{:.1})  {:>5}  {:>12}",
                b as f64 / 10.0,
                (b + 1) as f64 / 10.0,
                self.population[b],
                self.links[b]
            )?;
        }
        writeln!(
            f,
            "  cv(links) = {:.2} (paper: largely uniform); corr(population, links) = {:+.2} (paper: uncorrelated)",
            self.coefficient_of_variation, self.population_correlation
        )
    }
}

// ---------------------------------------------------------------------
// Figs. 5 & 6 — attack analysis
// ---------------------------------------------------------------------

/// Figs. 5–6: flooding-attack acceptance and legitimate rejection, per
/// attacker/sender availability bucket, for cushions 0 and 0.1.
#[derive(Debug, Clone)]
pub struct Fig56 {
    /// Fig. 5 series, cushion = 0.
    pub flooding_strict: Vec<Option<f64>>,
    /// Fig. 5 series, cushion = 0.1.
    pub flooding_cushion: Vec<Option<f64>>,
    /// Fig. 6 series, cushion = 0.
    pub rejection_strict: Vec<Option<f64>>,
    /// Fig. 6 series, cushion = 0.1.
    pub rejection_cushion: Vec<Option<f64>>,
}

/// Runs the attack-analysis experiments over a noisy oracle.
pub fn fig56(setup: &PaperSetup) -> Fig56 {
    let sim = setup.noisy_sim(1);
    Fig56 {
        flooding_strict: sim.flooding_attack(0.0, 10).values,
        flooding_cushion: sim.flooding_attack(0.1, 10).values,
        rejection_strict: sim.legitimate_rejection(0.0, 10).values,
        rejection_cushion: sim.legitimate_rejection(0.1, 10).values,
    }
}

impl fmt::Display for Fig56 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cell = |v: &Option<f64>| match v {
            Some(x) => format!("{:>6.3}", x),
            None => "     -".to_owned(),
        };
        writeln!(f, "Fig 5. flooding attack: fraction of non-neighbors accepting")?;
        writeln!(f, "  bucket    cushion=0  cushion=0.1")?;
        for b in 0..self.flooding_strict.len() {
            writeln!(
                f,
                "  [{:.1},{:.1})   {}     {}",
                b as f64 / 10.0,
                (b + 1) as f64 / 10.0,
                cell(&self.flooding_strict[b]),
                cell(&self.flooding_cushion[b])
            )?;
        }
        writeln!(f, "  (paper: below ~0.10 across all attacker availabilities)")?;
        writeln!(f)?;
        writeln!(f, "Fig 6. legitimate rejection rate")?;
        writeln!(f, "  bucket    cushion=0  cushion=0.1")?;
        for b in 0..self.rejection_strict.len() {
            writeln!(
                f,
                "  [{:.1},{:.1})   {}     {}",
                b as f64 / 10.0,
                (b + 1) as f64 / 10.0,
                cell(&self.rejection_strict[b]),
                cell(&self.rejection_cushion[b])
            )?;
        }
        writeln!(f, "  (paper: below 0.30 with no cushion, below 0.20 with cushion 0.1)")
    }
}

// ---------------------------------------------------------------------
// Fig. 7 — range anycast hop distribution
// ---------------------------------------------------------------------

/// Fig. 7: hops needed for range anycast, MID → [0.85, 0.95].
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Per variant: `(name, delivered fraction, fraction delivered per
    /// hop count 0..=6)`.
    pub variants: Vec<(String, f64, Vec<f64>)>,
}

/// Runs the Fig. 7 hop-distribution experiment.
pub fn fig7(setup: &PaperSetup) -> Fig7 {
    let target = AvailabilityTarget::range(0.85, 0.95);
    let mut variants = Vec::new();
    for (name, policy, scope) in ANYCAST_VARIANTS {
        let outcomes = run_anycasts(setup, InitiatorBand::Mid, target, policy, scope);
        let total = outcomes.len().max(1);
        let delivered: Vec<&AnycastOutcome> =
            outcomes.iter().filter(|o| o.is_delivered()).collect();
        let mut per_hop = vec![0.0; 7];
        for outcome in &delivered {
            let h = (outcome.hops as usize).min(6);
            per_hop[h] += 1.0 / total as f64;
        }
        variants.push((
            name.to_owned(),
            delivered.len() as f64 / total as f64,
            per_hop,
        ));
    }
    Fig7 { variants }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 7. range anycast MID → [0.85,0.95]: hops to delivery (TTL 6)")?;
        writeln!(f, "  variant         delivered  hops:0      1      2      3      4      5      6")?;
        for (name, delivered, per_hop) in &self.variants {
            write!(f, "  {name:<15} {delivered:>8.2}  ")?;
            for frac in per_hop {
                write!(f, " {frac:>6.2}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  (paper: all variants ~100% success; all except HS-only within ~1 hop)")
    }
}

// ---------------------------------------------------------------------
// Fig. 8 — anycast under increasingly harsh targets
// ---------------------------------------------------------------------

/// Fig. 8: delivery fraction, HIGH initiators → three target ranges.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Rows: target range label; columns follow [`ANYCAST_VARIANTS`].
    pub rows: Vec<(String, Vec<f64>)>,
}

/// Runs the Fig. 8 harshness sweep.
pub fn fig8(setup: &PaperSetup) -> Fig8 {
    let targets = [
        ("HIGH to [0.85,0.95]", AvailabilityTarget::range(0.85, 0.95)),
        ("HIGH to [0.44,0.54]", AvailabilityTarget::range(0.44, 0.54)),
        ("HIGH to [0.15,0.25]", AvailabilityTarget::range(0.15, 0.25)),
    ];
    let mut rows = Vec::new();
    for (label, target) in targets {
        let mut fractions = Vec::new();
        for (_, policy, scope) in ANYCAST_VARIANTS {
            let outcomes = run_anycasts(setup, InitiatorBand::High, target, policy, scope);
            let delivered = outcomes.iter().filter(|o| o.is_delivered()).count();
            fractions.push(delivered as f64 / outcomes.len().max(1) as f64);
        }
        rows.push((label.to_owned(), fractions));
    }
    Fig8 { rows }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 8. range anycast under increasingly harsh scenarios (delivered fraction)")?;
        write!(f, "  target              ")?;
        for (name, _, _) in ANYCAST_VARIANTS {
            write!(f, " {name:>13}")?;
        }
        writeln!(f)?;
        for (label, fractions) in &self.rows {
            write!(f, "  {label:<20}")?;
            for frac in fractions {
                write!(f, " {frac:>13.2}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  (paper: success degrades toward low-availability targets; HS+VS best)")
    }
}

// ---------------------------------------------------------------------
// Figs. 9 & 10 — retried-greedy anycast, AVMEM vs random overlay
// ---------------------------------------------------------------------

/// One row of the retried-greedy sweep.
#[derive(Debug, Clone)]
pub struct RetrySweepRow {
    /// Retry budget.
    pub retries: u32,
    /// Fraction delivered.
    pub delivered: f64,
    /// Fraction dropped on TTL expiry.
    pub ttl_expired: f64,
    /// Fraction dropped on retry/candidate exhaustion.
    pub retry_expired: f64,
    /// Mean delivery latency (ms) over delivered anycasts.
    pub mean_latency_ms: f64,
}

/// Figs. 9/10: retried-greedy anycast in the harsh scenario.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Which overlay the sweep ran on.
    pub overlay: String,
    /// One row per retry budget {2, 4, 8, 16}.
    pub rows: Vec<RetrySweepRow>,
}

/// Runs the Fig. 9 sweep over the AVMEM overlay.
pub fn fig9(setup: &PaperSetup) -> Fig9 {
    retry_sweep(setup, "AVMEM", |s, seed| s.sim(seed))
}

/// Runs the Fig. 10 sweep over the random-overlay baseline.
///
/// The paper's baseline is "a random overlay graph similar to those
/// created by alternative membership protocols like SCAMP, CYCLON,
/// T-MAN" — i.e. `O(log N)` uniformly random neighbors. We report that
/// (`2·ln N*`, matching AVMEM's vertical-sliver link budget) and, as a
/// harder ablation, a baseline degree-matched to AVMEM's full stored
/// degree — isolating whether AVMEM's edge comes from *where* its links
/// point rather than from how many it has.
pub fn fig10(setup: &PaperSetup) -> Vec<Fig9> {
    let reference = setup.sim(1);
    let cyclon_degree = 2.0 * reference.n_star().ln();
    let matched_degree = reference.snapshot().mean_degree().max(1.0);
    drop(reference);
    vec![
        retry_sweep(
            setup,
            &format!("random (CYCLON-size, degree {cyclon_degree:.0})"),
            move |s, seed| s.random_overlay_sim(seed, cyclon_degree),
        ),
        retry_sweep(
            setup,
            &format!("random (degree-matched, degree {matched_degree:.0})"),
            move |s, seed| s.random_overlay_sim(seed, matched_degree),
        ),
    ]
}

fn retry_sweep(
    setup: &PaperSetup,
    overlay: &str,
    build: impl Fn(&PaperSetup, u64) -> AvmemSim,
) -> Fig9 {
    let target = AvailabilityTarget::range(0.15, 0.25);
    let mut rows = Vec::new();
    for retries in [2u32, 4, 8, 16] {
        let mut outcomes = Vec::new();
        for run in 0..setup.runs {
            let mut sim = build(setup, 100 + run);
            for _ in 0..setup.messages_per_run {
                let Some(initiator) = sim.random_online_initiator(InitiatorBand::High) else {
                    continue;
                };
                outcomes.push(sim.anycast(
                    initiator,
                    target,
                    AnycastConfig {
                        policy: ForwardPolicy::RetriedGreedy { retries },
                        scope: SliverScope::Both,
                        ttl: 6,
                    },
                ));
            }
        }
        let total = outcomes.len().max(1) as f64;
        let delivered: Vec<&AnycastOutcome> =
            outcomes.iter().filter(|o| o.is_delivered()).collect();
        let ttl_expired = outcomes
            .iter()
            .filter(|o| o.drop_reason == Some(avmem::ops::AnycastDrop::TtlExpired))
            .count() as f64
            / total;
        // The paper's "retry expired" bucket covers both budget and
        // candidate exhaustion (§3.2: retrying stops on either).
        let retry_expired = outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.drop_reason,
                    Some(avmem::ops::AnycastDrop::RetryExpired)
                        | Some(avmem::ops::AnycastDrop::NoCandidates)
                )
            })
            .count() as f64
            / total;
        let mean_latency_ms = if delivered.is_empty() {
            0.0
        } else {
            delivered
                .iter()
                .map(|o| o.latency.as_millis() as f64)
                .sum::<f64>()
                / delivered.len() as f64
        };
        rows.push(RetrySweepRow {
            retries,
            delivered: delivered.len() as f64 / total,
            ttl_expired,
            retry_expired,
            mean_latency_ms,
        });
    }
    Fig9 {
        overlay: overlay.to_owned(),
        rows,
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 9/10. retried-greedy anycast HIGH → [0.15,0.25] over {} overlay",
            self.overlay
        )?;
        writeln!(f, "  retries  delivered  ttl-expired  retry-expired  mean-latency-ms")?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:>7}  {:>9.2}  {:>11.2}  {:>13.2}  {:>15.0}",
                row.retries, row.delivered, row.ttl_expired, row.retry_expired, row.mean_latency_ms
            )?;
        }
        writeln!(f, "  (paper: delivery plateaus around retry=8; AVMEM beats the random overlay)")
    }
}

// ---------------------------------------------------------------------
// Figs. 11–13 — multicast latency / spam / reliability CDFs
// ---------------------------------------------------------------------

/// One multicast scenario's measured CDF summaries.
#[derive(Debug, Clone)]
pub struct MulticastScenario {
    /// Scenario label as in the paper's legends.
    pub label: String,
    /// Number of multicasts measured.
    pub count: usize,
    /// ECDF of worst-case delivery latency (ms) — Fig. 11.
    pub latency: Ecdf,
    /// ECDF of spam ratio — Fig. 12.
    pub spam: Ecdf,
    /// ECDF of reliability — Fig. 13.
    pub reliability: Ecdf,
}

/// Figs. 11–13: the five multicast scenarios of the paper.
#[derive(Debug, Clone)]
pub struct Fig111213 {
    /// The measured scenarios.
    pub scenarios: Vec<MulticastScenario>,
}

/// Runs all multicast scenarios (flood: three, gossip: two).
///
/// Uses a mildly noisy oracle (±0.02, one 20-minute staleness epoch):
/// the paper's spam (Fig. 12) comes from stale cached availabilities —
/// with a perfect oracle spam is identically zero, while the ±0.05
/// stress setting of the admission-check figures (Figs. 5–6) overstates
/// what AVMON's long-term estimates drift by. A binomial estimate from a
/// day of 20-minute probes has a standard error of about two percentage
/// points, hence ±0.02 here.
pub fn fig111213(setup: &PaperSetup) -> Fig111213 {
    let scenarios: [(&str, InitiatorBand, AvailabilityTarget, MulticastStrategy); 5] = [
        (
            "HIGH to [0.85,0.95]",
            InitiatorBand::High,
            AvailabilityTarget::range(0.85, 0.95),
            MulticastStrategy::Flood,
        ),
        (
            "HIGH to > 0.90",
            InitiatorBand::High,
            AvailabilityTarget::threshold(0.90),
            MulticastStrategy::Flood,
        ),
        (
            "LOW to > 0.20",
            InitiatorBand::Low,
            AvailabilityTarget::threshold(0.20),
            MulticastStrategy::Flood,
        ),
        (
            "Gossip: HIGH to > 0.90",
            InitiatorBand::High,
            AvailabilityTarget::threshold(0.90),
            MulticastStrategy::paper_gossip(),
        ),
        (
            "Gossip: LOW to > 0.20",
            InitiatorBand::Low,
            AvailabilityTarget::threshold(0.20),
            MulticastStrategy::paper_gossip(),
        ),
    ];

    let mut results = Vec::new();
    for (label, band, target, strategy) in scenarios {
        let mut latencies = Vec::new();
        let mut spams = Vec::new();
        let mut reliabilities = Vec::new();
        for run in 0..setup.runs {
            let mut sim = setup.sim_with(300 + run, |config| {
                config.oracle = avmem::harness::OracleChoice::NoisyShared {
                    error: 0.02,
                    staleness: avmem_sim::SimDuration::from_mins(20),
                };
            });
            // Fewer messages per run: a multicast touches many nodes.
            for _ in 0..setup.messages_per_run.min(10) {
                let Some(initiator) = sim.random_online_initiator(band) else {
                    continue;
                };
                let outcome = sim.multicast(
                    initiator,
                    target,
                    MulticastConfig {
                        strategy,
                        ..MulticastConfig::paper_default()
                    },
                );
                let world = sim.world();
                if let Some(latency) = outcome.worst_latency() {
                    latencies.push(latency.as_millis() as f64);
                }
                if let Some(spam) = outcome.spam_ratio(&world, target) {
                    spams.push(spam);
                }
                if let Some(reliability) = outcome.reliability(&world, target) {
                    reliabilities.push(reliability);
                }
            }
        }
        results.push(MulticastScenario {
            label: label.to_owned(),
            count: reliabilities.len(),
            latency: Ecdf::from_values(latencies),
            spam: Ecdf::from_values(spams),
            reliability: Ecdf::from_values(reliabilities),
        });
    }
    Fig111213 { scenarios: results }
}

impl fmt::Display for Fig111213 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figs 11-13. multicast scenarios ({} each)", self.scenarios.len())?;
        writeln!(
            f,
            "  scenario                 n   latency-ms p50/p90/max     spam p50/p90    reliability p10/p50"
        )?;
        for s in &self.scenarios {
            writeln!(
                f,
                "  {:<24}{:>3}   {:>6.0} {:>6.0} {:>6.0}   {:>8.3} {:>6.3}   {:>8.2} {:>6.2}",
                s.label,
                s.count,
                s.latency.quantile(0.5),
                s.latency.quantile(0.9),
                s.latency.quantile(1.0),
                s.spam.quantile(0.5),
                s.spam.quantile(0.9),
                s.reliability.quantile(0.1),
                s.reliability.quantile(0.5),
            )?;
        }
        writeln!(
            f,
            "  (paper: flood latency ≤ ~300 ms, gossip ≤ ~5.5 s; spam ≤ ~8%; flood reliability > 90%, gossip ≈ 70%)"
        )
    }
}

// ---------------------------------------------------------------------
// §3.1 microbenchmark — discovery time vs view size
// ---------------------------------------------------------------------

/// Discovery-time microbenchmark (§3.1 optimality analysis).
#[derive(Debug, Clone)]
pub struct DiscoveryMicro {
    /// `(view size v, mean rounds for a fresh pair to be discovered,
    /// N/v prediction)`.
    pub rows: Vec<(usize, f64, f64)>,
    /// System size used.
    pub n: usize,
}

/// Measures mean discovery time for several view sizes around `√N`.
pub fn discovery_micro(n: usize, samples: usize) -> DiscoveryMicro {
    let sqrt_n = (n as f64).sqrt() as usize;
    let mut rows = Vec::new();
    for v in [sqrt_n / 2, sqrt_n, sqrt_n * 2] {
        let v = v.max(8);
        let mut total = 0.0;
        let mut count = 0usize;
        let mut sim = RoundSim::new(n, ShuffleConfig::new(v, (v / 2).max(4)), 7);
        sim.run_rounds(30); // mix first
        for s in 0..samples {
            let observer = s % n;
            let subject = NodeId::new(((s * 37 + 11) % n) as u64);
            if subject.raw() as usize == observer {
                continue;
            }
            if let Some(rounds) = sim.rounds_until_seen(observer, subject, 50 * n / v) {
                total += rounds as f64;
                count += 1;
            }
        }
        rows.push((
            v,
            if count == 0 { f64::NAN } else { total / count as f64 },
            n as f64 / v as f64,
        ));
    }
    DiscoveryMicro { rows, n }
}

impl fmt::Display for DiscoveryMicro {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§3.1 discovery-time microbenchmark (N = {})", self.n)?;
        writeln!(f, "  view-size v   mean-rounds-to-discover   N/v prediction")?;
        for &(v, measured, predicted) in &self.rows {
            writeln!(f, "  {v:>11}   {measured:>23.1}   {predicted:>14.1}")?;
        }
        writeln!(f, "  (§3.1: discovery time scales as O(N/v); v = √N minimizes v + N/v)")
    }
}

// ---------------------------------------------------------------------
// Theorem checks (§2.2) — degree bounds and connectivity
// ---------------------------------------------------------------------

/// Analytic-property checks behind Theorems 1–3.
#[derive(Debug, Clone)]
pub struct TheoremChecks {
    /// Measured mean VS size over online nodes.
    pub mean_vs: f64,
    /// Theorem 1/3 prediction `c₁·ln N*·(1−2ε)`.
    pub predicted_vs: f64,
    /// Measured mean HS size.
    pub mean_hs: f64,
    /// Largest-component fraction of the full overlay (HS+VS).
    pub component_fraction: f64,
    /// Worst band-component fraction over sampled band centers
    /// (Theorem 2).
    pub worst_band_fraction: f64,
    /// Mean / max hop distance from a random online node over HS+VS
    /// (small path lengths underpin the fast-operations claims).
    pub mean_path_length: f64,
    /// Maximum hop distance from the sampled start.
    pub max_path_length: f64,
}

/// Runs the theorem sanity checks on a warmed-up overlay.
pub fn theorem_checks(setup: &PaperSetup) -> TheoremChecks {
    let sim = setup.sim(1);
    let n_star = sim.n_star();
    let snapshot = sim.snapshot();
    let vs_sizes: Vec<f64> = snapshot.vs_sizes().iter().map(|&(_, s)| s as f64).collect();
    let hs_sizes: Vec<f64> = snapshot.hs_sizes().iter().map(|&(_, s)| s as f64).collect();
    let mut worst_band: f64 = 1.0;
    for center in [0.1, 0.3, 0.5, 0.7, 0.9] {
        if let Some(fraction) =
            snapshot.band_component_fraction(avmem_util::Availability::saturating(center))
        {
            worst_band = worst_band.min(fraction);
        }
    }
    let paths = snapshot
        .online_nodes()
        .next()
        .map(|n| snapshot.path_length_summary(n.id, SliverScope::Both))
        .unwrap_or_else(|| Summary::from_values(std::iter::empty()));
    TheoremChecks {
        mean_vs: Summary::from_values(vs_sizes).mean(),
        predicted_vs: avmem::predicate::DEFAULT_C1 * n_star.ln() * 0.8,
        mean_hs: Summary::from_values(hs_sizes).mean(),
        component_fraction: snapshot.largest_component_fraction(SliverScope::Both),
        worst_band_fraction: worst_band,
        mean_path_length: paths.mean(),
        max_path_length: paths.max(),
    }
}

impl fmt::Display for TheoremChecks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§2.2 theorem checks")?;
        writeln!(
            f,
            "  mean |VS| = {:.1} (Thm 1/3 prediction c1·lnN*·(1−2ε) = {:.1})",
            self.mean_vs, self.predicted_vs
        )?;
        writeln!(f, "  mean |HS| = {:.1} (Thm 3: O(log N*) for dense bands)", self.mean_hs)?;
        writeln!(
            f,
            "  largest component (HS+VS, online) = {:.3} (Thm 2/3: connected w.h.p.)",
            self.component_fraction
        )?;
        writeln!(
            f,
            "  worst band component fraction = {:.3} (Thm 2: bands connected w.h.p.)",
            self.worst_band_fraction
        )?;
        writeln!(
            f,
            "  hop distances from a random node: mean {:.1}, max {:.0} (short paths ⇒ fast ops)",
            self.mean_path_length, self.max_path_length
        )
    }
}

// ---------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------

/// Runs the paper's "5 runs × 50 messages" protocol for one anycast
/// variant and returns all outcomes.
pub fn run_anycasts(
    setup: &PaperSetup,
    band: InitiatorBand,
    target: AvailabilityTarget,
    policy: ForwardPolicy,
    scope: SliverScope,
) -> Vec<AnycastOutcome> {
    let mut outcomes = Vec::new();
    for run in 0..setup.runs {
        let mut sim = setup.sim(200 + run);
        for _ in 0..setup.messages_per_run {
            let Some(initiator) = sim.random_online_initiator(band) else {
                continue;
            };
            outcomes.push(sim.anycast(
                initiator,
                target,
                AnycastConfig {
                    policy,
                    scope,
                    ttl: 6,
                },
            ));
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PaperSetup {
        PaperSetup {
            hosts: 150,
            days: 1,
            runs: 1,
            messages_per_run: 10,
            ..PaperSetup::default()
        }
    }

    #[test]
    fn fig2_shapes() {
        let fig = fig2(&small());
        assert!(fig.online > 0);
        // VS size uncorrelated with availability (paper Fig 2c).
        assert!(
            fig.vs_correlation.abs() < 0.4,
            "vs correlation {}",
            fig.vs_correlation
        );
        let _ = fig.to_string();
    }

    #[test]
    fn fig3_is_sublinear() {
        let fig = fig3(&small());
        assert!(!fig.points.is_empty());
        // Slope flattens in the upper half (sublinear growth).
        assert!(
            fig.slope_high <= fig.slope_low + 0.05,
            "slopes {} vs {}",
            fig.slope_low,
            fig.slope_high
        );
        let _ = fig.to_string();
    }

    #[test]
    fn fig4_links_not_following_population() {
        let fig = fig4(&small());
        assert!(fig.links.iter().sum::<u64>() > 0);
        let _ = fig.to_string();
    }

    #[test]
    fn fig7_hsvs_beats_hs_only() {
        let fig = fig7(&small());
        let delivered: BTreeMap<&str, f64> = fig
            .variants
            .iter()
            .map(|(name, d, _)| (name.as_str(), *d))
            .collect();
        assert!(
            delivered["HS+VS"] >= delivered["HS-only"],
            "HS+VS {} should be at least HS-only {}",
            delivered["HS+VS"],
            delivered["HS-only"]
        );
        let _ = fig.to_string();
    }

    #[test]
    fn discovery_micro_tracks_n_over_v() {
        let micro = discovery_micro(128, 20);
        for &(v, measured, predicted) in &micro.rows {
            assert!(v >= 8);
            assert!(
                measured.is_nan() || measured < predicted * 6.0 + 10.0,
                "v={v}: measured {measured} far above prediction {predicted}"
            );
        }
        let _ = micro.to_string();
    }

    #[test]
    fn theorem_checks_reasonable() {
        let checks = theorem_checks(&small());
        assert!(checks.mean_vs > 0.0);
        assert!(checks.component_fraction > 0.9);
        let _ = checks.to_string();
    }
}
