//! Ablation experiments for the design choices DESIGN.md §5 calls out:
//! the predicate family, the verification cushion, and the gossip
//! parameters. These go beyond the paper's figures — they quantify *why*
//! the paper's default choices (I.B + II.B, cushion 0.1, fanout × Ng ≈
//! log N*) are the right ones.

use std::fmt;

use avmem::harness::{InitiatorBand, PredicateChoice};
use avmem::ops::{AvailabilityTarget, MulticastConfig, MulticastStrategy};
use avmem::predicate::{HorizontalRule, VerticalRule};
use avmem::SliverScope;
use avmem_sim::SimDuration;

use crate::setup::PaperSetup;

// ---------------------------------------------------------------------
// Predicate-family ablation
// ---------------------------------------------------------------------

/// One predicate variant's overlay and operation quality.
#[derive(Debug, Clone)]
pub struct PredicateAblationRow {
    /// Variant label.
    pub label: String,
    /// Mean stored degree (HS + VS).
    pub mean_degree: f64,
    /// Largest-component fraction of the online overlay.
    pub component: f64,
    /// Retried-greedy (retry 8) delivery into the harsh [0.15, 0.25]
    /// target from HIGH initiators.
    pub harsh_delivery: f64,
}

/// Predicate-family ablation result.
#[derive(Debug, Clone)]
pub struct PredicateAblation {
    /// One row per (vertical, horizontal) rule combination.
    pub rows: Vec<PredicateAblationRow>,
}

/// Compares the sub-predicate family of §2.1: I.A/I.B/I.C × II.A/II.B.
pub fn ablation_predicates(setup: &PaperSetup) -> PredicateAblation {
    let n_star_guess = setup.hosts as f64 * 0.4; // used only for I.A/II.A tuning
    let variants: Vec<(String, VerticalRule, HorizontalRule)> = vec![
        (
            "I.A const + II.A const".into(),
            VerticalRule::constant_for(2.5, n_star_guess),
            HorizontalRule::constant_for(2.0, n_star_guess),
        ),
        (
            "I.A const + II.B log-const".into(),
            VerticalRule::constant_for(2.5, n_star_guess),
            HorizontalRule::LogarithmicConstant { c2: 2.0 },
        ),
        (
            "I.B log + II.B log-const (paper)".into(),
            VerticalRule::Logarithmic { c1: 2.5 },
            HorizontalRule::LogarithmicConstant { c2: 2.0 },
        ),
        (
            "I.C log-decr + II.B log-const".into(),
            VerticalRule::LogarithmicDecreasing { c1: 2.5 },
            HorizontalRule::LogarithmicConstant { c2: 2.0 },
        ),
    ];

    let mut rows = Vec::new();
    for (label, vertical, horizontal) in variants {
        let mut harsh_delivered = 0usize;
        let mut harsh_sent = 0usize;
        let mut degree = 0.0;
        let mut component = 0.0;
        for run in 0..setup.runs {
            let mut sim = setup.sim_with(700 + run, |config| {
                config.predicate = PredicateChoice::Avmem {
                    epsilon: 0.1,
                    vertical,
                    horizontal,
                };
            });
            let snapshot = sim.snapshot();
            degree += snapshot.mean_degree();
            component += snapshot.largest_component_fraction(SliverScope::Both);
            let target = AvailabilityTarget::range(0.15, 0.25);
            for _ in 0..setup.messages_per_run {
                let Some(initiator) = sim.random_online_initiator(InitiatorBand::High) else {
                    continue;
                };
                harsh_sent += 1;
                let outcome = sim.anycast(
                    initiator,
                    target,
                    avmem::ops::AnycastConfig {
                        policy: avmem::ops::ForwardPolicy::RetriedGreedy { retries: 8 },
                        scope: SliverScope::Both,
                        ttl: 6,
                    },
                );
                if outcome.is_delivered() {
                    harsh_delivered += 1;
                }
            }
        }
        rows.push(PredicateAblationRow {
            label,
            mean_degree: degree / setup.runs as f64,
            component: component / setup.runs as f64,
            harsh_delivery: harsh_delivered as f64 / harsh_sent.max(1) as f64,
        });
    }
    PredicateAblation { rows }
}

impl fmt::Display for PredicateAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: sub-predicate family (§2.1)")?;
        writeln!(
            f,
            "  variant                              degree  component  harsh-delivery"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<36} {:>6.1}  {:>9.3}  {:>14.2}",
                row.label, row.mean_degree, row.component, row.harsh_delivery
            )?;
        }
        writeln!(
            f,
            "  (every family keeps the overlay connected and routes comparably; they differ\n   in cost and guarantees: I.A is cheapest but assumes a uniform availability\n   PDF, I.B pays a moderate degree for guaranteed uniform coverage, and I.C's\n   inverse-distance weighting concentrates links near the band at ~2x degree)"
        )
    }
}

// ---------------------------------------------------------------------
// Cushion ablation
// ---------------------------------------------------------------------

/// One cushion setting's security/usability trade-off.
#[derive(Debug, Clone)]
pub struct CushionRow {
    /// The cushion value.
    pub cushion: f64,
    /// Mean flooding-attack acceptance over availability buckets.
    pub attack_acceptance: f64,
    /// Mean legitimate rejection over availability buckets.
    pub legitimate_rejection: f64,
}

/// Cushion-sweep ablation result.
#[derive(Debug, Clone)]
pub struct CushionAblation {
    /// One row per cushion value.
    pub rows: Vec<CushionRow>,
}

/// Sweeps the verification cushion over {0, 0.05, 0.1, 0.2}.
pub fn ablation_cushion(setup: &PaperSetup) -> CushionAblation {
    let sim = setup.noisy_sim(1);
    let rows = [0.0, 0.05, 0.1, 0.2]
        .into_iter()
        .map(|cushion| {
            let attack = sim.flooding_attack(cushion, 10);
            let rejection = sim.legitimate_rejection(cushion, 10);
            CushionRow {
                cushion,
                attack_acceptance: attack.mean_value(),
                legitimate_rejection: rejection.mean_value(),
            }
        })
        .collect();
    CushionAblation { rows }
}

impl fmt::Display for CushionAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: verification cushion (§4.1 trade-off)")?;
        writeln!(f, "  cushion  attack-acceptance  legitimate-rejection")?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:>7.2}  {:>17.3}  {:>20.3}",
                row.cushion, row.attack_acceptance, row.legitimate_rejection
            )?;
        }
        writeln!(
            f,
            "  (rejections fall and attack surface grows with the cushion; 0.1 is the knee)"
        )
    }
}

// ---------------------------------------------------------------------
// Gossip-parameter ablation
// ---------------------------------------------------------------------

/// One (fanout, rounds) setting's reliability/cost.
#[derive(Debug, Clone)]
pub struct GossipRow {
    /// Gossip fanout per period.
    pub fanout: u32,
    /// Gossip rounds (`Ng`).
    pub rounds: u32,
    /// Mean reliability over measured multicasts.
    pub reliability: f64,
    /// Mean payload messages per multicast.
    pub messages: f64,
    /// Mean worst-case latency (ms).
    pub worst_latency_ms: f64,
}

/// Gossip-parameter ablation result.
#[derive(Debug, Clone)]
pub struct GossipAblation {
    /// One row per (fanout, rounds) pair; flooding is appended as the
    /// reference row with `fanout = rounds = 0`.
    pub rows: Vec<GossipRow>,
}

/// Sweeps gossip (fanout × rounds) around the paper's `log N*` product.
pub fn ablation_gossip(setup: &PaperSetup) -> GossipAblation {
    let target = AvailabilityTarget::threshold(0.7);
    let settings: [(u32, u32); 5] = [(1, 2), (2, 2), (5, 2), (5, 4), (10, 2)];
    let mut rows = Vec::new();

    let measure = |strategy: MulticastStrategy, fanout: u32, rounds: u32| {
        let mut reliability = 0.0;
        let mut count = 0usize;
        let mut messages = 0.0;
        let mut latency = 0.0;
        for run in 0..setup.runs {
            let mut sim = setup.sim(900 + run);
            for _ in 0..setup.messages_per_run.min(10) {
                let Some(initiator) = sim.random_online_initiator(InitiatorBand::High) else {
                    continue;
                };
                let outcome = sim.multicast(
                    initiator,
                    target,
                    MulticastConfig {
                        strategy,
                        ..MulticastConfig::paper_default()
                    },
                );
                let world = sim.world();
                if let Some(r) = outcome.reliability(&world, target) {
                    reliability += r;
                    count += 1;
                }
                messages += f64::from(outcome.messages);
                latency += outcome
                    .worst_latency()
                    .map(|d| d.as_millis() as f64)
                    .unwrap_or(0.0);
            }
        }
        let n = count.max(1) as f64;
        GossipRow {
            fanout,
            rounds,
            reliability: reliability / n,
            messages: messages / n,
            worst_latency_ms: latency / n,
        }
    };

    for (fanout, rounds) in settings {
        rows.push(measure(
            MulticastStrategy::Gossip {
                fanout,
                rounds,
                period: SimDuration::from_secs(1),
            },
            fanout,
            rounds,
        ));
    }
    rows.push(measure(MulticastStrategy::Flood, 0, 0));
    GossipAblation { rows }
}

impl fmt::Display for GossipAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: gossip fanout × rounds (§3.2; paper: product ≈ log N*)")?;
        writeln!(f, "  fanout  rounds  reliability  messages  worst-latency-ms")?;
        for row in &self.rows {
            if row.fanout == 0 {
                writeln!(
                    f,
                    "  (flood reference)  {:>8.3}  {:>8.0}  {:>16.0}",
                    row.reliability, row.messages, row.worst_latency_ms
                )?;
            } else {
                writeln!(
                    f,
                    "  {:>6}  {:>6}  {:>11.3}  {:>8.0}  {:>16.0}",
                    row.fanout, row.rounds, row.reliability, row.messages, row.worst_latency_ms
                )?;
            }
        }
        writeln!(
            f,
            "  (reliability saturates once fanout × rounds reaches ~log N*; flooding pays\n   an order of magnitude more messages for the last few percent)"
        )
    }
}

// ---------------------------------------------------------------------
// Workload ablation: Overnet-style p2p churn vs Grid-style reboots
// ---------------------------------------------------------------------

/// One workload's overlay and operation quality.
#[derive(Debug, Clone)]
pub struct WorkloadRow {
    /// Workload label.
    pub label: String,
    /// Mean availability of the population.
    pub mean_availability: f64,
    /// Churn transitions per online node-hour (slot-width independent).
    pub churn_rate: f64,
    /// Mean stored degree.
    pub mean_degree: f64,
    /// Easy-target anycast delivery (MID → [0.85, 0.95], greedy HS+VS).
    pub easy_delivery: f64,
    /// Harsh-target anycast delivery (HIGH → [0.15, 0.25], retry 8).
    pub harsh_delivery: f64,
}

/// Workload-sensitivity ablation result.
#[derive(Debug, Clone)]
pub struct WorkloadAblation {
    /// One row per workload.
    pub rows: Vec<WorkloadRow>,
}

/// Compares the Overnet-style p2p workload against a reboot-heavy
/// Grid-style one (§1 motivates both settings). AVMEM's availability
/// structure should keep operations working under either churn regime.
pub fn ablation_workload(setup: &PaperSetup) -> WorkloadAblation {
    let workloads: Vec<(String, avmem_trace::ChurnTrace)> = vec![
        (
            "Overnet p2p (paper)".into(),
            setup.trace(),
        ),
        (
            "Grid reboot-heavy".into(),
            avmem_trace::GridModel::default()
                .machines(setup.hosts)
                .days(setup.days)
                .generate(setup.trace_seed),
        ),
    ];

    let mut rows = Vec::new();
    for (label, trace) in workloads {
        let stats = trace.stats();
        let hours = trace.duration().as_millis() as f64 / 3_600_000.0;
        let churn_rate = stats.transitions as f64 / (stats.mean_online * hours);
        let mut easy_delivered = 0usize;
        let mut easy_sent = 0usize;
        let mut harsh_delivered = 0usize;
        let mut harsh_sent = 0usize;
        let mut degree = 0.0;
        for run in 0..setup.runs {
            let mut sim = setup.sim_over_trace(trace.clone(), 1100 + run, |_| {});
            degree += sim.snapshot().mean_degree();
            for _ in 0..setup.messages_per_run {
                if let Some(initiator) = sim.random_online_initiator(InitiatorBand::Mid) {
                    easy_sent += 1;
                    if sim
                        .anycast(
                            initiator,
                            AvailabilityTarget::range(0.85, 0.95),
                            avmem::ops::AnycastConfig::paper_default(),
                        )
                        .is_delivered()
                    {
                        easy_delivered += 1;
                    }
                }
                if let Some(initiator) = sim.random_online_initiator(InitiatorBand::High) {
                    harsh_sent += 1;
                    if sim
                        .anycast(
                            initiator,
                            AvailabilityTarget::range(0.15, 0.25),
                            avmem::ops::AnycastConfig {
                                policy: avmem::ops::ForwardPolicy::RetriedGreedy { retries: 8 },
                                scope: SliverScope::Both,
                                ttl: 6,
                            },
                        )
                        .is_delivered()
                    {
                        harsh_delivered += 1;
                    }
                }
            }
        }
        rows.push(WorkloadRow {
            label,
            mean_availability: stats.mean_availability,
            churn_rate,
            mean_degree: degree / setup.runs as f64,
            easy_delivery: easy_delivered as f64 / easy_sent.max(1) as f64,
            harsh_delivery: harsh_delivered as f64 / harsh_sent.max(1) as f64,
        });
    }
    WorkloadAblation { rows }
}

impl fmt::Display for WorkloadAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: workload sensitivity (p2p vs Grid churn)")?;
        writeln!(
            f,
            "  workload              mean-av  churn-rate  degree  easy-delivery  harsh-delivery"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<20}  {:>7.2}  {:>10.3}  {:>6.1}  {:>13.2}  {:>14.2}",
                row.label,
                row.mean_availability,
                row.churn_rate,
                row.mean_degree,
                row.easy_delivery,
                row.harsh_delivery
            )?;
        }
        writeln!(
            f,
            "  (the overlay adapts to the availability PDF: operations stay reliable under\n   both regimes; harsh low-availability targets are rarer in the Grid trace)"
        )
    }
}

// ---------------------------------------------------------------------
// Raw vs aged availability estimates under drift
// ---------------------------------------------------------------------

/// One (workload, estimator) cell of the raw-vs-aged comparison.
#[derive(Debug, Clone)]
pub struct AgedRow {
    /// Workload label (stationary / drifting).
    pub workload: String,
    /// Estimator label (raw / aged).
    pub estimator: String,
    /// Mean absolute error against *recent* availability (last day).
    pub mae_recent: f64,
}

/// Raw-vs-aged ablation result.
#[derive(Debug, Clone)]
pub struct AgedAblation {
    /// The four (workload × estimator) cells.
    pub rows: Vec<AgedRow>,
}

/// Compares AVMON's raw (lifetime) and aged (EWMA) estimates on
/// stationary and drifting churn. The paper's monitoring contract offers
/// "raw, or aged" long-term availability (§3.1); drift is what makes the
/// aged variant worth having — against *current* behaviour it tracks
/// drifting hosts, while on stationary hosts raw's lower variance wins.
pub fn ablation_aged(setup: &PaperSetup) -> AgedAblation {
    use avmem_avmon::{AvailabilityOracle, AvmonConfig, AvmonService};
    use avmem_sim::SimTime;
    use avmem_util::NodeId;

    // Drift is only visible when the trace is much longer than the
    // "recent behaviour" window (one day).
    let days = setup.days.max(4);
    let workloads = [
        (
            "stationary",
            avmem_trace::OvernetModel::default()
                .hosts(setup.hosts)
                .days(days)
                .generate(setup.trace_seed),
        ),
        (
            "drifting (all)",
            avmem_trace::OvernetModel::default()
                .hosts(setup.hosts)
                .days(days)
                .drift_fraction(1.0)
                .generate(setup.trace_seed),
        ),
    ];

    let mut rows = Vec::new();
    for (workload, trace) in workloads {
        let end = SimTime::ZERO + trace.duration();
        let recent_from = SimTime::ZERO
            + avmem_sim::SimDuration::from_millis(
                trace.duration().as_millis().saturating_sub(86_400_000),
            );
        for (estimator, use_aged) in [("raw", false), ("aged", true)] {
            let config = AvmonConfig {
                use_aged,
                // Effective EWMA window ≈ 1/α slots ≈ 17 h: long enough
                // to keep variance low, short enough to track drift.
                alpha: 0.02,
                ..AvmonConfig::default()
            };
            let mut service = AvmonService::new(&trace, config, 11);
            service.step_to(&trace, end);
            let mut total = 0.0;
            let mut count = 0usize;
            for i in 0..trace.num_nodes() {
                let Some(estimate) =
                    service.estimate(NodeId::new(0), trace.node_id(i), end)
                else {
                    continue;
                };
                let recent = trace.availability_between(i, recent_from, end);
                total += (estimate.value() - recent.value()).abs();
                count += 1;
            }
            rows.push(AgedRow {
                workload: workload.to_owned(),
                estimator: estimator.to_owned(),
                mae_recent: total / count.max(1) as f64,
            });
        }
    }
    AgedAblation { rows }
}

impl fmt::Display for AgedAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation: raw vs aged AVMON estimates (error against last-day availability)"
        )?;
        writeln!(f, "  workload         estimator  MAE-vs-recent")?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<15}  {:<9}  {:>13.3}",
                row.workload, row.estimator, row.mae_recent
            )?;
        }
        writeln!(
            f,
            "  (aged estimates track current behaviour in both regimes, and the gap widens\n   sharply under drift — the reason §3.1's contract offers \"raw, or aged\")"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PaperSetup {
        PaperSetup {
            hosts: 120,
            days: 1,
            runs: 1,
            messages_per_run: 8,
            ..PaperSetup::default()
        }
    }

    #[test]
    fn predicate_ablation_produces_connected_overlays() {
        let ablation = ablation_predicates(&tiny());
        assert_eq!(ablation.rows.len(), 4);
        for row in &ablation.rows {
            assert!(row.mean_degree > 0.0, "{}: empty overlay", row.label);
            assert!(row.component > 0.8, "{}: disconnected", row.label);
        }
        let _ = ablation.to_string();
    }

    #[test]
    fn cushion_ablation_is_monotone() {
        let ablation = ablation_cushion(&tiny());
        for pair in ablation.rows.windows(2) {
            assert!(pair[1].attack_acceptance >= pair[0].attack_acceptance - 1e-9);
            assert!(pair[1].legitimate_rejection <= pair[0].legitimate_rejection + 1e-9);
        }
        let _ = ablation.to_string();
    }

    #[test]
    fn aged_estimates_win_under_drift() {
        let ablation = ablation_aged(&tiny());
        assert_eq!(ablation.rows.len(), 4);
        let cell = |workload: &str, estimator: &str| {
            ablation
                .rows
                .iter()
                .find(|r| r.workload.starts_with(workload) && r.estimator == estimator)
                .unwrap()
                .mae_recent
        };
        // Under drift the aged estimator tracks recent behaviour better.
        assert!(
            cell("drifting", "aged") < cell("drifting", "raw"),
            "aged {} should beat raw {} under drift",
            cell("drifting", "aged"),
            cell("drifting", "raw")
        );
        let _ = ablation.to_string();
    }

    #[test]
    fn workload_ablation_covers_both_regimes() {
        let ablation = ablation_workload(&tiny());
        assert_eq!(ablation.rows.len(), 2);
        let grid = &ablation.rows[1];
        let overnet = &ablation.rows[0];
        assert!(grid.mean_availability > overnet.mean_availability);
        assert!(grid.churn_rate > overnet.churn_rate);
        // Operations work under both regimes.
        assert!(overnet.easy_delivery > 0.5);
        assert!(grid.easy_delivery > 0.5);
        let _ = ablation.to_string();
    }

    #[test]
    fn gossip_ablation_reliability_grows_with_budget() {
        let ablation = ablation_gossip(&tiny());
        let skinny = ablation
            .rows
            .iter()
            .find(|r| r.fanout == 1)
            .expect("skinny setting present");
        let fat = ablation
            .rows
            .iter()
            .find(|r| r.fanout == 5 && r.rounds == 4)
            .expect("fat setting present");
        assert!(
            fat.reliability >= skinny.reliability,
            "more budget should not hurt: {} vs {}",
            fat.reliability,
            skinny.reliability
        );
        let _ = ablation.to_string();
    }
}
