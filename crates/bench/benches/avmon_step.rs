//! Benchmarks of the AVMON monitoring service's hot paths: the per-slot
//! ping + aggregation sweep (the cost every full-AVMON-fidelity hour
//! pays once per trace slot) and the build-once assignment/index
//! construction. The slot sweep runs to 10⁴ monitors — the scale whose
//! pre-refactor `O(N²)` aggregation capped full-AVMON runs.
//!
//! Set `AVMEM_BENCH_QUICK=1` (the CI bench-smoke setting) to run only
//! small sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avmem_avmon::{AvmonConfig, AvmonService};
use avmem_sim::SimTime;
use avmem_trace::{ChurnTrace, OvernetModel};

/// Whether the quick (CI smoke) profile is requested.
fn quick() -> bool {
    std::env::var_os("AVMEM_BENCH_QUICK").is_some()
}

fn trace(hosts: usize) -> ChurnTrace {
    OvernetModel::default().hosts(hosts).days(1).generate(23)
}

/// One slot of the monitoring pipeline (ping phase over every online
/// monitor + aggregation over every target), on a service that has
/// already processed a day of history — the steady-state advance cost.
fn bench_slot_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("avmon_step");
    group.sample_size(if quick() { 2 } else { 5 });
    let sizes: &[usize] = if quick() {
        &[300, 1_000]
    } else {
        &[1_000, 2_500, 10_000]
    };
    for &hosts in sizes {
        let trace = trace(hosts);
        // Lossy config so the keyed ping-loss streams are on the path.
        let config = AvmonConfig {
            ping_loss: 0.05,
            ..AvmonConfig::default()
        };
        let mut warm = AvmonService::new(&trace, config, 42);
        let slots = trace.num_slots();
        let slot_ms = trace.slot_duration().as_millis();
        let warm_until = SimTime::ZERO + trace.slot_duration().mul((slots - 2) as u64);
        warm.step_to(&trace, warm_until);
        let next = SimTime::ZERO + avmem_sim::SimDuration::from_millis(slot_ms * slots as u64);
        group.bench_with_input(BenchmarkId::new("slot", hosts), &hosts, |b, _| {
            b.iter(|| {
                // Clone-then-step isolates one slot's sweep; the clone is
                // a flat memcpy of the arenas, small next to the sweep.
                let mut service = warm.clone();
                service.step_to(&trace, next);
                black_box(service.slots_processed())
            })
        });
    }
    group.finish();
}

/// Service construction: the O(N²) consistent-assignment scan (SHA-256
/// bound, parallel over the worker pool) plus CSR + inverted-index
/// assembly.
fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("avmon_build");
    group.sample_size(2);
    let sizes: &[usize] = if quick() { &[200] } else { &[500, 1_000] };
    for &hosts in sizes {
        let trace = trace(hosts);
        group.bench_with_input(BenchmarkId::new("build", hosts), &hosts, |b, _| {
            b.iter(|| {
                let service = AvmonService::new(&trace, AvmonConfig::default(), 42);
                black_box(service.slots_processed())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slot_sweep, bench_build);
criterion_main!(benches);
