//! Benchmarks of the AVMON monitoring service's hot paths: the per-slot
//! ping + aggregation sweep (the cost every full-AVMON-fidelity hour
//! pays once per trace slot), the build-once assignment/index
//! construction for both assignment strategies (all-pairs vs ring), and
//! the ring's O(k) join/leave churn deltas. The slot sweep runs to 10⁴
//! monitors — the scale whose pre-refactor `O(N²)` aggregation capped
//! full-AVMON runs; the ring build runs to 10⁵.
//!
//! Set `AVMEM_BENCH_QUICK=1` (the CI bench-smoke setting) to run only
//! small sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avmem_avmon::{AssignmentChoice, AvmonConfig, AvmonService, RingAssignment};
use avmem_sim::SimTime;
use avmem_trace::{ChurnTrace, OvernetModel};

/// Whether the quick (CI smoke) profile is requested.
fn quick() -> bool {
    std::env::var_os("AVMEM_BENCH_QUICK").is_some()
}

fn trace(hosts: usize) -> ChurnTrace {
    OvernetModel::default().hosts(hosts).days(1).generate(23)
}

/// One slot of the monitoring pipeline (ping phase over every online
/// monitor + aggregation over every target), on a service that has
/// already processed a day of history — the steady-state advance cost.
fn bench_slot_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("avmon_step");
    group.sample_size(if quick() { 2 } else { 5 });
    let sizes: &[usize] = if quick() {
        &[300, 1_000]
    } else {
        &[1_000, 2_500, 10_000]
    };
    for &hosts in sizes {
        let trace = trace(hosts);
        // Lossy config so the keyed ping-loss streams are on the path.
        let config = AvmonConfig {
            ping_loss: 0.05,
            ..AvmonConfig::default()
        };
        let mut warm = AvmonService::new(&trace, config, 42);
        let slots = trace.num_slots();
        let slot_ms = trace.slot_duration().as_millis();
        let warm_until = SimTime::ZERO + trace.slot_duration().mul((slots - 2) as u64);
        warm.step_to(&trace, warm_until);
        let next = SimTime::ZERO + avmem_sim::SimDuration::from_millis(slot_ms * slots as u64);
        group.bench_with_input(BenchmarkId::new("slot", hosts), &hosts, |b, _| {
            b.iter(|| {
                // Clone-then-step isolates one slot's sweep; the clone is
                // a flat memcpy of the arenas, small next to the sweep.
                let mut service = warm.clone();
                service.step_to(&trace, next);
                black_box(service.slots_processed())
            })
        });
    }
    group.finish();
}

/// Service construction: the O(N²) consistent-assignment scan (SHA-256
/// bound, parallel over the worker pool) plus CSR + inverted-index
/// assembly.
fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("avmon_build");
    group.sample_size(2);
    let sizes: &[usize] = if quick() { &[200] } else { &[500, 1_000] };
    for &hosts in sizes {
        let trace = trace(hosts);
        group.bench_with_input(BenchmarkId::new("build", hosts), &hosts, |b, _| {
            b.iter(|| {
                let service = AvmonService::new(&trace, AvmonConfig::default(), 42);
                black_box(service.slots_processed())
            })
        });
    }
    group.finish();
}

/// Assignment-strategy build cost, apples to apples: a full ring-mode
/// service build (ring + rows + arena) against the all-pairs scan. The
/// all-pairs rule is O(N²) SHA-256 — 32 s at 10⁴ hosts — so it stops at
/// 10³ here; the ring's O(N log N) build runs to 10⁵.
fn bench_assignment_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_build");
    group.sample_size(2);
    let all_pairs_sizes: &[usize] = if quick() { &[200] } else { &[500, 1_000] };
    let ring_sizes: &[usize] = if quick() { &[200] } else { &[1_000, 10_000, 100_000] };
    for &hosts in all_pairs_sizes {
        let trace = trace(hosts);
        group.bench_with_input(BenchmarkId::new("all-pairs", hosts), &hosts, |b, _| {
            b.iter(|| {
                let service = AvmonService::new(&trace, AvmonConfig::default(), 42);
                black_box(service.slots_processed())
            })
        });
    }
    for &hosts in ring_sizes {
        let trace = trace(hosts);
        let config = AvmonConfig {
            assignment: AssignmentChoice::Ring { vnodes: 8, k: 8 },
            ..AvmonConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("ring", hosts), &hosts, |b, _| {
            b.iter(|| {
                let service = AvmonService::new(&trace, config, 42);
                black_box(service.slots_processed())
            })
        });
    }
    group.finish();
}

/// One membership churn event against the ring: `leave` + re-`join` of
/// a member, returning the affected-target deltas. Run at two sizes an
/// order of magnitude apart — O(k) means the numbers should match, not
/// scale with N.
fn bench_assignment_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_update");
    group.sample_size(if quick() { 2 } else { 5 });
    let sizes: &[usize] = if quick() { &[1_000] } else { &[10_000, 100_000] };
    for &n in sizes {
        let mut ring = RingAssignment::new(n, 8, 8, 0..n as u32);
        group.bench_with_input(BenchmarkId::new("leave_join", n), &n, |b, _| {
            let mut member = 0u32;
            b.iter(|| {
                // Walk a coprime stride so successive events hit
                // different ring neighborhoods.
                member = (member + 7_919) % n as u32;
                let left = ring.leave(member);
                let rejoined = ring.join(member);
                black_box(left.len() + rejoined.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_slot_sweep,
    bench_build,
    bench_assignment_build,
    bench_assignment_update
);
criterion_main!(benches);
