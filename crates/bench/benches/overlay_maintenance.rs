//! Benchmarks of overlay construction and maintenance: the converged
//! rebuild (Fig. 2's warm-up), the event-driven discovery/refresh ticks,
//! the CYCLON shuffle round that feeds discovery, and the pair-hash
//! storage strategies.
//!
//! Set `AVMEM_BENCH_QUICK=1` (the CI bench-smoke setting) to shrink the
//! size sweeps so every benchmark body still executes without paying for
//! the large-population measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avmem::harness::{AvmemSim, MaintenanceEngine, MaintenanceMode, PairHashes, SimConfig};
use avmem_shuffle::{sim::RoundSim, ShuffleConfig};
use avmem_sim::SimDuration;
use avmem_trace::OvernetModel;

/// Whether the quick (CI smoke) profile is requested.
fn quick() -> bool {
    std::env::var_os("AVMEM_BENCH_QUICK").is_some()
}

fn bench_converged_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("converged_rebuild");
    // Size sweep toward the ROADMAP scale target; BENCH_2.json tracks the
    // medians across PRs.
    let sizes: &[usize] = if quick() {
        &[100, 300]
    } else {
        &[100, 300, 600, 1500, 5000]
    };
    for &hosts in sizes {
        group.sample_size(match hosts {
            0..=600 => 10,
            601..=1500 => 3,
            _ => 2,
        });
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            let trace = OvernetModel::default().hosts(hosts).days(1).generate(1);
            let mut sim = AvmemSim::new(trace, SimConfig::paper_default(1));
            b.iter(|| {
                sim.warm_up(SimDuration::from_mins(20));
                black_box(sim.now())
            })
        });
    }
    group.finish();
}

/// One simulated hour of event-driven maintenance (paper periods:
/// 1-minute shuffle/discovery ticks, 20-minute refresh), sweeping the
/// population toward the 10⁴-host target — serial reference engine vs
/// the sharded engine. All engines produce bit-identical state (pinned
/// by `event_driven_equivalence`), so the comparison is pure wall-clock.
///
/// `sharded` is the default engine (machine-sized pool, one shard per
/// worker; on a 1-core host it degenerates to the straight-line path).
/// `sharded_s2t2` pins two shards on two workers so the shard-exchange
/// machinery is exercised and its cost recorded even where only one
/// core is available.
fn bench_event_driven(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_driven");
    let sizes: &[usize] = if quick() {
        &[300]
    } else {
        &[1000, 2000, 5000, 10_000]
    };
    let engines = [
        ("serial", MaintenanceEngine::Serial),
        (
            "sharded",
            MaintenanceEngine::Sharded {
                shards: None,
                threads: None,
            },
        ),
        (
            "sharded_s2t2",
            MaintenanceEngine::Sharded {
                shards: Some(2),
                threads: Some(2),
            },
        ),
    ];
    for &hosts in sizes {
        group.sample_size(match hosts {
            0..=2000 => 3,
            _ => 1,
        });
        let trace = OvernetModel::default().hosts(hosts).days(1).generate(1);
        for (name, engine) in engines {
            group.bench_with_input(BenchmarkId::new(name, hosts), &hosts, |b, _| {
                let mut config = SimConfig::paper_default(1);
                config.maintenance = MaintenanceMode::paper_event_driven();
                config.engine = engine;
                let mut sim = AvmemSim::new(trace.clone(), config);
                b.iter(|| {
                    sim.warm_up(SimDuration::from_hours(1));
                    black_box(sim.now())
                })
            });
        }
    }
    group.finish();
}

/// Lazy-vs-dense pair-hash storage: the dense build pays all `N²` SHA-256
/// evaluations up front; the lazy cache and the direct (over-budget) mode
/// pay one row on demand.
fn bench_pair_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_hashes");
    group.sample_size(10);
    let sizes: &[usize] = if quick() { &[300] } else { &[600, 2000] };
    for &n in sizes {
        group.bench_with_input(BenchmarkId::new("dense_build", n), &n, |b, &n| {
            b.iter(|| black_box(PairHashes::compute(n).len()))
        });
        group.bench_with_input(BenchmarkId::new("lazy_one_row", n), &n, |b, &n| {
            let mut scratch = Vec::new();
            b.iter(|| {
                let hashes = PairHashes::lazy(n);
                black_box(hashes.row(n / 2, &mut scratch)[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("direct_one_row", n), &n, |b, &n| {
            let hashes = PairHashes::with_budget(n, 0);
            let mut scratch = Vec::new();
            b.iter(|| black_box(hashes.row(n / 2, &mut scratch)[0]))
        });
    }
    group.finish();
}

fn bench_shuffle_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle_round");
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sim = RoundSim::new(n, ShuffleConfig::for_system_size(n), 3);
            sim.run_rounds(10);
            b.iter(|| {
                sim.run_round();
                black_box(sim.rounds())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_converged_rebuild,
    bench_event_driven,
    bench_pair_hashes,
    bench_shuffle_round
);
criterion_main!(benches);
