//! Benchmarks of overlay construction and maintenance: the converged
//! rebuild (Fig. 2's warm-up), the event-driven discovery/refresh ticks,
//! and the CYCLON shuffle round that feeds discovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avmem::harness::{AvmemSim, MaintenanceMode, SimConfig};
use avmem_shuffle::{sim::RoundSim, ShuffleConfig};
use avmem_sim::SimDuration;
use avmem_trace::OvernetModel;

fn bench_converged_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("converged_rebuild");
    group.sample_size(10);
    for &hosts in &[100usize, 300, 600] {
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            let trace = OvernetModel::default().hosts(hosts).days(1).generate(1);
            let mut sim = AvmemSim::new(trace, SimConfig::paper_default(1));
            b.iter(|| {
                sim.warm_up(SimDuration::from_mins(20));
                black_box(sim.now())
            })
        });
    }
    group.finish();
}

fn bench_event_driven_hour(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_driven_hour");
    group.sample_size(10);
    for &hosts in &[100usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            let trace = OvernetModel::default().hosts(hosts).days(1).generate(1);
            let mut config = SimConfig::paper_default(1);
            config.maintenance = MaintenanceMode::paper_event_driven();
            let mut sim = AvmemSim::new(trace, config);
            b.iter(|| {
                sim.warm_up(SimDuration::from_hours(1));
                black_box(sim.now())
            })
        });
    }
    group.finish();
}

fn bench_shuffle_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle_round");
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sim = RoundSim::new(n, ShuffleConfig::for_system_size(n), 3);
            sim.run_rounds(10);
            b.iter(|| {
                sim.run_round();
                black_box(sim.rounds())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_converged_rebuild,
    bench_event_driven_hour,
    bench_shuffle_round
);
criterion_main!(benches);
