//! Commit-phase cost breakdown: what the counting-bucket placement and
//! the pooled cohort buffers buy over the paths they replaced.
//!
//! Two layers:
//!
//! * `placement_*` — grouping one cohort's request inbox by responder,
//!   the way commit 2a routes requests to their targets. The harness
//!   used to sort the inbox by responder; it now threads each request
//!   into per-responder chains (`bucket_head`/`bucket_next`) and walks
//!   the touched chains in responder order. Both variants produce the
//!   identical responder-major visit order, so the measured gap is pure
//!   algorithm cost (O(m log m) comparison sort vs O(m + touched)
//!   bucketing with reused index arrays).
//! * `exchange_*` — a full shuffle exchange (propose → apply → request
//!   → reply) with a fresh `EntryPool` per call (the allocating entry
//!   points) vs one long-lived pool, isolating the per-exchange
//!   alloc/free traffic the shard-owned pools remove.
//!
//! Set `AVMEM_BENCH_QUICK=1` (the CI bench-smoke setting) to shrink the
//! sweeps so the bodies still execute cheaply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avmem_shuffle::{EntryPool, ShuffleConfig, ShuffleNode};
use avmem_util::{NodeId, Rng, SplitMix64};

fn quick() -> bool {
    std::env::var_os("AVMEM_BENCH_QUICK").is_some()
}

/// A synthetic commit inbox: `m` requests aimed at `n` responders, in
/// ascending-initiator order the way concatenated shard outboxes arrive.
/// Roughly half the responders are touched each cohort, matching the
/// protocol-period duty cycle at paper scale.
fn synthetic_inbox(n: u32, m: u32) -> Vec<(u32, u32)> {
    let mut rng = SplitMix64::keyed(&[0xC0117, u64::from(n), u64::from(m)]);
    (0..m)
        .map(|initiator| {
            let responder = (rng.next_u64() % u64::from(n / 2)) as u32 * 2;
            (responder, initiator)
        })
        .collect()
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_breakdown");
    let n: u32 = if quick() { 512 } else { 16_384 };
    let m: u32 = n * 4;
    let inbox = synthetic_inbox(n, m);

    group.bench_function(BenchmarkId::new("placement_sort", m), |b| {
        let mut scratch: Vec<(u32, u32)> = Vec::new();
        b.iter(|| {
            scratch.clear();
            scratch.extend_from_slice(&inbox);
            // Initiator index as tiebreaker: sort_unstable must still
            // reproduce the arrival order within each responder.
            scratch.sort_unstable();
            let mut acc = 0u64;
            for &(responder, initiator) in &scratch {
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(u64::from(responder) << 32 | u64::from(initiator));
            }
            black_box(acc)
        });
    });

    group.bench_function(BenchmarkId::new("placement_buckets", m), |b| {
        // Reused across iterations, exactly like the shard-owned scratch.
        let mut head: Vec<u32> = vec![u32::MAX; n as usize];
        let mut tail: Vec<u32> = vec![u32::MAX; n as usize];
        let mut next: Vec<u32> = Vec::new();
        let mut touched: Vec<u32> = Vec::new();
        b.iter(|| {
            next.clear();
            next.resize(inbox.len(), u32::MAX);
            touched.clear();
            for (i, &(responder, _)) in inbox.iter().enumerate() {
                let r = responder as usize;
                if head[r] == u32::MAX {
                    head[r] = i as u32;
                    touched.push(responder);
                } else {
                    next[tail[r] as usize] = i as u32;
                }
                tail[r] = i as u32;
            }
            touched.sort_unstable();
            let mut acc = 0u64;
            for &responder in &touched {
                let mut idx = head[responder as usize];
                while idx != u32::MAX {
                    let (r, initiator) = inbox[idx as usize];
                    acc = acc
                        .wrapping_mul(31)
                        .wrapping_add(u64::from(r) << 32 | u64::from(initiator));
                    idx = next[idx as usize];
                }
                head[responder as usize] = u32::MAX;
                tail[responder as usize] = u32::MAX;
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_exchange_buffers(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_breakdown");
    let rounds: u64 = if quick() { 64 } else { 1024 };
    let cfg = ShuffleConfig::new(8, 4);
    let mut initiator = ShuffleNode::new(NodeId::new(0), cfg, 7);
    initiator.bootstrap((1..=8).map(NodeId::new));
    let mut responder = ShuffleNode::new(NodeId::new(1), cfg, 8);
    responder.bootstrap((2..=9).map(NodeId::new));

    group.bench_function(BenchmarkId::new("exchange_fresh", rounds), |b| {
        b.iter(|| {
            let mut a = initiator.clone();
            let mut t = responder.clone();
            for round in 0..rounds {
                let mut rng = SplitMix64::keyed(&[11, round]);
                let Some(proposal) = a.propose(&mut rng) else {
                    continue;
                };
                a.apply(&proposal);
                let (_, request) = proposal.into_request();
                let reply = t.handle_request(request);
                a.handle_reply(reply);
            }
            black_box(a.view().len())
        });
    });

    group.bench_function(BenchmarkId::new("exchange_pooled", rounds), |b| {
        let mut pool = EntryPool::new();
        b.iter(|| {
            let mut a = initiator.clone();
            let mut t = responder.clone();
            for round in 0..rounds {
                let mut rng = SplitMix64::keyed(&[11, round]);
                let Some(proposal) = a.propose_with(&mut rng, &mut pool) else {
                    continue;
                };
                a.apply_with(&proposal, &mut pool);
                let (_, request) = proposal.into_request();
                let reply = t.handle_request_with(request, &mut pool);
                a.handle_reply_with(reply, &mut pool);
            }
            black_box(a.view().len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_placement, bench_exchange_buffers);
criterion_main!(benches);
