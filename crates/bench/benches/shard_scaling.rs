//! Shard-scaling curves for the sharded maintenance engine: one
//! simulated hour of event-driven maintenance (paper periods) at
//! 10³–10⁴ hosts, sweeping the shard count with one worker thread per
//! shard. Criterion records the end-to-end wall-clock; after each
//! configuration the accumulated per-phase breakdown (oracle / propose /
//! commit / finalize) is printed so the BENCH_*.json curves can carry
//! phase-level numbers, not just totals.
//!
//! Set `AVMEM_BENCH_QUICK=1` (the CI bench-smoke setting) to shrink the
//! sweep so every benchmark body still executes cheaply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avmem::harness::{AvmemSim, MaintenanceEngine, MaintenanceMode, SimConfig};
use avmem_sim::SimDuration;
use avmem_trace::OvernetModel;

fn quick() -> bool {
    std::env::var_os("AVMEM_BENCH_QUICK").is_some()
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling");
    let sizes: &[usize] = if quick() { &[300] } else { &[1000, 10_000] };
    let shard_counts: &[usize] = if quick() { &[1, 2] } else { &[1, 2, 4, 8] };
    for &hosts in sizes {
        group.sample_size(if hosts <= 1000 { 3 } else { 1 });
        let trace = OvernetModel::default().hosts(hosts).days(1).generate(1);
        for &shards in shard_counts {
            let id = BenchmarkId::new(format!("s{shards}"), hosts);
            group.bench_with_input(id, &hosts, |b, _| {
                let mut config = SimConfig::paper_default(1);
                config.maintenance = MaintenanceMode::paper_event_driven();
                config.engine = MaintenanceEngine::Sharded {
                    shards: Some(shards),
                    threads: Some(shards),
                };
                let mut sim = AvmemSim::new(trace.clone(), config);
                b.iter(|| {
                    sim.warm_up(SimDuration::from_hours(1));
                    black_box(sim.now())
                });
                let t = sim.phase_timings();
                eprintln!(
                    "shard_scaling phases: hosts {hosts} shards {shards} cohorts {} \
                     oracle {:.3} s propose {:.3} s commit {:.3} s finalize {:.3} s",
                    t.cohorts,
                    t.oracle.as_secs_f64(),
                    t.propose.as_secs_f64(),
                    t.commit.as_secs_f64(),
                    t.finalize.as_secs_f64()
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
