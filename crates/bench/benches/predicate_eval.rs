//! Microbenchmarks of the predicate layer: consistent hashing, the five
//! sub-predicate rules, and PDF-derived quantities. These are the inner
//! loops of discovery, refresh, and receiver-side verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avmem::predicate::{
    AvmemPredicate, HorizontalRule, MembershipPredicate, NodeInfo, RandomPredicate, VerticalRule,
};
use avmem_trace::AvailabilityPdf;
use avmem_util::{consistent_hash, Availability, NodeId};

fn skewed_pdf() -> AvailabilityPdf {
    let mut mass = vec![5.0, 4.0, 3.0, 2.0, 1.5, 1.0, 1.0, 1.5, 2.0, 3.0];
    mass[0] = 6.0;
    AvailabilityPdf::from_bucket_mass(mass)
}

fn bench_hash(c: &mut Criterion) {
    c.bench_function("consistent_hash(pair)", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(consistent_hash(NodeId::new(i), NodeId::new(i ^ 0xff)))
        })
    });
}

fn bench_rules(c: &mut Criterion) {
    let pdf = skewed_pdf();
    let variants: Vec<(&str, AvmemPredicate)> = vec![
        (
            "I.A+II.A constant",
            AvmemPredicate::new(
                0.1,
                1442.0,
                VerticalRule::constant_for(2.0, 1442.0),
                HorizontalRule::constant_for(2.0, 1442.0),
                pdf.clone(),
            ),
        ),
        (
            "I.B+II.B paper",
            AvmemPredicate::paper_default(1442.0, pdf.clone()),
        ),
        (
            "I.C+II.B log-decreasing",
            AvmemPredicate::new(
                0.1,
                1442.0,
                VerticalRule::LogarithmicDecreasing { c1: 2.0 },
                HorizontalRule::LogarithmicConstant { c2: 2.0 },
                pdf.clone(),
            ),
        ),
    ];

    let mut group = c.benchmark_group("predicate_classify");
    for (name, pred) in &variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), pred, |b, pred| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                let x = NodeInfo::new(
                    NodeId::new(i),
                    Availability::saturating((i % 100) as f64 / 100.0),
                );
                let y = NodeInfo::new(
                    NodeId::new(i ^ 0xabcd),
                    Availability::saturating(((i * 7) % 100) as f64 / 100.0),
                );
                black_box(pred.classify(x, y))
            })
        });
    }
    group.bench_function("random-baseline", |b| {
        let pred = RandomPredicate::with_expected_degree(15.0, 1442.0);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let x = NodeInfo::new(NodeId::new(i), Availability::saturating(0.4));
            let y = NodeInfo::new(NodeId::new(i ^ 0xabcd), Availability::saturating(0.8));
            black_box(pred.classify(x, y))
        })
    });
    group.finish();
}

fn bench_pdf(c: &mut Criterion) {
    let pdf = skewed_pdf();
    let mut group = c.benchmark_group("pdf");
    group.bench_function("density", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(pdf.density(Availability::saturating((i % 100) as f64 / 100.0)))
        })
    });
    group.bench_function("min_window_mass", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(pdf.min_window_mass(
                1442.0,
                Availability::saturating((i % 100) as f64 / 100.0),
                0.1,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hash, bench_rules, bench_pdf);
criterion_main!(benches);
