//! Benchmarks of the management operations themselves: anycast walks by
//! policy/scope and multicast dissemination by strategy — plus the
//! receiver-side admission check in the attack path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avmem::harness::{AvmemSim, InitiatorBand, SimConfig};
use avmem::ops::{
    AnycastConfig, AvailabilityTarget, ForwardPolicy, MulticastConfig, MulticastStrategy,
};
use avmem::SliverScope;
use avmem_sim::SimDuration;
use avmem_trace::OvernetModel;

fn warmed_sim() -> AvmemSim {
    let trace = OvernetModel::default().hosts(300).days(1).generate(1);
    let mut sim = AvmemSim::new(trace, SimConfig::paper_default(1));
    sim.warm_up(SimDuration::from_hours(24));
    sim
}

fn bench_anycast(c: &mut Criterion) {
    let mut sim = warmed_sim();
    let target = AvailabilityTarget::range(0.85, 0.95);
    let variants: [(&str, ForwardPolicy, SliverScope); 4] = [
        ("greedy/Both", ForwardPolicy::Greedy, SliverScope::Both),
        ("greedy/VsOnly", ForwardPolicy::Greedy, SliverScope::VsOnly),
        (
            "retried8/Both",
            ForwardPolicy::RetriedGreedy { retries: 8 },
            SliverScope::Both,
        ),
        (
            "annealing/Both",
            ForwardPolicy::SimulatedAnnealing,
            SliverScope::Both,
        ),
    ];
    let mut group = c.benchmark_group("anycast");
    for (name, policy, scope) in variants {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let initiator = sim
                    .random_online_initiator(InitiatorBand::Mid)
                    .expect("online initiator");
                black_box(sim.anycast(
                    initiator,
                    target,
                    AnycastConfig { policy, scope, ttl: 6 },
                ))
            })
        });
    }
    group.finish();
}

fn bench_multicast(c: &mut Criterion) {
    let mut sim = warmed_sim();
    let target = AvailabilityTarget::threshold(0.7);
    let mut group = c.benchmark_group("multicast");
    group.sample_size(20);
    for (name, strategy) in [
        ("flood", MulticastStrategy::Flood),
        ("gossip", MulticastStrategy::paper_gossip()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let initiator = sim
                    .random_online_initiator(InitiatorBand::High)
                    .expect("online initiator");
                black_box(sim.multicast(
                    initiator,
                    target,
                    MulticastConfig {
                        strategy,
                        ..MulticastConfig::paper_default()
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_attack_analysis(c: &mut Criterion) {
    let trace = OvernetModel::default().hosts(200).days(1).generate(1);
    let mut config = SimConfig::paper_default(1);
    config.oracle = avmem::harness::OracleChoice::paper_noise();
    let mut sim = AvmemSim::new(trace, config);
    sim.warm_up(SimDuration::from_hours(24));
    let mut group = c.benchmark_group("attack_analysis");
    group.sample_size(10);
    group.bench_function("flooding_attack", |b| {
        b.iter(|| black_box(sim.flooding_attack(0.1, 10)))
    });
    group.bench_function("legitimate_rejection", |b| {
        b.iter(|| black_box(sim.legitimate_rejection(0.1, 10)))
    });
    group.finish();
}

criterion_group!(benches, bench_anycast, bench_multicast, bench_attack_analysis);
criterion_main!(benches);
