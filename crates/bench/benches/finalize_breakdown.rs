//! Finalize-phase cost breakdown: where the event-driven maintenance
//! hour actually goes, and what the fast path (epoch-memoized
//! thresholds, shard-local pair-hash caches, batched oracle estimates,
//! refresh short-circuiting) buys on each component.
//!
//! Three layers:
//!
//! * `hour_fast` / `hour_reference` — one simulated hour of paper-period
//!   maintenance on the serial engine with the fast path on vs off (the
//!   single-core configuration the 1-CPU container actually runs).
//!   After each, the per-phase wall-clock (discover+refresh live inside
//!   `finalize`) and the fast-path counters are printed, so the
//!   BENCH_*.json entries can carry the discover/refresh/skip split.
//! * `pair_hash_*` — one membership-sized stream of pair-hash reads
//!   through the shard-local cache, the global LRU store, and raw
//!   hashing, isolating the lock + SHA-256 cost the cache removes.
//! * `estimate_*` — one refresh-sized availability lookup per pair vs
//!   one batched call, isolating the per-call oracle dispatch.
//!
//! Set `AVMEM_BENCH_QUICK=1` (the CI bench-smoke setting) to shrink
//! every sweep so the bodies still execute cheaply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avmem::harness::{
    AvmemSim, MaintenanceEngine, MaintenanceMode, PairHashes, ShardPairCache, SimConfig, SimOracle,
};
use avmem_avmon::AvailabilityOracle;
use avmem_sim::{SimDuration, SimTime};
use avmem_trace::OvernetModel;
use avmem_util::NodeId;

fn quick() -> bool {
    std::env::var_os("AVMEM_BENCH_QUICK").is_some()
}

fn maintenance_config(finalize_fast: bool) -> SimConfig {
    let mut config = SimConfig::paper_default(1);
    config.maintenance = MaintenanceMode::paper_event_driven();
    config.engine = MaintenanceEngine::Serial;
    config.finalize_fast = finalize_fast;
    config
}

fn bench_maintenance_hour(c: &mut Criterion) {
    let mut group = c.benchmark_group("finalize_breakdown");
    let sizes: &[usize] = if quick() { &[300] } else { &[10_000] };
    for &hosts in sizes {
        group.sample_size(if hosts <= 1000 { 3 } else { 1 });
        let trace = OvernetModel::default().hosts(hosts).days(1).generate(1);
        for (label, fast) in [("hour_fast", true), ("hour_reference", false)] {
            let id = BenchmarkId::new(label, hosts);
            group.bench_with_input(id, &hosts, |b, _| {
                let mut sim = AvmemSim::new(trace.clone(), maintenance_config(fast));
                // Prime one hour so the samples measure the steady-state
                // maintenance hour, not the cold-start discovery flood
                // (the phase totals printed below still include it).
                sim.warm_up(SimDuration::from_hours(1));
                b.iter(|| {
                    sim.warm_up(SimDuration::from_hours(1));
                    black_box(sim.now())
                });
                let t = sim.phase_timings();
                let f = sim.finalize_stats();
                eprintln!(
                    "finalize_breakdown {label}: hosts {hosts} cohorts {} oracle {:.3} s \
                     propose {:.3} s commit {:.3} s finalize {:.3} s | memo {}h/{}m/{}b \
                     refresh {}skip/{}eval pruned {} estimates {} pair-hash {}h/{}m/{}d/{}f",
                    t.cohorts,
                    t.oracle.as_secs_f64(),
                    t.propose.as_secs_f64(),
                    t.commit.as_secs_f64(),
                    t.finalize.as_secs_f64(),
                    f.memo_hits,
                    f.memo_misses,
                    f.memo_bypassed,
                    f.refresh_skipped,
                    f.refresh_evaluated,
                    f.discover_pruned,
                    f.batched_estimates,
                    f.pair_hash.hits,
                    f.pair_hash.misses,
                    f.pair_hash.delegated,
                    f.pair_hash.flushes
                );
            });
        }
    }
    group.finish();
}

fn bench_pair_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("finalize_breakdown");
    let n: usize = if quick() { 400 } else { 4000 };
    // A budget of a few rows forces the global store into LRU mode —
    // the contended configuration the shard-local cache bypasses.
    let hashes = PairHashes::with_budget(n, 4 * 8 * n);
    assert!(hashes.is_lru(), "budget must force LRU mode");
    // A membership-sized working set: every node reads ~32 neighbors.
    let reads: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (1..=32usize).map(move |k| (i, (i + k * 37) % n)))
        .collect();
    group.bench_function(BenchmarkId::new("pair_hash_shard_cache", n), |b| {
        let mut cache = ShardPairCache::with_capacity(4 * 32 * n);
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(x, y) in &reads {
                acc += cache.get(&hashes, x, y);
            }
            black_box(acc)
        });
    });
    group.bench_function(BenchmarkId::new("pair_hash_global", n), |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(x, y) in &reads {
                acc += hashes.get(x, y);
            }
            black_box(acc)
        });
    });
    let direct = PairHashes::with_budget(n, 0);
    group.bench_function(BenchmarkId::new("pair_hash_direct", n), |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(x, y) in &reads {
                acc += direct.get(x, y);
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_estimates(c: &mut Criterion) {
    let mut group = c.benchmark_group("finalize_breakdown");
    let hosts: usize = if quick() { 200 } else { 2000 };
    let trace = OvernetModel::default().hosts(hosts).days(1).generate(2);
    let oracle = SimOracle::build(avmem::harness::OracleChoice::Exact, &trace, 7);
    // One refresh-sized candidate list per node.
    let per_node: usize = 32;
    let targets: Vec<Vec<NodeId>> = (0..hosts)
        .map(|i| {
            (1..=per_node)
                .map(|k| NodeId::new(((i + k * 53) % hosts) as u64))
                .collect()
        })
        .collect();
    group.bench_function(BenchmarkId::new("estimate_single", hosts), |b| {
        b.iter(|| {
            let mut known = 0usize;
            for (i, list) in targets.iter().enumerate() {
                let q = NodeId::new(i as u64);
                for &y in list {
                    known += oracle.estimate(q, y, SimTime::ZERO).is_some() as usize;
                }
            }
            black_box(known)
        });
    });
    group.bench_function(BenchmarkId::new("estimate_batch", hosts), |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut known = 0usize;
            for (i, list) in targets.iter().enumerate() {
                oracle.estimate_batch(NodeId::new(i as u64), list, SimTime::ZERO, &mut out);
                known += out.iter().flatten().count();
            }
            black_box(known)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_maintenance_hour,
    bench_pair_hash,
    bench_estimates
);
criterion_main!(benches);
