//! Benchmarks of the service mode: the same event loop as `scenario run`
//! driven step-by-step through [`RunSession`], with and without a live
//! metrics registry attached. The with/without pair is the observability
//! overhead gate — the instrumented loop must stay within a few percent
//! of the bare one — and the `serve` entries measure the full
//! `ScenarioRunner::serve` path (session + registry + sealing).
//!
//! Set `AVMEM_BENCH_QUICK=1` (the CI bench-smoke setting) to run only the
//! smallest scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use avmem_metrics::Registry;
use avmem_scenario::{
    builtin, ChurnSpec, MaintenanceModeSpec, ScenarioRunner, ScenarioSpec, ServeOptions,
};

/// Whether the quick (CI smoke) profile is requested.
fn quick() -> bool {
    std::env::var_os("AVMEM_BENCH_QUICK").is_some()
}

/// An event-driven scenario at the given scale with enough traffic for
/// the per-op instrumentation to matter.
fn serve_spec(hosts: usize) -> ScenarioSpec {
    let mut spec = builtin::builtin("smoke").expect("smoke builtin");
    spec.churn = ChurnSpec::Overnet { hosts, days: 1 };
    spec.maintenance.mode = MaintenanceModeSpec::EventDriven {
        protocol_secs: 60,
        refresh_mins: 20,
    };
    spec.warmup_mins = 60;
    spec.duration_mins = 60;
    spec.workload.ops_per_hour = 600.0;
    spec
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(3);
    let sizes: &[usize] = if quick() { &[120] } else { &[120, 500, 1442] };
    for &hosts in sizes {
        // Bare stepped session: the serve loop without any registry.
        group.bench_with_input(
            BenchmarkId::new("session_bare", hosts),
            &hosts,
            |b, &hosts| {
                let runner = ScenarioRunner::new(serve_spec(hosts)).expect("spec validates");
                b.iter(|| {
                    let mut session = runner.session().expect("session builds");
                    while session.step().is_some() {}
                    black_box(session.finish().anycast.sent)
                })
            },
        );
        // Same loop with every instrument live — the overhead gate.
        group.bench_with_input(
            BenchmarkId::new("session_metrics", hosts),
            &hosts,
            |b, &hosts| {
                let runner = ScenarioRunner::new(serve_spec(hosts)).expect("spec validates");
                b.iter(|| {
                    let registry = Arc::new(Registry::new());
                    let mut session = runner.session().expect("session builds");
                    session.set_metrics(&registry);
                    while session.step().is_some() {}
                    black_box(session.finish().anycast.sent)
                })
            },
        );
        // The full serve entry point (registry + sealing + throughput
        // accounting), unpaced so wall time is pure compute.
        group.bench_with_input(BenchmarkId::new("serve", hosts), &hosts, |b, &hosts| {
            let runner = ScenarioRunner::new(serve_spec(hosts)).expect("spec validates");
            let opts = ServeOptions::default();
            b.iter(|| {
                let outcome = runner.serve(&opts).expect("serve runs");
                black_box(outcome.ops_handled)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
