//! Benchmarks of whole-scenario execution: spec → trace → warm-up →
//! operation traffic interleaved with live maintenance → report. This is
//! the end-to-end path `scenario run` exercises, so regressions anywhere
//! in the stack (trace generation, maintenance, operations, reporting)
//! show up here.
//!
//! Set `AVMEM_BENCH_QUICK=1` (the CI bench-smoke setting) to run only the
//! smallest scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avmem_scenario::{builtin, ChurnSpec, MaintenanceModeSpec, ScenarioRunner, ScenarioSpec};

/// Whether the quick (CI smoke) profile is requested.
fn quick() -> bool {
    std::env::var_os("AVMEM_BENCH_QUICK").is_some()
}

/// A converged-maintenance scenario at the given scale (cheap rebuilds,
/// traffic-dominated).
fn converged_spec(hosts: usize) -> ScenarioSpec {
    let mut spec = builtin::builtin("smoke").expect("smoke builtin");
    spec.churn = ChurnSpec::Overnet { hosts, days: 1 };
    spec.warmup_mins = 120;
    spec.duration_mins = 120;
    spec.workload.ops_per_hour = 120.0;
    spec
}

/// An event-driven scenario at the given scale (maintenance-dominated:
/// the live shuffle/discovery/refresh loop runs under the traffic).
fn event_driven_spec(hosts: usize) -> ScenarioSpec {
    let mut spec = converged_spec(hosts);
    spec.maintenance.mode = MaintenanceModeSpec::EventDriven {
        protocol_secs: 60,
        refresh_mins: 20,
    };
    spec.warmup_mins = 60;
    spec.duration_mins = 60;
    spec.workload.ops_per_hour = 60.0;
    spec
}

fn bench_scenario_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_run");
    group.sample_size(3);
    let sizes: &[usize] = if quick() { &[120] } else { &[120, 500, 1442] };
    for &hosts in sizes {
        group.bench_with_input(
            BenchmarkId::new("converged", hosts),
            &hosts,
            |b, &hosts| {
                let runner = ScenarioRunner::new(converged_spec(hosts)).expect("spec validates");
                b.iter(|| black_box(runner.run().expect("scenario runs")).anycast.sent)
            },
        );
        group.bench_with_input(
            BenchmarkId::new("event_driven", hosts),
            &hosts,
            |b, &hosts| {
                let runner =
                    ScenarioRunner::new(event_driven_spec(hosts)).expect("spec validates");
                b.iter(|| black_box(runner.run().expect("scenario runs")).anycast.sent)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scenario_run);
criterion_main!(benches);
