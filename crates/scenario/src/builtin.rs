//! The built-in scenario library.
//!
//! Each entry is scenario text (the same format users write) parsed on
//! demand — so the library doubles as a living test bed for the parser,
//! and `scenario show <name>` prints a copy-paste-able starting point.

use crate::parse::parse_spec;
use crate::spec::ScenarioSpec;

/// One library entry.
struct Builtin {
    name: &'static str,
    blurb: &'static str,
    source: &'static str,
}

const BUILTINS: &[Builtin] = &[
    Builtin {
        name: "overnet-day",
        blurb: "paper-faithful Overnet day: 1442 hosts, live maintenance, mixed anycast/multicast",
        source: r#"
name = "overnet-day"
seed = 7
warmup_mins = 360
duration_mins = 1440
health_every_mins = 60

[churn]
model = "overnet"
hosts = 1442
days = 2

[maintenance]
mode = "event-driven"
protocol_secs = 60
refresh_mins = 20
engine = "sharded"

[workload]
ops_per_hour = 60.0
anycast_fraction = 0.7
policy = "retried-greedy"
retries = 8
scope = "both"
ttl = 6
initiators = "any"
multicast = "flood"

[[target]]
weight = 2.0
kind = "range"
lo = 0.85
hi = 0.95

[[target]]
weight = 1.0
kind = "range"
lo = 0.15
hi = 0.25

[[target]]
weight = 1.0
kind = "threshold"
min = 0.7
"#,
    },
    Builtin {
        name: "grid-reboot",
        blurb: "Grid'5000 reboot storm: 600 machines cycling tens of times per day",
        source: r#"
name = "grid-reboot"
seed = 11
warmup_mins = 120
duration_mins = 720
health_every_mins = 60

[churn]
model = "grid"
machines = 600
days = 1

[maintenance]
mode = "event-driven"
protocol_secs = 60
refresh_mins = 10
engine = "sharded"

[workload]
ops_per_hour = 90.0
anycast_fraction = 0.6
policy = "retried-greedy"
retries = 8
scope = "both"
ttl = 6
initiators = "any"
multicast = "gossip"
fanout = 5
rounds = 2
gossip_period_secs = 1

[[target]]
weight = 1.0
kind = "threshold"
min = 0.5

[[target]]
weight = 1.0
kind = "range"
lo = 0.6
hi = 0.9
"#,
    },
    Builtin {
        name: "flash-crowd",
        blurb: "flash-crowd join: 60% of 800 hosts arrive a quarter into the trace",
        source: r#"
name = "flash-crowd"
seed = 13
warmup_mins = 120
duration_mins = 720
health_every_mins = 60

[churn]
model = "flash-crowd"
hosts = 800
days = 1
fraction = 0.6
switch_at = 0.25

[maintenance]
mode = "event-driven"
protocol_secs = 60
refresh_mins = 20
engine = "sharded"

[workload]
ops_per_hour = 60.0
anycast_fraction = 0.8
policy = "retried-greedy"
retries = 8
scope = "both"
ttl = 6
initiators = "any"
multicast = "flood"

[[target]]
weight = 1.0
kind = "range"
lo = 0.6
hi = 0.9
"#,
    },
    Builtin {
        name: "mass-departure",
        blurb: "mass departure: half of 800 hosts go dark mid-run",
        source: r#"
name = "mass-departure"
seed = 17
warmup_mins = 120
duration_mins = 720
health_every_mins = 60

[churn]
model = "mass-departure"
hosts = 800
days = 1
fraction = 0.5
switch_at = 0.5

[maintenance]
mode = "event-driven"
protocol_secs = 60
refresh_mins = 10
engine = "sharded"

[workload]
ops_per_hour = 60.0
anycast_fraction = 0.8
policy = "retried-greedy"
retries = 8
scope = "both"
ttl = 6
initiators = "any"
multicast = "flood"

[[target]]
weight = 1.0
kind = "threshold"
min = 0.6
"#,
    },
    Builtin {
        name: "selfish-mix",
        blurb: "5% selfish flooders under a noisy oracle, cushion 0.1",
        source: r#"
name = "selfish-mix"
seed = 19
warmup_mins = 240
duration_mins = 720
health_every_mins = 60

[churn]
model = "overnet"
hosts = 500
days = 1

[oracle]
kind = "noisy"
error = 0.05
staleness_mins = 20

[maintenance]
mode = "converged"
rebuild_every_mins = 60
engine = "sharded"

[workload]
ops_per_hour = 120.0
anycast_fraction = 0.8
policy = "greedy"
scope = "both"
ttl = 6
initiators = "any"
multicast = "flood"

[[target]]
weight = 2.0
kind = "range"
lo = 0.85
hi = 0.95

[[target]]
weight = 1.0
kind = "threshold"
min = 0.7

[adversary]
flooder_fraction = 0.05
cushion = 0.1
probes = 40
"#,
    },
    Builtin {
        name: "stress-10k",
        blurb: "10,000-host stress: live maintenance plus operations at scale",
        source: r#"
name = "stress-10k"
seed = 23
warmup_mins = 30
duration_mins = 120
health_every_mins = 30

[churn]
model = "overnet"
hosts = 10000
days = 1

[maintenance]
mode = "event-driven"
protocol_secs = 60
refresh_mins = 20
engine = "sharded"

[workload]
ops_per_hour = 30.0
anycast_fraction = 0.9
policy = "retried-greedy"
retries = 8
scope = "both"
ttl = 6
initiators = "any"
multicast = "flood"

[[target]]
weight = 1.0
kind = "range"
lo = 0.85
hi = 0.95
"#,
    },
    Builtin {
        name: "stress-10k-avmon",
        blurb: "10,000-host stress at full AVMON fidelity: every availability answer comes from the ping service",
        source: r#"
name = "stress-10k-avmon"
seed = 27
warmup_mins = 30
duration_mins = 120
health_every_mins = 30

[churn]
model = "overnet"
hosts = 10000
days = 1

[oracle]
kind = "avmon"

[maintenance]
mode = "event-driven"
protocol_secs = 60
refresh_mins = 20
engine = "sharded"

[workload]
ops_per_hour = 30.0
anycast_fraction = 0.9
policy = "retried-greedy"
retries = 8
scope = "both"
ttl = 6
initiators = "any"
multicast = "flood"

[[target]]
weight = 1.0
kind = "range"
lo = 0.85
hi = 0.95
"#,
    },
    Builtin {
        name: "stress-100k",
        blurb: "100,000-host yardstick: live maintenance, operations and ring-AVMON monitoring at 10^5 scale",
        source: r#"
name = "stress-100k"
seed = 29
warmup_mins = 10
duration_mins = 20
health_every_mins = 10

[churn]
model = "overnet"
hosts = 100000
days = 1

[oracle]
kind = "avmon"
assignment = "ring"
vnodes = 8
monitors = 8

[maintenance]
mode = "event-driven"
protocol_secs = 60
refresh_mins = 20
engine = "sharded"

[workload]
ops_per_hour = 30.0
anycast_fraction = 0.9
policy = "retried-greedy"
retries = 8
scope = "both"
ttl = 6
initiators = "any"
multicast = "flood"

[[target]]
weight = 1.0
kind = "range"
lo = 0.85
hi = 0.95
"#,
    },
    Builtin {
        name: "serve-100k",
        blurb: "service-mode yardstick: 100,000 hosts at one million ops per simulated day",
        source: r#"
name = "serve-100k"
seed = 29
warmup_mins = 10
duration_mins = 20
health_every_mins = 10

[churn]
model = "overnet"
hosts = 100000
days = 1

[oracle]
kind = "avmon"
assignment = "ring"
vnodes = 8
monitors = 8

[maintenance]
mode = "event-driven"
protocol_secs = 60
refresh_mins = 20
engine = "sharded"

[workload]
ops_per_hour = 41666.0
anycast_fraction = 0.9
policy = "retried-greedy"
retries = 8
scope = "both"
ttl = 6
initiators = "any"
multicast = "flood"

[[target]]
weight = 1.0
kind = "range"
lo = 0.85
hi = 0.95

[serve]
ops_per_day = 1000000.0
pace = 0.0
lag_budget_ms = 2000
"#,
    },
    Builtin {
        name: "stress-1m",
        blurb: "1,000,000-host frontier: ring-AVMON monitoring, live maintenance and operations at 10^6 scale",
        source: r#"
name = "stress-1m"
seed = 31
warmup_mins = 4
duration_mins = 8
health_every_mins = 4

[churn]
model = "overnet"
hosts = 1000000
days = 1

[oracle]
kind = "avmon"
assignment = "ring"
vnodes = 4
monitors = 8

[maintenance]
mode = "event-driven"
protocol_secs = 60
refresh_mins = 20
engine = "sharded"

[workload]
ops_per_hour = 30.0
anycast_fraction = 0.9
policy = "retried-greedy"
retries = 8
scope = "both"
ttl = 6
initiators = "any"
multicast = "flood"

[[target]]
weight = 1.0
kind = "range"
lo = 0.85
hi = 0.95
"#,
    },
    Builtin {
        name: "smoke",
        blurb: "CI-sized sanity run: 120 hosts, one hour of mixed traffic (< 1 s)",
        source: r#"
name = "smoke"
seed = 3
warmup_mins = 720
duration_mins = 60
health_every_mins = 30

[churn]
model = "overnet"
hosts = 120
days = 1

[maintenance]
mode = "converged"
rebuild_every_mins = 30
engine = "sharded"

[workload]
ops_per_hour = 120.0
anycast_fraction = 0.75
policy = "retried-greedy"
retries = 8
scope = "both"
ttl = 6
initiators = "any"
multicast = "flood"

[[target]]
weight = 2.0
kind = "range"
lo = 0.85
hi = 0.95

[[target]]
weight = 1.0
kind = "threshold"
min = 0.7
"#,
    },
];

/// Names of every built-in scenario, in presentation order.
pub fn builtin_names() -> Vec<&'static str> {
    BUILTINS.iter().map(|b| b.name).collect()
}

/// One-line description of a built-in scenario.
pub fn builtin_blurb(name: &str) -> Option<&'static str> {
    BUILTINS.iter().find(|b| b.name == name).map(|b| b.blurb)
}

/// The scenario text of a built-in (what `scenario show` prints).
pub fn builtin_source(name: &str) -> Option<&'static str> {
    BUILTINS
        .iter()
        .find(|b| b.name == name)
        .map(|b| b.source.trim_start_matches('\n'))
}

/// Parses a built-in scenario by name.
pub fn builtin(name: &str) -> Option<ScenarioSpec> {
    let source = builtin_source(name)?;
    Some(parse_spec(source).unwrap_or_else(|e| panic!("builtin {name} does not parse: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtins_parse_and_validate() {
        for name in builtin_names() {
            let spec = builtin(name).unwrap_or_else(|| panic!("missing builtin {name}"));
            assert_eq!(spec.name, name, "builtin name must match its key");
            spec.validate()
                .unwrap_or_else(|e| panic!("builtin {name} invalid: {e}"));
            assert!(builtin_blurb(name).is_some());
        }
    }

    #[test]
    fn builtin_traces_cover_their_runs() {
        // Cheap structural check (no trace generation for the 10k-host
        // stress entry): warmup + duration must fit the declared days.
        for name in builtin_names() {
            let spec = builtin(name).unwrap();
            let days = match spec.churn {
                crate::spec::ChurnSpec::Overnet { days, .. }
                | crate::spec::ChurnSpec::Grid { days, .. }
                | crate::spec::ChurnSpec::FlashCrowd { days, .. }
                | crate::spec::ChurnSpec::MassDeparture { days, .. } => days,
                crate::spec::ChurnSpec::TraceFile { .. } => continue,
            };
            assert!(
                spec.warmup_mins + spec.duration_mins <= days * 1440,
                "builtin {name} outruns its trace"
            );
        }
    }

    #[test]
    fn unknown_builtin_is_none() {
        assert!(builtin("no-such-scenario").is_none());
        assert!(builtin_source("no-such-scenario").is_none());
    }
}
