//! Seed sweeps: one spec, many seeds, optional engine cross-checks.
//!
//! [`ScenarioRunner::sweep`] runs the spec once per seed in an inclusive
//! range. When more than one engine is listed, every seed is re-run on
//! each engine and the reports are compared with `==` — any divergence
//! is recorded as a mismatch (the determinism contract says there must
//! be none). Headline metrics are then aggregated to min / median / max
//! across seeds, turning "the overlay delivers 93 % at seed 41" into a
//! seed-robust statement.

use avmem::harness::MaintenanceEngine;

use crate::report::ScenarioReport;
use crate::runner::ScenarioRunner;
use crate::spec::ScenarioError;

/// One engine entry of a sweep: a display label plus the engine override
/// (`None` = the spec's own engine).
#[derive(Debug, Clone)]
pub struct SweepEngine {
    /// Label used in reports and mismatch messages.
    pub label: String,
    /// Engine override; `None` keeps the spec's engine.
    pub engine: Option<MaintenanceEngine>,
}

impl SweepEngine {
    /// The spec's own engine, labeled `"spec"`.
    pub fn spec_default() -> SweepEngine {
        SweepEngine {
            label: "spec".into(),
            engine: None,
        }
    }
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Inclusive seed range.
    pub seeds: (u64, u64),
    /// Engines to run each seed on; the first is the reference whose
    /// reports feed the aggregates. Empty = the spec's own engine.
    pub engines: Vec<SweepEngine>,
}

/// One aggregated headline metric.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepMetric {
    /// Metric name (snake case, matches the JSON key).
    pub name: &'static str,
    /// Minimum across seeds.
    pub min: f64,
    /// Median across seeds (mean of the middle pair for even counts).
    pub median: f64,
    /// Maximum across seeds.
    pub max: f64,
}

/// The result of a sweep.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Scenario name.
    pub scenario: String,
    /// Seeds run, ascending.
    pub seeds: Vec<u64>,
    /// Engine labels, reference first.
    pub engines: Vec<String>,
    /// Cross-engine divergences (expected empty; each entry names the
    /// seed and engine pair that disagreed).
    pub mismatches: Vec<String>,
    /// Aggregated headline metrics.
    pub metrics: Vec<SweepMetric>,
    /// Reference-engine reports, one per seed.
    pub reports: Vec<ScenarioReport>,
}

impl ScenarioRunner {
    /// Runs the sweep; see the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] for an empty/backwards seed
    /// range and propagates per-run errors.
    pub fn sweep(&self, opts: &SweepOptions) -> Result<SweepSummary, ScenarioError> {
        let (lo, hi) = opts.seeds;
        if lo > hi {
            return Err(ScenarioError::Invalid(format!(
                "sweep seed range {lo}..={hi} is empty"
            )));
        }
        let engines = if opts.engines.is_empty() {
            vec![SweepEngine::spec_default()]
        } else {
            opts.engines.clone()
        };
        let mut seeds = Vec::new();
        let mut reports = Vec::new();
        let mut mismatches = Vec::new();
        for seed in lo..=hi {
            let mut spec = self.spec.clone();
            spec.seed = seed;
            let base = ScenarioRunner::new(spec)?;
            let run_on = |entry: &SweepEngine| -> Result<ScenarioReport, ScenarioError> {
                let runner = match entry.engine {
                    None => base.clone(),
                    Some(engine) => base.clone().with_engine(engine),
                };
                runner.run()
            };
            let reference = run_on(&engines[0])?;
            for entry in &engines[1..] {
                let other = run_on(entry)?;
                if other != reference {
                    mismatches.push(format!(
                        "seed {seed}: engine {:?} diverged from {:?}",
                        entry.label, engines[0].label
                    ));
                }
            }
            seeds.push(seed);
            reports.push(reference);
        }
        let metrics = aggregate(&reports);
        Ok(SweepSummary {
            scenario: self.spec.name.clone(),
            seeds,
            engines: engines.into_iter().map(|e| e.label).collect(),
            mismatches,
            metrics,
            reports,
        })
    }
}

/// The headline scalars aggregated across seeds.
fn headline(report: &ScenarioReport) -> Vec<(&'static str, f64)> {
    let last = report.health.last();
    vec![
        ("anycast_delivery_rate", report.anycast.delivery_rate()),
        ("anycast_mean_hops", report.anycast.mean_hops()),
        ("anycast_mean_latency_ms", report.anycast.mean_latency_ms()),
        ("multicast_mean_reliability", report.multicast.mean_reliability()),
        ("multicast_mean_spam", report.multicast.mean_spam()),
        ("final_online", last.map_or(0.0, |h| h.online as f64)),
        ("final_mean_degree", last.map_or(0.0, |h| h.mean_degree)),
        (
            "final_largest_component",
            last.map_or(0.0, |h| h.largest_component),
        ),
        ("skipped_ops", report.skipped_ops as f64),
        ("estimator_mae", report.estimator.mae()),
        // Memory observations: environment facts excluded from report
        // equality, but exactly what a capacity sweep wants min/median/max
        // of. Zero when the platform/build does not expose the source.
        ("peak_rss_mib", mib(report.memory.peak_rss_bytes)),
        ("peak_heap_mib", mib(report.memory.heap_peak_bytes)),
    ]
}

/// Optional byte count → MiB, `0.0` when unobserved.
fn mib(bytes: Option<u64>) -> f64 {
    bytes.map_or(0.0, |b| b as f64 / (1024.0 * 1024.0))
}

fn aggregate(reports: &[ScenarioReport]) -> Vec<SweepMetric> {
    let Some(first) = reports.first() else {
        return Vec::new();
    };
    let names: Vec<&'static str> = headline(first).iter().map(|&(n, _)| n).collect();
    names
        .into_iter()
        .enumerate()
        .map(|(i, name)| {
            let mut values: Vec<f64> =
                reports.iter().map(|r| headline(r)[i].1).collect();
            values.sort_by(f64::total_cmp);
            let median = if values.len() % 2 == 1 {
                values[values.len() / 2]
            } else {
                let hi = values.len() / 2;
                (values[hi - 1] + values[hi]) / 2.0
            };
            SweepMetric {
                name,
                min: values[0],
                median,
                max: *values.last().expect("non-empty"),
            }
        })
        .collect()
}

impl SweepSummary {
    /// Human-readable summary block.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let w = &mut out;
        writeln!(
            w,
            "sweep {:?}: {} seeds ({}..={}), engines [{}]",
            self.scenario,
            self.seeds.len(),
            self.seeds.first().copied().unwrap_or(0),
            self.seeds.last().copied().unwrap_or(0),
            self.engines.join(", ")
        )
        .unwrap();
        if self.engines.len() > 1 {
            if self.mismatches.is_empty() {
                writeln!(w, "cross-engine check: all reports bit-identical").unwrap();
            } else {
                for mismatch in &self.mismatches {
                    writeln!(w, "cross-engine MISMATCH: {mismatch}").unwrap();
                }
            }
        }
        writeln!(w, "  {:<28} {:>12} {:>12} {:>12}", "metric", "min", "median", "max")
            .unwrap();
        for metric in &self.metrics {
            writeln!(
                w,
                "  {:<28} {:>12.4} {:>12.4} {:>12.4}",
                metric.name, metric.min, metric.median, metric.max
            )
            .unwrap();
        }
        out
    }

    /// JSON rendering (single object, stable key order).
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let w = &mut out;
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let engines: Vec<String> = self.engines.iter().map(|e| format!("{e:?}")).collect();
        let mismatches: Vec<String> =
            self.mismatches.iter().map(|m| format!("{m:?}")).collect();
        write!(
            w,
            "{{\"scenario\":{:?},\"seeds\":[{}],\"engines\":[{}],\"mismatches\":[{}]",
            self.scenario,
            seeds.join(","),
            engines.join(","),
            mismatches.join(",")
        )
        .unwrap();
        write!(w, ",\"metrics\":{{").unwrap();
        for (i, metric) in self.metrics.iter().enumerate() {
            if i > 0 {
                write!(w, ",").unwrap();
            }
            write!(
                w,
                "{:?}:{{\"min\":{},\"median\":{},\"max\":{}}}",
                metric.name,
                json_f64(metric.min),
                json_f64(metric.median),
                json_f64(metric.max)
            )
            .unwrap();
        }
        write!(w, "}},\"reports\":[").unwrap();
        for (i, report) in self.reports.iter().enumerate() {
            if i > 0 {
                write!(w, ",").unwrap();
            }
            write!(w, "{}", report.render_json()).unwrap();
        }
        write!(w, "]}}").unwrap();
        out
    }
}

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::spec::ChurnSpec;

    fn tiny_runner() -> ScenarioRunner {
        let mut spec = builtin::builtin("smoke").expect("smoke builtin");
        spec.churn = ChurnSpec::Overnet { hosts: 60, days: 1 };
        spec.warmup_mins = 60;
        spec.duration_mins = 30;
        spec.workload.ops_per_hour = 30.0;
        ScenarioRunner::new(spec).unwrap()
    }

    #[test]
    fn sweep_aggregates_across_seeds() {
        let summary = tiny_runner()
            .sweep(&SweepOptions {
                seeds: (11, 13),
                engines: Vec::new(),
            })
            .unwrap();
        assert_eq!(summary.seeds, vec![11, 12, 13]);
        assert_eq!(summary.reports.len(), 3);
        assert!(summary.mismatches.is_empty());
        let delivery = summary
            .metrics
            .iter()
            .find(|m| m.name == "anycast_delivery_rate")
            .expect("headline metric");
        assert!(delivery.min <= delivery.median && delivery.median <= delivery.max);
        // Different seeds really produce different runs.
        assert_ne!(summary.reports[0], summary.reports[1]);
        // Memory observations aggregate alongside the quality metrics.
        let rss = summary
            .metrics
            .iter()
            .find(|m| m.name == "peak_rss_mib")
            .expect("memory metric");
        if cfg!(target_os = "linux") {
            assert!(rss.min > 0.0, "peak RSS unobserved on linux");
        }
    }

    #[test]
    fn sweep_cross_checks_engines() {
        let summary = tiny_runner()
            .sweep(&SweepOptions {
                seeds: (7, 8),
                engines: vec![
                    SweepEngine {
                        label: "serial".into(),
                        engine: Some(MaintenanceEngine::Serial),
                    },
                    SweepEngine {
                        label: "sharded".into(),
                        engine: Some(MaintenanceEngine::Sharded {
                            shards: Some(4),
                            threads: Some(2),
                        }),
                    },
                ],
            })
            .unwrap();
        assert!(
            summary.mismatches.is_empty(),
            "engines diverged: {:?}",
            summary.mismatches
        );
        assert_eq!(summary.engines, vec!["serial", "sharded"]);
    }

    #[test]
    fn empty_seed_range_is_rejected() {
        assert!(tiny_runner()
            .sweep(&SweepOptions {
                seeds: (5, 4),
                engines: Vec::new(),
            })
            .is_err());
    }

    #[test]
    fn renderings_are_sound() {
        let summary = tiny_runner()
            .sweep(&SweepOptions {
                seeds: (3, 4),
                engines: Vec::new(),
            })
            .unwrap();
        let text = summary.render_text();
        assert!(text.contains("anycast_delivery_rate"), "{text}");
        let json = summary.render_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced: {json}"
        );
        assert!(json.contains("\"metrics\":{\"anycast_delivery_rate\""));
        assert!(!json.contains("NaN"));
    }
}
