#![warn(missing_docs)]

//! # `avmem_scenario` — declarative scenarios over a churning overlay
//!
//! The paper's whole point is *management operations over a churning,
//! non-cooperative overlay* (§3.2, §4). This crate makes that a
//! first-class, reproducible experiment: describe "an Overnet-churn day
//! at 1442 hosts with a mixed anycast/multicast workload and 5 % selfish
//! senders" as one [`ScenarioSpec`], run it with one
//! [`ScenarioRunner::run`] call (or `cargo run -p avmem_scenario -- run
//! overnet-day`), and get one [`ScenarioReport`].
//!
//! * [`spec`] — the declarative description: churn model, predicate,
//!   oracle fidelity, maintenance mode/engine, operation workload,
//!   optional adversary mix;
//! * [`parse`] — the text format (a hand-rolled TOML subset with
//!   line-numbered errors) and the canonical renderer; `parse(render(s))
//!   == s` for every valid spec;
//! * [`runner`] — interleaves a deterministic Poisson-like operation
//!   schedule *into* the live maintenance loop: operations fire between
//!   timestamp cohorts against the possibly-unconverged overlay, all
//!   randomness counter-keyed so reports are bit-identical across
//!   maintenance engines and thread counts;
//! * [`report`] — per-operation aggregates, per-interval overlay health,
//!   and the attack acceptance series, with text and JSON rendering;
//! * [`serve`] — the sustained-traffic service mode: the same event
//!   loop paced against wall clock, exporting live metrics through
//!   [`avmem_metrics`] and shedding operations (never maintenance) when
//!   the simulation falls behind its lag budget;
//! * [`sweep`] — seed sweeps with optional cross-engine bit-identity
//!   checks, aggregated to min/median/max headline metrics;
//! * [`builtin`] — a library of named, paper-anchored scenarios
//!   (`overnet-day`, `grid-reboot`, `flash-crowd`, `mass-departure`,
//!   `selfish-mix`, `stress-10k`, `smoke`, `serve-100k`).
//!
//! # Examples
//!
//! ```
//! use avmem_scenario::{builtin, ScenarioRunner};
//!
//! let mut spec = builtin::builtin("smoke").expect("built-in scenario");
//! spec.churn = avmem_scenario::ChurnSpec::Overnet { hosts: 60, days: 1 };
//! spec.workload.ops_per_hour = 30.0;
//! let report = ScenarioRunner::new(spec).unwrap().run().unwrap();
//! assert!(report.anycast.sent + report.multicast.sent > 0);
//! ```

pub mod builtin;
pub mod parse;
pub mod report;
pub mod runner;
pub mod serve;
pub mod spec;
pub mod sweep;

pub use parse::{parse_spec, ParseError};
pub use report::{
    AnycastStats, AttackStats, EstimatorAccuracy, HealthSample, MemoryStats, MulticastStats,
    ScenarioReport,
};
pub use runner::{RunSession, ScenarioRunner};
pub use serve::{ServeOptions, ServeOutcome};
pub use spec::{
    AdversarySpec, AssignmentSpec, BandSpec, ChurnSpec, EngineSpec, MaintenanceModeSpec,
    MaintenanceSpec, MulticastSpec, OracleSpec, PolicySpec, PredicateSpec, ReportSpec,
    ScenarioError, ScenarioSpec, ScopeSpec, ServeSpec, TargetMix, TargetSpec, WorkloadSpec,
};
pub use sweep::{SweepEngine, SweepMetric, SweepOptions, SweepSummary};
