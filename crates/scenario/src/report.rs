//! Scenario metrics: per-operation outcomes, per-interval overlay health,
//! and the attack acceptance series.
//!
//! A [`ScenarioReport`] is a plain value — every field is an exact count
//! or a deterministically accumulated float, so two runs of the same spec
//! and seed produce *bit-identical* reports regardless of maintenance
//! engine or thread count (pinned by `tests/determinism.rs`). Rendering
//! comes in two flavors: a human-readable text block and a JSON object
//! (hand-rolled — the vendored `serde` does not serialize).

/// Anycast hops histogram size: bucket `i` counts deliveries in `i` hops,
/// the last bucket everything at or beyond.
pub const HOPS_BUCKETS: usize = 12;

/// Availability-decile count for per-bucket series.
pub const DECILES: usize = 10;

/// Aggregated anycast outcomes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnycastStats {
    /// Anycasts fired.
    pub sent: u64,
    /// Anycasts that reached a node believing itself in the target.
    pub delivered: u64,
    /// Deliveries whose receiver is *truly* inside the target.
    pub delivered_in_truth: u64,
    /// Total hops over delivered anycasts.
    pub total_hops: u64,
    /// Total messages over all anycasts (including failed attempts).
    pub total_messages: u64,
    /// Total end-to-end latency over all anycasts, in milliseconds.
    pub total_latency_ms: u64,
    /// Deliveries by hop count (`min(hops, HOPS_BUCKETS - 1)`).
    pub hops_histogram: Vec<u64>,
}

impl AnycastStats {
    pub(crate) fn new() -> Self {
        AnycastStats {
            hops_histogram: vec![0; HOPS_BUCKETS],
            ..AnycastStats::default()
        }
    }

    /// Fraction of sent anycasts delivered (`0.0` when none sent).
    pub fn delivery_rate(&self) -> f64 {
        ratio(self.delivered, self.sent)
    }

    /// Mean hops per delivered anycast (`0.0` when none delivered).
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Mean end-to-end latency per sent anycast, in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.total_latency_ms as f64 / self.sent as f64
        }
    }
}

/// Aggregated multicast outcomes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MulticastStats {
    /// Multicasts fired.
    pub sent: u64,
    /// Multicasts whose stage-1 anycast entered the range.
    pub entered: u64,
    /// Sum of per-multicast reliability (delivered / eligible).
    pub reliability_sum: f64,
    /// Multicasts with a defined reliability (eligible > 0).
    pub reliability_count: u64,
    /// Sum of per-multicast spam ratios.
    pub spam_sum: f64,
    /// Multicasts with a defined spam ratio.
    pub spam_count: u64,
    /// Total dissemination messages (stage-1 anycast messages included).
    pub total_messages: u64,
    /// Payload deliveries bucketed by the receiver's true-availability
    /// decile — the AVCast incentive curve.
    pub deliveries_by_decile: Vec<u64>,
}

impl MulticastStats {
    pub(crate) fn new() -> Self {
        MulticastStats {
            deliveries_by_decile: vec![0; DECILES],
            ..MulticastStats::default()
        }
    }

    /// Mean reliability over multicasts that had eligible receivers.
    pub fn mean_reliability(&self) -> f64 {
        if self.reliability_count == 0 {
            0.0
        } else {
            self.reliability_sum / self.reliability_count as f64
        }
    }

    /// Mean spam ratio over multicasts that had eligible receivers.
    pub fn mean_spam(&self) -> f64 {
        if self.spam_count == 0 {
            0.0
        } else {
            self.spam_sum / self.spam_count as f64
        }
    }
}

/// Aggregated selfish-flooder probe outcomes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttackStats {
    /// Flood attempts fired.
    pub attempts: u64,
    /// Individual (sender, receiver) probes evaluated.
    pub probes: u64,
    /// Probes the receiver would have accepted.
    pub accepted: u64,
    /// `(probes, accepted)` by the attacker's true-availability decile.
    pub by_decile: Vec<(u64, u64)>,
}

impl AttackStats {
    pub(crate) fn new() -> Self {
        AttackStats {
            by_decile: vec![(0, 0); DECILES],
            ..AttackStats::default()
        }
    }

    /// Overall acceptance rate of selfish probes.
    pub fn acceptance_rate(&self) -> f64 {
        ratio(self.accepted, self.probes)
    }
}

/// Sampled accuracy of the configured availability estimator: at every
/// health boundary the runner draws a fixed number of (querier, target)
/// pairs from a dedicated keyed stream and accumulates the absolute error
/// of the oracle's estimate against the trace's long-term availability.
/// Deterministic (engine- and thread-independent), so it participates in
/// report equality — and lets a sweep compare strategies (e.g. AVMON ring
/// vs all-pairs) on equal arrivals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EstimatorAccuracy {
    /// Label of the estimation strategy (`exact`, `noisy`, `avmon-ring`,
    /// `avmon-all-pairs`, …).
    pub strategy: String,
    /// Sum of `|estimate − truth|` over answered samples.
    pub abs_error_sum: f64,
    /// Samples the oracle answered (unanswered queries are not errors:
    /// AVMON simply has no estimate before the first ping lands).
    pub answered: u64,
    /// Samples drawn in total.
    pub drawn: u64,
}

impl EstimatorAccuracy {
    /// Mean absolute error over answered samples (`0.0` when none).
    pub fn mae(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.abs_error_sum / self.answered as f64
        }
    }

    /// Fraction of drawn samples the oracle could answer.
    pub fn coverage(&self) -> f64 {
        ratio(self.answered, self.drawn)
    }
}

/// Process-memory observations captured when the run finishes: peak
/// resident set from the kernel, plus heap-allocator gauges when the
/// binary was built with the `heap-stats` counting allocator. These are
/// environment facts, not functions of `(spec, seed)`, so they are
/// excluded from report equality exactly like wall-clock timings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryStats {
    /// Peak resident set size (Linux `VmHWM`), bytes. `None` when the
    /// platform does not expose it.
    pub peak_rss_bytes: Option<u64>,
    /// Bytes live on the heap at report time (`heap-stats` builds only).
    pub heap_live_bytes: Option<u64>,
    /// Peak bytes ever live on the heap (`heap-stats` builds only).
    pub heap_peak_bytes: Option<u64>,
    /// Allocation calls over the process lifetime (`heap-stats` only).
    pub heap_alloc_calls: Option<u64>,
}

impl MemoryStats {
    /// True when nothing was observed (non-Linux, no counting allocator).
    pub fn is_empty(&self) -> bool {
        *self == MemoryStats::default()
    }
}

/// One overlay-health sample.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSample {
    /// Sample time, minutes since simulation start.
    pub at_mins: u64,
    /// Online population at the sample instant.
    pub online: usize,
    /// Mean (out-)degree over online nodes.
    pub mean_degree: f64,
    /// Largest-connected-component fraction of the online overlay
    /// (HS+VS edges).
    pub largest_component: f64,
    /// Operations fired since the previous sample.
    pub ops_since_last: u64,
    /// Selfish probes evaluated since the previous sample
    /// (`probes, accepted`) — the attack acceptance series; zeros when no
    /// adversary is configured.
    pub attack_since_last: (u64, u64),
}

/// The complete result of one scenario run.
///
/// Equality deliberately ignores [`ScenarioReport::timings`]: wall-clock
/// phase timings vary run to run, while every other field is a
/// deterministic function of `(spec, seed)` — the determinism suite
/// compares whole reports with `==`.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Seed the run used.
    pub seed: u64,
    /// Population size.
    pub hosts: usize,
    /// Operation-phase length in minutes.
    pub duration_mins: u64,
    /// Anycast aggregates.
    pub anycast: AnycastStats,
    /// Multicast aggregates.
    pub multicast: MulticastStats,
    /// Adversary aggregates (`None` without an adversary mix).
    pub attack: Option<AttackStats>,
    /// Health samples, chronological.
    pub health: Vec<HealthSample>,
    /// Operations skipped because no eligible initiator was online.
    pub skipped_ops: u64,
    /// Operations dropped by serve-mode admission control (always `0`
    /// for `run` and for unpaced serve, which keeps fixed-duration serve
    /// bit-identical to run).
    pub admission_drops: u64,
    /// Sampled estimator accuracy; see [`EstimatorAccuracy`].
    pub estimator: EstimatorAccuracy,
    /// Maintenance phase wall-clock totals (oracle / propose / commit /
    /// finalize) accumulated over the whole run. Excluded from `==`.
    pub timings: avmem::PhaseTimings,
    /// Finalize fast-path counters (threshold memo, pair-hash cache,
    /// refresh short-circuit, batched estimates) accumulated over the
    /// whole run. Excluded from `==`: runs at different shard or thread
    /// counts split the cache work differently while producing the same
    /// overlay state.
    pub finalize: avmem::FinalizeStats,
    /// Process-memory observations (peak RSS, heap gauges). Excluded
    /// from `==`: memory is an environment fact, not a spec function.
    pub memory: MemoryStats,
}

impl PartialEq for ScenarioReport {
    fn eq(&self, other: &Self) -> bool {
        // Every field except `timings` (wall-clock noise) and `finalize`
        // (engine-shape-dependent counters).
        self.scenario == other.scenario
            && self.seed == other.seed
            && self.hosts == other.hosts
            && self.duration_mins == other.duration_mins
            && self.anycast == other.anycast
            && self.multicast == other.multicast
            && self.attack == other.attack
            && self.health == other.health
            && self.skipped_ops == other.skipped_ops
            && self.admission_drops == other.admission_drops
            && self.estimator == other.estimator
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl ScenarioReport {
    /// Human-readable report block.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let w = &mut out;
        writeln!(
            w,
            "scenario {:?} (seed {}, {} hosts, {} min of operations)",
            self.scenario, self.seed, self.hosts, self.duration_mins
        )
        .unwrap();

        let a = &self.anycast;
        writeln!(w, "anycast:").unwrap();
        writeln!(
            w,
            "  sent {}  delivered {} ({:.1}%)  in-range-by-truth {}",
            a.sent,
            a.delivered,
            100.0 * a.delivery_rate(),
            a.delivered_in_truth
        )
        .unwrap();
        writeln!(
            w,
            "  mean hops {:.2}  mean latency {:.0} ms  messages {}",
            a.mean_hops(),
            a.mean_latency_ms(),
            a.total_messages
        )
        .unwrap();
        let histogram: Vec<String> = a
            .hops_histogram
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(hops, count)| {
                if hops + 1 == HOPS_BUCKETS {
                    format!("{hops}+:{count}")
                } else {
                    format!("{hops}:{count}")
                }
            })
            .collect();
        writeln!(w, "  hops histogram {{{}}}", histogram.join(", ")).unwrap();

        let m = &self.multicast;
        writeln!(w, "multicast:").unwrap();
        writeln!(
            w,
            "  sent {}  entered range {}  mean reliability {:.1}%  mean spam {:.1}%  messages {}",
            m.sent,
            m.entered,
            100.0 * m.mean_reliability(),
            100.0 * m.mean_spam(),
            m.total_messages
        )
        .unwrap();
        let deciles: Vec<String> = m
            .deliveries_by_decile
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(d, count)| format!("{:.1}-{:.1}:{count}", d as f64 / 10.0, (d + 1) as f64 / 10.0))
            .collect();
        writeln!(w, "  deliveries by availability decile {{{}}}", deciles.join(", ")).unwrap();

        if let Some(attack) = &self.attack {
            writeln!(w, "adversary:").unwrap();
            writeln!(
                w,
                "  flood attempts {}  probes {}  accepted {} ({:.1}%)",
                attack.attempts,
                attack.probes,
                attack.accepted,
                100.0 * attack.acceptance_rate()
            )
            .unwrap();
        }

        writeln!(w, "overlay health (per {}):", interval_label(&self.health)).unwrap();
        writeln!(
            w,
            "  {:>8} {:>7} {:>8} {:>10} {:>6} {:>12}",
            "t (min)", "online", "degree", "component", "ops", "attack-acc"
        )
        .unwrap();
        for sample in &self.health {
            let (probes, accepted) = sample.attack_since_last;
            let attack = if probes == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * accepted as f64 / probes as f64)
            };
            writeln!(
                w,
                "  {:>8} {:>7} {:>8.2} {:>10.3} {:>6} {:>12}",
                sample.at_mins,
                sample.online,
                sample.mean_degree,
                sample.largest_component,
                sample.ops_since_last,
                attack
            )
            .unwrap();
        }
        if self.skipped_ops > 0 {
            writeln!(w, "skipped operations (no eligible initiator): {}", self.skipped_ops)
                .unwrap();
        }
        if self.admission_drops > 0 {
            writeln!(w, "admission drops (serve backpressure): {}", self.admission_drops)
                .unwrap();
        }
        let e = &self.estimator;
        if e.drawn > 0 {
            writeln!(
                w,
                "estimator {:?}: MAE {:.4} over {} answered of {} sampled ({:.1}% coverage)",
                e.strategy,
                e.mae(),
                e.answered,
                e.drawn,
                100.0 * e.coverage()
            )
            .unwrap();
        }
        let t = &self.timings;
        if t.cohorts > 0 {
            writeln!(
                w,
                "maintenance phase timings ({} cohorts): oracle {:.3} s  propose {:.3} s  \
                 commit {:.3} s  finalize {:.3} s",
                t.cohorts,
                t.oracle.as_secs_f64(),
                t.propose.as_secs_f64(),
                t.commit.as_secs_f64(),
                t.finalize.as_secs_f64()
            )
            .unwrap();
        }
        let f = &self.finalize;
        if f != &avmem::FinalizeStats::default() {
            writeln!(
                w,
                "finalize fast path: memo hits {}  misses {}  bypassed {}  \
                 refresh skipped {}  evaluated {}  discover pruned {}  \
                 batched estimates {}",
                f.memo_hits,
                f.memo_misses,
                f.memo_bypassed,
                f.refresh_skipped,
                f.refresh_evaluated,
                f.discover_pruned,
                f.batched_estimates
            )
            .unwrap();
            let h = &f.pair_hash;
            writeln!(
                w,
                "  pair-hash cache: hits {}  misses {}  delegated {}  flushes {}",
                h.hits, h.misses, h.delegated, h.flushes
            )
            .unwrap();
        }
        let mem = &self.memory;
        if !mem.is_empty() {
            let field = |label: &str, bytes: Option<u64>| match bytes {
                Some(b) => format!("{label} {:.1} MiB", b as f64 / (1024.0 * 1024.0)),
                None => format!("{label} -"),
            };
            writeln!(
                w,
                "memory: {}  {}  {}  allocs {}",
                field("peak RSS", mem.peak_rss_bytes),
                field("heap live", mem.heap_live_bytes),
                field("heap peak", mem.heap_peak_bytes),
                mem.heap_alloc_calls
                    .map_or_else(|| "-".to_string(), |c| c.to_string())
            )
            .unwrap();
        }
        out
    }

    /// JSON rendering (single object, stable key order).
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let w = &mut out;
        write!(
            w,
            "{{\"scenario\":{:?},\"seed\":{},\"hosts\":{},\"duration_mins\":{}",
            self.scenario, self.seed, self.hosts, self.duration_mins
        )
        .unwrap();
        let a = &self.anycast;
        write!(
            w,
            ",\"anycast\":{{\"sent\":{},\"delivered\":{},\"delivered_in_truth\":{},\
             \"total_hops\":{},\"total_messages\":{},\"total_latency_ms\":{},\
             \"hops_histogram\":{}}}",
            a.sent,
            a.delivered,
            a.delivered_in_truth,
            a.total_hops,
            a.total_messages,
            a.total_latency_ms,
            json_u64_array(&a.hops_histogram)
        )
        .unwrap();
        let m = &self.multicast;
        write!(
            w,
            ",\"multicast\":{{\"sent\":{},\"entered\":{},\"reliability_sum\":{},\
             \"reliability_count\":{},\"spam_sum\":{},\"spam_count\":{},\
             \"total_messages\":{},\"deliveries_by_decile\":{}}}",
            m.sent,
            m.entered,
            json_f64(m.reliability_sum),
            m.reliability_count,
            json_f64(m.spam_sum),
            m.spam_count,
            m.total_messages,
            json_u64_array(&m.deliveries_by_decile)
        )
        .unwrap();
        match &self.attack {
            None => write!(w, ",\"attack\":null").unwrap(),
            Some(attack) => {
                let deciles: Vec<String> = attack
                    .by_decile
                    .iter()
                    .map(|&(p, acc)| format!("[{p},{acc}]"))
                    .collect();
                write!(
                    w,
                    ",\"attack\":{{\"attempts\":{},\"probes\":{},\"accepted\":{},\
                     \"by_decile\":[{}]}}",
                    attack.attempts,
                    attack.probes,
                    attack.accepted,
                    deciles.join(",")
                )
                .unwrap();
            }
        }
        write!(w, ",\"health\":[").unwrap();
        for (i, sample) in self.health.iter().enumerate() {
            if i > 0 {
                write!(w, ",").unwrap();
            }
            write!(
                w,
                "{{\"at_mins\":{},\"online\":{},\"mean_degree\":{},\
                 \"largest_component\":{},\"ops_since_last\":{},\"attack_since_last\":[{},{}]}}",
                sample.at_mins,
                sample.online,
                json_f64(sample.mean_degree),
                json_f64(sample.largest_component),
                sample.ops_since_last,
                sample.attack_since_last.0,
                sample.attack_since_last.1
            )
            .unwrap();
        }
        let e = &self.estimator;
        write!(
            w,
            "],\"skipped_ops\":{},\"admission_drops\":{},\
             \"estimator\":{{\"strategy\":{:?},\"abs_error_sum\":{},\"answered\":{},\
             \"drawn\":{},\"mae\":{}}}",
            self.skipped_ops,
            self.admission_drops,
            e.strategy,
            json_f64(e.abs_error_sum),
            e.answered,
            e.drawn,
            json_f64(e.mae())
        )
        .unwrap();
        let t = &self.timings;
        write!(
            w,
            ",\"timings\":{{\"cohorts\":{},\"oracle_secs\":{},\
             \"propose_secs\":{},\"commit_secs\":{},\"finalize_secs\":{}}}",
            t.cohorts,
            json_f64(t.oracle.as_secs_f64()),
            json_f64(t.propose.as_secs_f64()),
            json_f64(t.commit.as_secs_f64()),
            json_f64(t.finalize.as_secs_f64())
        )
        .unwrap();
        let f = &self.finalize;
        write!(
            w,
            ",\"finalize\":{{\"memo_hits\":{},\"memo_misses\":{},\"memo_bypassed\":{},\
             \"refresh_skipped\":{},\"refresh_evaluated\":{},\"discover_pruned\":{},\
             \"batched_estimates\":{},\
             \"pair_hash\":{{\"hits\":{},\"misses\":{},\"delegated\":{},\"flushes\":{}}}}}",
            f.memo_hits,
            f.memo_misses,
            f.memo_bypassed,
            f.refresh_skipped,
            f.refresh_evaluated,
            f.discover_pruned,
            f.batched_estimates,
            f.pair_hash.hits,
            f.pair_hash.misses,
            f.pair_hash.delegated,
            f.pair_hash.flushes
        )
        .unwrap();
        let mem = &self.memory;
        write!(
            w,
            ",\"memory\":{{\"peak_rss_bytes\":{},\"heap_live_bytes\":{},\
             \"heap_peak_bytes\":{},\"heap_alloc_calls\":{}}}}}",
            json_opt_u64(mem.peak_rss_bytes),
            json_opt_u64(mem.heap_live_bytes),
            json_opt_u64(mem.heap_peak_bytes),
            json_opt_u64(mem.heap_alloc_calls)
        )
        .unwrap();
        out
    }
}

fn interval_label(health: &[HealthSample]) -> String {
    match health {
        [first, second, ..] => format!("{} min", second.at_mins - first.at_mins),
        _ => "interval".to_string(),
    }
}

fn json_u64_array(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

/// JSON has no NaN/Inf; finite floats use Rust's shortest round-trip
/// formatting, which is valid JSON.
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

fn json_opt_u64(value: Option<u64>) -> String {
    value.map_or_else(|| "null".to_string(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ScenarioReport {
        let mut anycast = AnycastStats::new();
        anycast.sent = 10;
        anycast.delivered = 8;
        anycast.delivered_in_truth = 7;
        anycast.total_hops = 12;
        anycast.total_messages = 31;
        anycast.total_latency_ms = 900;
        anycast.hops_histogram[1] = 5;
        anycast.hops_histogram[2] = 3;
        let mut multicast = MulticastStats::new();
        multicast.sent = 3;
        multicast.entered = 3;
        multicast.reliability_sum = 2.7;
        multicast.reliability_count = 3;
        multicast.total_messages = 120;
        multicast.deliveries_by_decile[8] = 40;
        ScenarioReport {
            scenario: "unit".into(),
            seed: 5,
            hosts: 100,
            duration_mins: 60,
            anycast,
            multicast,
            attack: Some(AttackStats {
                attempts: 2,
                probes: 40,
                accepted: 3,
                by_decile: vec![(0, 0); DECILES],
            }),
            health: vec![
                HealthSample {
                    at_mins: 0,
                    online: 40,
                    mean_degree: 9.5,
                    largest_component: 0.98,
                    ops_since_last: 0,
                    attack_since_last: (0, 0),
                },
                HealthSample {
                    at_mins: 60,
                    online: 42,
                    mean_degree: 9.8,
                    largest_component: 1.0,
                    ops_since_last: 13,
                    attack_since_last: (40, 3),
                },
            ],
            skipped_ops: 1,
            admission_drops: 0,
            estimator: EstimatorAccuracy {
                strategy: "exact".into(),
                abs_error_sum: 5.12,
                answered: 512,
                drawn: 1024,
            },
            timings: avmem::PhaseTimings {
                oracle: std::time::Duration::from_millis(120),
                propose: std::time::Duration::from_millis(40),
                commit: std::time::Duration::from_millis(35),
                finalize: std::time::Duration::from_millis(80),
                cohorts: 240,
            },
            finalize: avmem::FinalizeStats {
                memo_hits: 900,
                memo_misses: 100,
                refresh_skipped: 50,
                refresh_evaluated: 25,
                discover_pruned: 700,
                batched_estimates: 4000,
                pair_hash: avmem::harness::PairCacheStats {
                    hits: 3000,
                    misses: 1000,
                    ..Default::default()
                },
                ..Default::default()
            },
            memory: MemoryStats {
                peak_rss_bytes: Some(512 * 1024 * 1024),
                heap_live_bytes: Some(100 * 1024 * 1024),
                heap_peak_bytes: Some(300 * 1024 * 1024),
                heap_alloc_calls: Some(123_456),
            },
        }
    }

    #[test]
    fn means_handle_zero_denominators() {
        let empty = AnycastStats::new();
        assert_eq!(empty.delivery_rate(), 0.0);
        assert_eq!(empty.mean_hops(), 0.0);
        assert_eq!(empty.mean_latency_ms(), 0.0);
        assert_eq!(MulticastStats::new().mean_reliability(), 0.0);
        assert_eq!(AttackStats::new().acceptance_rate(), 0.0);
    }

    #[test]
    fn text_rendering_mentions_the_headline_numbers() {
        let text = sample_report().render_text();
        assert!(text.contains("sent 10"), "{text}");
        assert!(text.contains("80.0%"), "{text}");
        assert!(text.contains("flood attempts 2"), "{text}");
        assert!(text.contains("overlay health"), "{text}");
    }

    #[test]
    fn json_rendering_is_structurally_sound() {
        let json = sample_report().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces: {json}"
        );
        assert!(json.contains("\"anycast\":{"));
        assert!(json.contains("\"attack\":{"));
        assert!(json.contains("\"health\":["));
        // No bare NaN can appear.
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn json_null_for_missing_attack() {
        let mut report = sample_report();
        report.attack = None;
        assert!(report.render_json().contains("\"attack\":null"));
    }

    #[test]
    fn renderings_carry_phase_timings() {
        let report = sample_report();
        let text = report.render_text();
        assert!(text.contains("maintenance phase timings (240 cohorts)"), "{text}");
        assert!(text.contains("propose 0.040 s"), "{text}");
        let json = report.render_json();
        assert!(json.contains("\"timings\":{\"cohorts\":240"), "{json}");
        assert!(json.contains("\"propose_secs\":0.04"), "{json}");
    }

    #[test]
    fn equality_ignores_wall_clock_timings() {
        let a = sample_report();
        let mut b = sample_report();
        b.timings = avmem::PhaseTimings::default();
        assert_eq!(a, b, "timings must not affect report equality");
        b.skipped_ops += 1;
        assert_ne!(a, b, "real fields still compare");
    }

    #[test]
    fn renderings_carry_finalize_fast_path_counters() {
        let report = sample_report();
        let text = report.render_text();
        assert!(text.contains("finalize fast path: memo hits 900"), "{text}");
        assert!(text.contains("discover pruned 700"), "{text}");
        assert!(text.contains("pair-hash cache: hits 3000"), "{text}");
        let json = report.render_json();
        assert!(json.contains("\"finalize\":{\"memo_hits\":900"), "{json}");
        assert!(json.contains("\"discover_pruned\":700"), "{json}");
        assert!(json.contains("\"pair_hash\":{\"hits\":3000"), "{json}");
        // All-zero counters (fast path off) drop the text block but keep
        // the JSON object for a stable schema.
        let mut quiet = sample_report();
        quiet.finalize = avmem::FinalizeStats::default();
        assert!(!quiet.render_text().contains("finalize fast path"));
        assert!(quiet.render_json().contains("\"finalize\":{\"memo_hits\":0"));
    }

    #[test]
    fn renderings_carry_estimator_accuracy_and_drops() {
        let mut report = sample_report();
        report.admission_drops = 7;
        let text = report.render_text();
        assert!(text.contains("estimator \"exact\": MAE 0.0100"), "{text}");
        assert!(text.contains("50.0% coverage"), "{text}");
        assert!(text.contains("admission drops (serve backpressure): 7"), "{text}");
        let json = report.render_json();
        assert!(json.contains("\"admission_drops\":7"), "{json}");
        assert!(json.contains("\"estimator\":{\"strategy\":\"exact\""), "{json}");
        assert!(json.contains("\"answered\":512"), "{json}");
        // A run with no samples drops the text line but keeps the JSON
        // object for a stable schema.
        let mut quiet = sample_report();
        quiet.estimator = EstimatorAccuracy::default();
        assert!(!quiet.render_text().contains("estimator"));
        assert!(!quiet.render_text().contains("admission drops"));
        assert!(quiet.render_json().contains("\"estimator\":{\"strategy\":\"\""));
    }

    #[test]
    fn estimator_accuracy_participates_in_equality() {
        let a = sample_report();
        let mut b = sample_report();
        b.estimator.abs_error_sum += 0.5;
        assert_ne!(a, b, "estimator accuracy is deterministic and compared");
        let mut c = sample_report();
        c.admission_drops = 3;
        assert_ne!(a, c, "admission drops are compared");
    }

    #[test]
    fn equality_ignores_finalize_counters() {
        let a = sample_report();
        let mut b = sample_report();
        b.finalize = avmem::FinalizeStats::default();
        assert_eq!(a, b, "finalize counters must not affect report equality");
    }

    #[test]
    fn equality_ignores_memory_observations() {
        let a = sample_report();
        let mut b = sample_report();
        b.memory = MemoryStats::default();
        assert_eq!(a, b, "memory gauges must not affect report equality");
    }

    #[test]
    fn renderings_carry_memory_observations() {
        let report = sample_report();
        let text = report.render_text();
        assert!(text.contains("memory: peak RSS 512.0 MiB"), "{text}");
        assert!(text.contains("heap peak 300.0 MiB"), "{text}");
        assert!(text.contains("allocs 123456"), "{text}");
        let json = report.render_json();
        assert!(json.contains("\"memory\":{\"peak_rss_bytes\":536870912"), "{json}");
        assert!(json.contains("\"heap_alloc_calls\":123456"), "{json}");
        // A build with no observations drops the text line but keeps the
        // JSON object (nulls) for a stable schema.
        let mut quiet = sample_report();
        quiet.memory = MemoryStats::default();
        assert!(!quiet.render_text().contains("memory: peak RSS"));
        assert!(quiet.render_json().contains("\"memory\":{\"peak_rss_bytes\":null"));
    }
}
