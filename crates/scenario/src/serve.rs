//! Service mode: sustained operation traffic with a live metrics layer.
//!
//! [`ScenarioRunner::serve`] drives a [`RunSession`] as a long-running
//! open-loop service instead of a batch run:
//!
//! * the workload rate can be restated as **operations per simulated
//!   day** (the service yardstick — e.g. 10⁶ ops/day at 10⁵ hosts);
//! * a **pacing factor** maps simulated time onto wall-clock (`pace`
//!   simulated seconds per wall second; `0` = unpaced, run flat out);
//! * when a paced loop falls behind its **lag budget**, admission
//!   control sheds pending *operations* — maintenance cohorts and
//!   health samples are never dropped, so the overlay stays correct
//!   under pressure and the drops are themselves metered;
//! * every layer reports through one [`Registry`]: live op latency
//!   percentiles, delivery counters, harness phase spans, AVMON slot
//!   costs, pair-hash store and worker-pool statistics, overlay health
//!   gauges — optionally exported over HTTP by a [`MetricsServer`].
//!
//! Determinism: an **unpaced** serve of the full operation window
//! executes exactly the event sequence of [`ScenarioRunner::run`] and
//! produces a bit-identical [`ScenarioReport`] (pinned by
//! `tests/serve.rs`). Pacing and backpressure only ever *remove*
//! operations, and every removal is counted in
//! `ScenarioReport::admission_drops`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use avmem_metrics::{MetricsServer, Registry};

use crate::report::ScenarioReport;
use crate::runner::{RunSession, ScenarioRunner};
use crate::spec::ScenarioError;

/// Caller overrides for one serve invocation. `None` fields fall back to
/// the spec's `[serve]` section (or its defaults).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Sustained rate in operations per **simulated day**, overriding
    /// the workload's `ops_per_hour`.
    pub ops_per_day: Option<f64>,
    /// Simulated seconds advanced per wall-clock second (`0` = unpaced).
    pub pace: Option<f64>,
    /// Wall-clock lag budget in milliseconds before operations are shed.
    pub lag_budget_ms: Option<u64>,
    /// Truncates the operation window to this many minutes (the arrival
    /// schedule is a prefix of the untruncated one).
    pub for_mins: Option<u64>,
    /// Binds the metrics endpoint here (e.g. `127.0.0.1:9464`; port `0`
    /// picks an ephemeral port, reported in [`ServeOutcome`]).
    pub metrics_addr: Option<String>,
    /// Prints a heartbeat line to stderr every this many wall-clock
    /// seconds (`0` = silent).
    pub snapshot_every_secs: u64,
    /// Hard wall-clock cap in seconds; the session is sealed at the
    /// simulated time reached when it trips.
    pub max_wall_secs: Option<u64>,
    /// Captures a final Prometheus scrape of the endpoint (or a direct
    /// registry rendering when no endpoint is bound) into the outcome.
    pub scrape_on_exit: bool,
}

/// What one serve invocation produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The sealed report (same shape as a batch run's).
    pub report: ScenarioReport,
    /// Wall-clock seconds the serve loop ran.
    pub wall_secs: f64,
    /// Simulated minutes of the operation window actually served.
    pub sim_mins: u64,
    /// Operation arrivals handled (fired + skipped + shed).
    pub ops_handled: u64,
    /// Handled arrivals scaled to a simulated day — the throughput
    /// figure the serve acceptance gate checks.
    pub ops_per_sim_day: f64,
    /// Final Prometheus exposition text (with `scrape_on_exit`).
    pub metrics_text: Option<String>,
    /// Address the metrics endpoint was bound to, if any.
    pub metrics_addr: Option<std::net::SocketAddr>,
}

impl ScenarioRunner {
    /// Runs the scenario as a sustained-traffic service; see the module
    /// docs for the execution model.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] for bad overrides (or a
    /// metrics endpoint that cannot bind) and propagates session
    /// construction errors.
    pub fn serve(&self, opts: &ServeOptions) -> Result<ServeOutcome, ScenarioError> {
        let defaults = self.spec.serve.unwrap_or_default();
        let pace = opts.pace.unwrap_or(defaults.pace);
        if !(pace.is_finite() && pace >= 0.0) {
            return Err(ScenarioError::Invalid(
                "serve pace must be non-negative and finite".into(),
            ));
        }
        let lag_budget =
            Duration::from_millis(opts.lag_budget_ms.unwrap_or(defaults.lag_budget_ms));

        let mut spec = self.spec.clone();
        if let Some(rate) = opts.ops_per_day.or(defaults.ops_per_day) {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(ScenarioError::Invalid(
                    "serve ops_per_day must be positive and finite".into(),
                ));
            }
            spec.workload.ops_per_hour = rate / 24.0;
        }
        if let Some(mins) = opts.for_mins {
            spec.duration_mins = spec.duration_mins.min(mins);
        }
        let runner = ScenarioRunner {
            spec,
            engine_override: self.engine_override,
        };
        runner.spec.validate()?;

        let registry = Arc::new(Registry::new());
        let mut session = runner.session()?;
        session.set_metrics(&registry);
        let mut server = match &opts.metrics_addr {
            None => None,
            Some(addr) => Some(MetricsServer::bind(Arc::clone(&registry), addr).map_err(
                |e| ScenarioError::Invalid(format!("metrics endpoint {addr}: {e}")),
            )?),
        };
        let metrics_addr = server.as_ref().map(MetricsServer::local_addr);
        let lag_gauge = registry.gauge(
            "avmem_serve_lag_ms",
            "Wall-clock lag of the paced serve loop (ms).",
            &[],
        );

        let paced = pace > 0.0;
        let wall0 = Instant::now();
        let sim0 = session.now(); // warm-up boundary
        let heartbeat = (opts.snapshot_every_secs > 0)
            .then(|| Duration::from_secs(opts.snapshot_every_secs));
        let mut next_beat = heartbeat;

        while let Some(at) = session.next_event_at() {
            if let Some(cap) = opts.max_wall_secs {
                if wall0.elapsed() >= Duration::from_secs(cap) {
                    break;
                }
            }
            if paced {
                // Due instant of this event on the wall clock.
                let due = Duration::from_secs_f64(
                    at.saturating_since(sim0).as_millis() as f64 / (1_000.0 * pace),
                );
                // Sleep in short slices so heartbeats and the wall cap
                // stay responsive during quiet stretches.
                loop {
                    let elapsed = wall0.elapsed();
                    if elapsed >= due {
                        break;
                    }
                    std::thread::sleep((due - elapsed).min(Duration::from_millis(50)));
                    self.beat(&mut next_beat, heartbeat, wall0, &session, &registry);
                }
                let lag = wall0.elapsed().saturating_sub(due);
                lag_gauge.set(lag.as_secs_f64() * 1_000.0);
                if lag > lag_budget && session.next_is_op() {
                    // Behind budget: shed the operation (its arrival
                    // instant still advances the clock, so maintenance
                    // owed by then runs).
                    session.drop_next_op();
                    continue;
                }
            }
            session.step();
            self.beat(&mut next_beat, heartbeat, wall0, &session, &registry);
        }

        publish_runtime(&session, &registry);
        let truncated = session.next_event_at().is_some();
        let sim_end = if truncated { session.now() } else { session.end() };
        let sim_mins = sim_end.saturating_since(sim0).as_millis() / 60_000;
        let wall_secs = wall0.elapsed().as_secs_f64();
        let report = if truncated {
            let now = session.now();
            session.finish_at(now)
        } else {
            session.finish()
        };
        let metrics_text = if opts.scrape_on_exit {
            Some(match metrics_addr {
                Some(addr) => avmem_metrics::scrape(addr, "/metrics")
                    .unwrap_or_else(|_| registry.render_prometheus()),
                None => registry.render_prometheus(),
            })
        } else {
            None
        };
        if let Some(server) = &mut server {
            server.shutdown();
        }

        let ops_handled = ops_handled(&report);
        let sim_days = sim_mins as f64 / (24.0 * 60.0);
        let ops_per_sim_day = if sim_days > 0.0 {
            ops_handled as f64 / sim_days
        } else {
            0.0
        };
        Ok(ServeOutcome {
            report,
            wall_secs,
            sim_mins,
            ops_handled,
            ops_per_sim_day,
            metrics_text,
            metrics_addr,
        })
    }

    /// Emits the periodic heartbeat (stderr line + runtime-stat publish)
    /// when its period elapsed.
    fn beat(
        &self,
        next_beat: &mut Option<Duration>,
        period: Option<Duration>,
        wall0: Instant,
        session: &RunSession,
        registry: &Registry,
    ) {
        let (Some(due), Some(period)) = (*next_beat, period) else {
            return;
        };
        let elapsed = wall0.elapsed();
        if elapsed < due {
            return;
        }
        *next_beat = Some(elapsed + period);
        publish_runtime(session, registry);
        let report = session.report();
        let fired = report.anycast.sent + report.multicast.sent;
        eprintln!(
            "serve[{}] wall {:.0}s  sim {} min  ops fired {}  anycast delivery {:.1}%  \
             skipped {}  shed {}  backlog {}",
            self.spec.name,
            elapsed.as_secs_f64(),
            session.now().as_millis() / 60_000,
            fired,
            100.0 * report.anycast.delivery_rate(),
            report.skipped_ops,
            report.admission_drops,
            session.sim().pending_maintenance(),
        );
    }
}

/// Operation arrivals handled by a sealed report: fired (anycast,
/// multicast, flood attempts), skipped for lack of an initiator, and
/// shed by admission control.
fn ops_handled(report: &ScenarioReport) -> u64 {
    report.anycast.sent
        + report.multicast.sent
        + report.attack.as_ref().map_or(0, |a| a.attempts)
        + report.skipped_ops
        + report.admission_drops
}

/// Mirrors cumulative runtime statistics that live outside the registry
/// (pair-hash store, worker pool, maintenance backlog) into it. Cheap;
/// called on every heartbeat and once at the end.
fn publish_runtime(session: &RunSession, registry: &Registry) {
    let sim = session.sim();
    sim.tracer().publish(registry, "avmem");
    let store = sim.hash_store_stats();
    let mirror = |name: &str, help: &str, v: u64| {
        registry.counter(name, help, &[]).store(v);
    };
    mirror(
        "avmem_hash_rows_built_total",
        "Pair-hash rows materialized by the shared store.",
        store.rows_built,
    );
    mirror(
        "avmem_hash_lru_hits_total",
        "Pair-hash LRU row-cache hits.",
        store.lru_hits,
    );
    mirror(
        "avmem_hash_lru_misses_total",
        "Pair-hash LRU row-cache misses.",
        store.lru_misses,
    );
    mirror(
        "avmem_hash_lru_evictions_total",
        "Pair-hash LRU rows evicted (thrash indicator).",
        store.lru_evictions,
    );
    mirror(
        "avmem_hash_direct_total",
        "Pair hashes computed directly (uncached).",
        store.direct_hashes,
    );
    registry
        .gauge(
            "avmem_hash_cached_rows",
            "Pair-hash rows currently resident.",
            &[],
        )
        .set(store.cached_rows as f64);
    let pool = avmem_util::parallel::global_pool().pool_stats();
    mirror(
        "avmem_pool_batches_total",
        "Batches dispatched to the shared worker pool.",
        pool.batches,
    );
    mirror(
        "avmem_pool_jobs_total",
        "Jobs executed by the shared worker pool.",
        pool.jobs,
    );
    mirror(
        "avmem_pool_inline_batches_total",
        "Worker-pool batches degraded to inline execution.",
        pool.inline_batches,
    );
    registry
        .gauge(
            "avmem_maintenance_backlog",
            "Maintenance work items pending behind the clock.",
            &[],
        )
        .set(sim.pending_maintenance() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::spec::ChurnSpec;

    fn tiny_runner() -> ScenarioRunner {
        let mut spec = builtin::builtin("smoke").expect("smoke builtin");
        spec.churn = ChurnSpec::Overnet { hosts: 80, days: 1 };
        spec.warmup_mins = 60;
        spec.duration_mins = 60;
        spec.workload.ops_per_hour = 40.0;
        ScenarioRunner::new(spec).unwrap()
    }

    #[test]
    fn unpaced_serve_matches_run_bit_for_bit() {
        let runner = tiny_runner();
        let baseline = runner.run().unwrap();
        let outcome = runner.serve(&ServeOptions::default()).unwrap();
        assert_eq!(baseline, outcome.report);
        assert_eq!(outcome.report.admission_drops, 0);
        assert!(outcome.ops_handled > 0);
        assert!(outcome.ops_per_sim_day > 0.0);
        assert_eq!(outcome.sim_mins, 60);
    }

    #[test]
    fn ops_per_day_override_restates_the_rate() {
        let runner = tiny_runner();
        let outcome = runner
            .serve(&ServeOptions {
                ops_per_day: Some(2_400.0), // 100/hour, up from 40
                ..ServeOptions::default()
            })
            .unwrap();
        let baseline = runner.serve(&ServeOptions::default()).unwrap();
        assert!(
            outcome.ops_handled > baseline.ops_handled,
            "{} vs {}",
            outcome.ops_handled,
            baseline.ops_handled
        );
    }

    #[test]
    fn for_mins_serves_a_prefix() {
        let runner = tiny_runner();
        let outcome = runner
            .serve(&ServeOptions {
                for_mins: Some(30),
                ..ServeOptions::default()
            })
            .unwrap();
        assert_eq!(outcome.sim_mins, 30);
        assert_eq!(outcome.report.duration_mins, 30);
    }

    #[test]
    fn scrape_on_exit_captures_families() {
        let runner = tiny_runner();
        let outcome = runner
            .serve(&ServeOptions {
                metrics_addr: Some("127.0.0.1:0".into()),
                scrape_on_exit: true,
                ..ServeOptions::default()
            })
            .unwrap();
        let text = outcome.metrics_text.expect("scrape requested");
        for family in [
            "avmem_ops_total",
            "avmem_op_exec_us",
            "avmem_online",
            "avmem_phase_span_us",
            "avmem_pool_batches_total",
        ] {
            assert!(text.contains(family), "missing {family}:\n{text}");
        }
        assert!(outcome.metrics_addr.is_some());
    }

    #[test]
    fn bad_overrides_are_rejected() {
        let runner = tiny_runner();
        assert!(runner
            .serve(&ServeOptions {
                pace: Some(-1.0),
                ..ServeOptions::default()
            })
            .is_err());
        assert!(runner
            .serve(&ServeOptions {
                ops_per_day: Some(0.0),
                ..ServeOptions::default()
            })
            .is_err());
    }
}
