//! The declarative scenario description.
//!
//! A [`ScenarioSpec`] is everything needed to reproduce one experiment:
//! the churning population, the predicate family, the oracle fidelity,
//! the maintenance mode and engine, the operation workload, and an
//! optional adversary mix. Specs are values — build them in code, or
//! parse/render the text format (see [`crate::parse`]).
//!
//! All time quantities are integers in the unit their field name carries
//! (`*_mins`, `*_secs`), so specs round-trip through text exactly.

use avmem::harness::{
    MaintenanceEngine, MaintenanceMode, OracleChoice, PredicateChoice, SimConfig,
};
use avmem::ops::{AnycastConfig, ForwardPolicy, MulticastConfig, MulticastStrategy};
use avmem::predicate::{HorizontalRule, VerticalRule};
use avmem::SliverScope;
use avmem::AvailabilityTarget;
use avmem_sim::SimDuration;
use avmem_trace::{ChurnTrace, CrowdDirection, FlashCrowdModel, GridModel, OvernetModel};

/// Anything that can go wrong building or running a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// The spec violates an invariant; the message names it.
    Invalid(String),
    /// A trace file could not be read or parsed.
    Trace(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::Trace(msg) => write!(f, "trace error: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A complete, reproducible experiment description.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (reports carry it).
    pub name: String,
    /// Master seed: trace generation, maintenance, and every operation
    /// stream are keyed off it.
    pub seed: u64,
    /// Operation-phase length in minutes (after warm-up).
    pub duration_mins: u64,
    /// Maintenance-only lead-in in minutes before the first operation.
    pub warmup_mins: u64,
    /// Overlay-health sampling interval in minutes.
    pub health_every_mins: u64,
    /// The churning population.
    pub churn: ChurnSpec,
    /// The membership predicate building the overlay.
    pub predicate: PredicateSpec,
    /// The availability oracle the overlay queries.
    pub oracle: OracleSpec,
    /// Maintenance mode and execution engine.
    pub maintenance: MaintenanceSpec,
    /// The operation workload.
    pub workload: WorkloadSpec,
    /// Optional selfish-flooder mix.
    pub adversary: Option<AdversarySpec>,
    /// Optional service-mode defaults for `scenario serve`.
    pub serve: Option<ServeSpec>,
    /// Report/diagnostic sampling budgets.
    pub report: ReportSpec,
}

/// The churn model driving node up/down state.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnSpec {
    /// Synthetic Overnet-like churn (the paper's workload).
    Overnet {
        /// Population size.
        hosts: usize,
        /// Trace length in days.
        days: u64,
    },
    /// Reboot-heavy Grid'5000-style churn.
    Grid {
        /// Population size.
        machines: usize,
        /// Trace length in days.
        days: u64,
    },
    /// A flash crowd joining a running system.
    FlashCrowd {
        /// Population size.
        hosts: usize,
        /// Trace length in days.
        days: u64,
        /// Fraction of hosts in the arriving crowd.
        fraction: f64,
        /// Where in the trace the crowd arrives, as a fraction.
        switch_at: f64,
    },
    /// A mass departure partway through the trace.
    MassDeparture {
        /// Population size.
        hosts: usize,
        /// Trace length in days.
        days: u64,
        /// Fraction of hosts departing.
        fraction: f64,
        /// Where in the trace the crowd departs, as a fraction.
        switch_at: f64,
    },
    /// An `AVTRACE v1` file on disk (real measured churn).
    TraceFile {
        /// Path to the trace file.
        path: String,
    },
}

/// The membership predicate family.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateSpec {
    /// AVMEM slivers (rules I.B + II.B).
    Avmem {
        /// Horizontal-band half-width.
        epsilon: f64,
        /// Vertical constant `c₁`.
        c1: f64,
        /// Horizontal constant `c₂`.
        c2: f64,
    },
    /// Consistent-random baseline.
    Random {
        /// Target expected out-degree.
        degree: f64,
    },
}

/// The availability-oracle fidelity.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleSpec {
    /// Ground truth.
    Exact,
    /// Per-querier noise and staleness.
    Noisy {
        /// Uniform error amplitude.
        error: f64,
        /// Cache staleness in minutes.
        staleness_mins: u64,
    },
    /// Noise shared across queriers (AVMON-aggregate model).
    NoisyShared {
        /// Uniform error amplitude.
        error: f64,
        /// Aggregate staleness in minutes.
        staleness_mins: u64,
    },
    /// The full ping-based AVMON service (default ping parameters).
    Avmon {
        /// Monitor-assignment strategy the service runs with.
        assignment: AssignmentSpec,
    },
}

/// AVMON monitor-assignment strategy — the scenario-level fidelity knob
/// trading the paper's exact all-pairs rule against ring scalability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AssignmentSpec {
    /// The paper's all-pairs hash rule: O(N²) build, estimator history
    /// never resets (most faithful, unusable past ~10⁴ hosts).
    AllPairs,
    /// Consistent-hash ring: O(N log N) build and O(k) join/leave deltas
    /// under churn, at the cost of noisier estimates (reassignment
    /// resets the affected edges' observation windows).
    Ring {
        /// Virtual points per ring member.
        vnodes: u32,
        /// Monitors per target (ring successors).
        monitors: u32,
    },
}

/// Maintenance mode plus execution engine.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceSpec {
    /// How the overlay is maintained.
    pub mode: MaintenanceModeSpec,
    /// How cohorts execute.
    pub engine: EngineSpec,
}

/// How the overlay is maintained during the run.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenanceModeSpec {
    /// Live shuffle/discovery/refresh through the event engine.
    EventDriven {
        /// Shuffle/discovery period in seconds.
        protocol_secs: u64,
        /// Refresh period in minutes.
        refresh_mins: u64,
    },
    /// Periodic converged rebuilds; between rebuilds operations see the
    /// (stale) last-rebuilt overlay.
    Converged {
        /// Rebuild interval in minutes.
        rebuild_every_mins: u64,
    },
}

/// Cohort execution engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSpec {
    /// Straight-line reference engine.
    Serial,
    /// Sharded engine: shard-owned state driven by worker threads.
    /// `shards == 0` matches the resolved thread count; `threads == 0`
    /// sizes to the machine (respecting any cgroup CPU quota).
    Sharded {
        /// Shard count (0 = one per worker thread).
        shards: usize,
        /// Worker-thread cap (0 = all cores).
        threads: usize,
    },
}

/// The operation workload: a deterministic Poisson-like arrival schedule
/// of anycast/multicast calls (plus adversary probes when configured).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Mean operation arrival rate (exponential inter-arrivals).
    pub ops_per_hour: f64,
    /// Fraction of operations that are anycasts (the rest multicast).
    pub anycast_fraction: f64,
    /// Anycast forwarding policy (also stage 1 of each multicast).
    pub policy: PolicySpec,
    /// Sliver lists forwarding may use.
    pub scope: ScopeSpec,
    /// Anycast TTL in hops.
    pub ttl: u32,
    /// Which availability band initiators are drawn from.
    pub initiators: BandSpec,
    /// Dissemination strategy inside multicast ranges.
    pub multicast: MulticastSpec,
    /// Weighted mix of availability targets operations address.
    pub targets: Vec<TargetMix>,
}

/// Anycast forwarding policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// Greedy, no acknowledgements.
    Greedy,
    /// Greedy with acknowledgement and retries.
    RetriedGreedy {
        /// Retry budget.
        retries: u32,
    },
    /// Simulated-annealing forwarding.
    Annealing,
}

/// Sliver-list scope for forwarding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeSpec {
    /// Horizontal sliver only.
    Hs,
    /// Vertical sliver only.
    Vs,
    /// Both slivers.
    Both,
}

/// Initiator availability band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandSpec {
    /// True availability in `[0, 1/3)`.
    Low,
    /// True availability in `[1/3, 2/3)`.
    Mid,
    /// True availability in `[2/3, 1]`.
    High,
    /// Any online node.
    Any,
}

/// Multicast dissemination strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulticastSpec {
    /// Flood on first receipt.
    Flood,
    /// Periodic bounded gossip.
    Gossip {
        /// Neighbors contacted per period.
        fanout: u32,
        /// Gossip periods after first receipt.
        rounds: u32,
        /// Period length in seconds.
        period_secs: u64,
    },
}

/// One weighted entry of the target mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetMix {
    /// Relative weight (need not be normalized).
    pub weight: f64,
    /// The availability region addressed.
    pub target: TargetSpec,
}

/// An availability target in spec form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetSpec {
    /// All nodes with availability in `[lo, hi]`.
    Range {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// All nodes with availability above `min`.
    Threshold {
        /// Exclusive lower bound.
        min: f64,
    },
}

/// Selfish-flooder adversary mix (see `avmem::harness::attack`): a
/// fraction of workload arrivals become flood probes, each measuring how
/// many online non-neighbors would accept the selfish sender's message
/// under receiver-side verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversarySpec {
    /// Fraction of arrivals that are selfish flood probes.
    pub flooder_fraction: f64,
    /// Verification cushion receivers apply.
    pub cushion: f64,
    /// Non-neighbors probed per flood attempt.
    pub probes: u32,
}

/// Service-mode (`scenario serve`) defaults. All of these can be
/// overridden on the serve command line; `run` ignores the section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSpec {
    /// Sustained operation rate per **simulated day**, overriding the
    /// workload's `ops_per_hour` in serve mode (`None` keeps the
    /// workload rate). The serve-mode throughput yardstick — e.g.
    /// `1e6` ops/day at 10⁵ hosts.
    pub ops_per_day: Option<f64>,
    /// Simulated seconds advanced per wall-clock second. `0` (the
    /// default) runs unpaced: events execute back to back, no admission
    /// control engages, and a fixed-duration serve is bit-identical to
    /// `run`.
    pub pace: f64,
    /// Wall-clock lag budget in milliseconds: when a paced serve falls
    /// further behind than this, pending *operations* are shed
    /// (maintenance and health samples never are) until the loop
    /// catches up.
    pub lag_budget_ms: u64,
}

impl Default for ServeSpec {
    fn default() -> ServeSpec {
        ServeSpec {
            ops_per_day: None,
            pace: 0.0,
            lag_budget_ms: 2_000,
        }
    }
}

/// Report/diagnostic sampling budgets — knobs shaping what the report
/// *measures about* the run, never what the run *does*: the simulated
/// overlay, operations, and maintenance are bit-identical across any
/// `[report]` settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportSpec {
    /// `(querier, target)` pairs drawn per health boundary for the
    /// estimator MAE series. `0` disables the series. At 10⁶ hosts each
    /// AVMON estimate walks the monitor set, so this budget is the knob
    /// that keeps report finalization off the critical path.
    pub estimator_samples: u64,
}

impl Default for ReportSpec {
    fn default() -> ReportSpec {
        ReportSpec {
            estimator_samples: 512,
        }
    }
}

impl ScenarioSpec {
    /// Checks every cross-field invariant the parser cannot see, returning
    /// the first violation.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let fail = |msg: String| Err(ScenarioError::Invalid(msg));
        // Strings embedded in rendered spec text and JSON reports: no
        // quotes (the text format cannot escape them) and no control
        // characters (JSON escapes would be ill-formed).
        let renderable = |s: &str| !s.contains('"') && !s.chars().any(char::is_control);
        if self.name.is_empty() {
            return fail("name must be non-empty".into());
        }
        if !renderable(&self.name) {
            return fail("name must not contain quotes or control characters".into());
        }
        if self.duration_mins == 0 {
            return fail("duration_mins must be positive".into());
        }
        if self.health_every_mins == 0 {
            return fail("health_every_mins must be positive".into());
        }
        match &self.churn {
            ChurnSpec::Overnet { hosts, days } | ChurnSpec::FlashCrowd { hosts, days, .. }
            | ChurnSpec::MassDeparture { hosts, days, .. } => {
                if *hosts == 0 || *days == 0 {
                    return fail("churn needs hosts > 0 and days > 0".into());
                }
            }
            ChurnSpec::Grid { machines, days } => {
                if *machines == 0 || *days == 0 {
                    return fail("churn needs machines > 0 and days > 0".into());
                }
            }
            ChurnSpec::TraceFile { path } => {
                if path.is_empty() {
                    return fail("trace-file churn needs a path".into());
                }
                if !renderable(path) {
                    return fail("trace path must not contain quotes or control characters".into());
                }
            }
        }
        if let ChurnSpec::FlashCrowd { fraction, switch_at, .. }
        | ChurnSpec::MassDeparture { fraction, switch_at, .. } = &self.churn
        {
            if !(0.0..=1.0).contains(fraction) || !(0.0..=1.0).contains(switch_at) {
                return fail("crowd fraction and switch_at must be in [0, 1]".into());
            }
        }
        match &self.predicate {
            PredicateSpec::Avmem { epsilon, c1, c2 } => {
                if !(*epsilon > 0.0 && *epsilon < 0.5) {
                    return fail(format!("epsilon {epsilon} must be in (0, 0.5)"));
                }
                if !(c1.is_finite() && *c1 > 0.0 && c2.is_finite() && *c2 > 0.0) {
                    return fail("c1 and c2 must be positive".into());
                }
            }
            PredicateSpec::Random { degree } => {
                if !(degree.is_finite() && *degree > 0.0) {
                    return fail("random predicate needs degree > 0".into());
                }
            }
        }
        if let OracleSpec::Noisy { error, staleness_mins }
        | OracleSpec::NoisyShared { error, staleness_mins } = &self.oracle
        {
            if !(0.0..=1.0).contains(error) {
                return fail(format!("oracle error {error} must be in [0, 1]"));
            }
            if *staleness_mins == 0 {
                return fail("oracle staleness_mins must be positive".into());
            }
        }
        if let OracleSpec::Avmon {
            assignment: AssignmentSpec::Ring { vnodes, monitors },
        } = &self.oracle
        {
            if *vnodes == 0 || *monitors == 0 {
                return fail("ring assignment needs vnodes >= 1 and monitors >= 1".into());
            }
        }
        match &self.maintenance.mode {
            MaintenanceModeSpec::EventDriven { protocol_secs, refresh_mins } => {
                if *protocol_secs == 0 || *refresh_mins == 0 {
                    return fail("event-driven periods must be positive".into());
                }
            }
            MaintenanceModeSpec::Converged { rebuild_every_mins } => {
                if *rebuild_every_mins == 0 {
                    return fail("rebuild_every_mins must be positive".into());
                }
            }
        }
        let w = &self.workload;
        if !(w.ops_per_hour.is_finite() && w.ops_per_hour >= 0.0) {
            return fail(format!("ops_per_hour {} must be finite and ≥ 0", w.ops_per_hour));
        }
        if !(0.0..=1.0).contains(&w.anycast_fraction) {
            return fail("anycast_fraction must be in [0, 1]".into());
        }
        if w.ttl == 0 {
            return fail("ttl must be positive".into());
        }
        if let MulticastSpec::Gossip { fanout, rounds, period_secs } = w.multicast {
            if fanout == 0 || rounds == 0 || period_secs == 0 {
                return fail("gossip fanout, rounds and period must be positive".into());
            }
        }
        if w.targets.is_empty() {
            return fail("workload needs at least one [[target]]".into());
        }
        for (i, mix) in w.targets.iter().enumerate() {
            if !(mix.weight.is_finite() && mix.weight > 0.0) {
                return fail(format!("target {i} weight must be positive"));
            }
            match mix.target {
                TargetSpec::Range { lo, hi } => {
                    if !((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi) {
                        return fail(format!("target {i} range must satisfy 0 ≤ lo ≤ hi ≤ 1"));
                    }
                }
                TargetSpec::Threshold { min } => {
                    if !(0.0..1.0).contains(&min) {
                        return fail(format!("target {i} threshold must satisfy 0 ≤ min < 1"));
                    }
                }
            }
        }
        if let Some(adv) = &self.adversary {
            if !(0.0..=1.0).contains(&adv.flooder_fraction) {
                return fail("flooder_fraction must be in [0, 1]".into());
            }
            if !(adv.cushion.is_finite() && adv.cushion >= 0.0) {
                return fail("cushion must be non-negative".into());
            }
            if adv.probes == 0 {
                return fail("adversary probes must be positive".into());
            }
        }
        if let Some(serve) = &self.serve {
            if let Some(rate) = serve.ops_per_day {
                if !(rate.is_finite() && rate > 0.0) {
                    return fail("serve ops_per_day must be positive and finite".into());
                }
            }
            if !(serve.pace.is_finite() && serve.pace >= 0.0) {
                return fail("serve pace must be non-negative and finite".into());
            }
        }
        Ok(())
    }

    /// Builds the churn trace the scenario runs over (generating it, or
    /// reading the configured `AVTRACE v1` file).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Trace`] when a trace file cannot be read,
    /// and [`ScenarioError::Invalid`] when the trace is shorter than
    /// `warmup + duration`.
    pub fn build_trace(&self) -> Result<ChurnTrace, ScenarioError> {
        let trace = match &self.churn {
            ChurnSpec::Overnet { hosts, days } => {
                OvernetModel::default().hosts(*hosts).days(*days).generate(self.seed)
            }
            ChurnSpec::Grid { machines, days } => {
                GridModel::new().machines(*machines).days(*days).generate(self.seed)
            }
            ChurnSpec::FlashCrowd { hosts, days, fraction, switch_at } => {
                FlashCrowdModel::new(CrowdDirection::Join)
                    .hosts(*hosts)
                    .days(*days)
                    .crowd_fraction(*fraction)
                    .switch_point(*switch_at)
                    .generate(self.seed)
            }
            ChurnSpec::MassDeparture { hosts, days, fraction, switch_at } => {
                FlashCrowdModel::new(CrowdDirection::Leave)
                    .hosts(*hosts)
                    .days(*days)
                    .crowd_fraction(*fraction)
                    .switch_point(*switch_at)
                    .generate(self.seed)
            }
            ChurnSpec::TraceFile { path } => {
                let file = std::fs::File::open(path)
                    .map_err(|e| ScenarioError::Trace(format!("open {path}: {e}")))?;
                ChurnTrace::read_from(file)
                    .map_err(|e| ScenarioError::Trace(format!("parse {path}: {e}")))?
            }
        };
        let needed = SimDuration::from_mins(self.warmup_mins + self.duration_mins);
        if trace.duration() < needed {
            return Err(ScenarioError::Invalid(format!(
                "trace covers {:.1} h but warmup + duration needs {:.1} h",
                trace.duration().as_secs_f64() / 3600.0,
                needed.as_secs_f64() / 3600.0
            )));
        }
        Ok(trace)
    }

    /// The harness configuration this spec describes.
    pub fn sim_config(&self) -> SimConfig {
        let mut config = SimConfig::paper_default(self.seed);
        config.predicate = match self.predicate {
            PredicateSpec::Avmem { epsilon, c1, c2 } => PredicateChoice::Avmem {
                epsilon,
                vertical: VerticalRule::Logarithmic { c1 },
                horizontal: HorizontalRule::LogarithmicConstant { c2 },
            },
            PredicateSpec::Random { degree } => PredicateChoice::Random {
                expected_degree: degree,
            },
        };
        config.oracle = match self.oracle {
            OracleSpec::Exact => OracleChoice::Exact,
            OracleSpec::Noisy { error, staleness_mins } => OracleChoice::Noisy {
                error,
                staleness: SimDuration::from_mins(staleness_mins),
            },
            OracleSpec::NoisyShared { error, staleness_mins } => OracleChoice::NoisyShared {
                error,
                staleness: SimDuration::from_mins(staleness_mins),
            },
            OracleSpec::Avmon { assignment } => OracleChoice::Avmon {
                config: avmem_avmon::AvmonConfig {
                    assignment: match assignment {
                        AssignmentSpec::AllPairs => avmem_avmon::AssignmentChoice::AllPairs,
                        AssignmentSpec::Ring { vnodes, monitors } => {
                            avmem_avmon::AssignmentChoice::Ring { vnodes, k: monitors }
                        }
                    },
                    ..avmem_avmon::AvmonConfig::default()
                },
            },
        };
        config.maintenance = match self.maintenance.mode {
            MaintenanceModeSpec::EventDriven { protocol_secs, refresh_mins } => {
                MaintenanceMode::EventDriven {
                    protocol_period: SimDuration::from_secs(protocol_secs),
                    refresh_period: SimDuration::from_mins(refresh_mins),
                }
            }
            // The runner drives converged rebuilds itself; the harness
            // mode stays Converged so advance_to is maintenance-free.
            MaintenanceModeSpec::Converged { .. } => MaintenanceMode::Converged,
        };
        config.engine = self.maintenance.engine.to_engine();
        config
    }
}

impl EngineSpec {
    /// The harness engine this spec selects.
    pub fn to_engine(&self) -> MaintenanceEngine {
        match *self {
            EngineSpec::Serial => MaintenanceEngine::Serial,
            EngineSpec::Sharded { shards, threads } => MaintenanceEngine::Sharded {
                shards: (shards > 0).then_some(shards),
                threads: (threads > 0).then_some(threads),
            },
        }
    }
}

impl ScopeSpec {
    /// The harness sliver scope.
    pub fn to_scope(self) -> SliverScope {
        match self {
            ScopeSpec::Hs => SliverScope::HsOnly,
            ScopeSpec::Vs => SliverScope::VsOnly,
            ScopeSpec::Both => SliverScope::Both,
        }
    }
}

impl PolicySpec {
    /// The harness forwarding policy.
    pub fn to_policy(self) -> ForwardPolicy {
        match self {
            PolicySpec::Greedy => ForwardPolicy::Greedy,
            PolicySpec::RetriedGreedy { retries } => ForwardPolicy::RetriedGreedy { retries },
            PolicySpec::Annealing => ForwardPolicy::SimulatedAnnealing,
        }
    }
}

impl TargetSpec {
    /// The harness availability target.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range bounds — excluded by
    /// [`ScenarioSpec::validate`].
    pub fn to_target(self) -> AvailabilityTarget {
        match self {
            TargetSpec::Range { lo, hi } => AvailabilityTarget::range(lo, hi),
            TargetSpec::Threshold { min } => AvailabilityTarget::threshold(min),
        }
    }
}

impl WorkloadSpec {
    /// The anycast configuration every workload anycast (and multicast
    /// stage 1) uses.
    pub fn anycast_config(&self) -> AnycastConfig {
        AnycastConfig {
            policy: self.policy.to_policy(),
            scope: self.scope.to_scope(),
            ttl: self.ttl,
        }
    }

    /// The multicast configuration every workload multicast uses.
    pub fn multicast_config(&self) -> MulticastConfig {
        let strategy = match self.multicast {
            MulticastSpec::Flood => MulticastStrategy::Flood,
            MulticastSpec::Gossip { fanout, rounds, period_secs } => MulticastStrategy::Gossip {
                fanout,
                rounds,
                period: SimDuration::from_secs(period_secs),
            },
        };
        MulticastConfig {
            strategy,
            scope: self.scope.to_scope(),
            anycast: self.anycast_config(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    fn valid() -> ScenarioSpec {
        builtin::builtin("smoke").expect("smoke builtin exists")
    }

    #[test]
    fn builtin_passes_validation() {
        valid().validate().expect("builtin must validate");
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut spec = valid();
        spec.duration_mins = 0;
        assert!(spec.validate().is_err());

        // Names that could not be rendered back (render/parse round-trip
        // and JSON reports both embed them) are rejected up front.
        let mut spec = valid();
        spec.name = "has \"quotes\"".into();
        assert!(spec.validate().is_err());
        let mut spec = valid();
        spec.name = "control\u{1}char".into();
        assert!(spec.validate().is_err());
        let mut spec = valid();
        spec.churn = ChurnSpec::TraceFile { path: "bad\"path".into() };
        assert!(spec.validate().is_err());

        let mut spec = valid();
        spec.workload.targets.clear();
        assert!(spec.validate().is_err());

        let mut spec = valid();
        spec.workload.targets[0].weight = -1.0;
        assert!(spec.validate().is_err());

        let mut spec = valid();
        spec.predicate = PredicateSpec::Avmem { epsilon: 0.9, c1: 2.5, c2: 2.0 };
        assert!(spec.validate().is_err());

        let mut spec = valid();
        spec.adversary = Some(AdversarySpec {
            flooder_fraction: 2.0,
            cushion: 0.1,
            probes: 10,
        });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn trace_shorter_than_run_is_rejected() {
        let mut spec = valid();
        spec.churn = ChurnSpec::Overnet { hosts: 30, days: 1 };
        spec.warmup_mins = 23 * 60;
        spec.duration_mins = 120; // 25 h needed, 24 h trace
        assert!(matches!(spec.build_trace(), Err(ScenarioError::Invalid(_))));
    }

    #[test]
    fn sim_config_reflects_spec() {
        let mut spec = valid();
        spec.maintenance.engine = EngineSpec::Sharded { shards: 2, threads: 3 };
        spec.oracle = OracleSpec::Noisy { error: 0.05, staleness_mins: 20 };
        let config = spec.sim_config();
        assert_eq!(
            config.engine,
            MaintenanceEngine::Sharded {
                shards: Some(2),
                threads: Some(3),
            }
        );
        // Zeroes mean "auto" and map to None at the harness boundary.
        assert_eq!(
            EngineSpec::Sharded { shards: 0, threads: 0 }.to_engine(),
            MaintenanceEngine::Sharded { shards: None, threads: None }
        );
        assert!(matches!(config.oracle, OracleChoice::Noisy { .. }));
    }
}
