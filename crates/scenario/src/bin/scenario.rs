//! The `scenario` CLI: list, inspect, check, run, serve, and sweep
//! scenarios.
//!
//! ```text
//! scenario list                      # built-in scenarios
//! scenario show overnet-day          # print a built-in's spec text
//! scenario check my-experiment.scn   # parse + validate a spec file
//! scenario run overnet-day           # run a built-in
//! scenario run my-experiment.scn --seed 9 --engine serial --json
//! scenario serve serve-100k --metrics-addr 127.0.0.1:9464
//! scenario sweep smoke --seeds 1..8 --engines serial,sharded
//! ```
//!
//! `run`, `serve`, `sweep`, and `check` resolve their argument as a
//! built-in name first, then as a file path. Shared overrides:
//! `--seed N`, `--engine serial|sharded`, `--shards S` (0 = one per
//! worker), `--threads K` (0 = all cores), `--warmup-mins N` /
//! `--duration-mins N` (truncated CI smokes of big scenarios), `--json`
//! for machine-readable output. `serve` adds the service-mode knobs
//! (rate, pacing, lag budget, metrics endpoint); `sweep` runs an
//! inclusive seed range and aggregates headline metrics.

use std::process::ExitCode;

use avmem::harness::MaintenanceEngine;
use avmem_scenario::{
    builtin, parse_spec, EngineSpec, ScenarioRunner, ScenarioSpec, ServeOptions, SweepEngine,
    SweepOptions,
};

fn usage() -> &'static str {
    "usage: scenario <command>\n\
     \n\
     commands:\n\
     \x20 list                        list built-in scenarios\n\
     \x20 show <name>                 print a built-in scenario's spec text\n\
     \x20 check <name|file>           parse and validate a built-in or spec file\n\
     \x20 run <name|file> [options]   run a scenario and print its report\n\
     \x20 serve <name|file> [options] run as a sustained-traffic service with live metrics\n\
     \x20 sweep <name|file> [options] run a seed sweep and aggregate headline metrics\n\
     \n\
     run/serve/sweep options:\n\
     \x20 --seed <n>                  override the spec's seed\n\
     \x20 --engine serial|sharded     override the maintenance engine\n\
     \x20 --shards <s>                shard count for --engine sharded (0 = one per worker)\n\
     \x20 --threads <k>               worker threads for --engine sharded (0 = all cores)\n\
     \x20 --warmup-mins <n>           override the spec's warmup length\n\
     \x20 --duration-mins <n>         override the spec's measured duration\n\
     \x20 --json                      print the report as JSON\n\
     \n\
     run options:\n\
     \x20 --assert-peak-rss-mb <n>    exit non-zero if peak RSS exceeds n MiB (CI memory smoke)\n\
     \n\
     serve options:\n\
     \x20 --for-mins <n>              serve only the first n minutes of the window\n\
     \x20 --ops-per-day <r>           sustained rate in operations per simulated day\n\
     \x20 --pace <p>                  simulated seconds per wall second (0 = unpaced)\n\
     \x20 --lag-budget-ms <n>         shed operations when lag exceeds this budget\n\
     \x20 --metrics-addr <host:port>  expose /metrics on this address (port 0 = ephemeral)\n\
     \x20 --snapshot-secs <n>         heartbeat every n wall seconds (0 = silent)\n\
     \x20 --max-wall-secs <n>         hard wall-clock cap for the serve loop\n\
     \x20 --scrape-once               print a final Prometheus scrape on exit\n\
     \n\
     sweep options:\n\
     \x20 --seeds <a..b>              inclusive seed range (or a single seed)\n\
     \x20 --engines <e1,e2,...>       engines to cross-check (serial, sharded)\n"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str);
    match command {
        Some("list") | Some("--list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("show") => match args.get(1) {
            Some(name) => show(name),
            None => fail("show needs a scenario name"),
        },
        Some("check") => match args.get(1) {
            Some(which) => check(which),
            None => fail("check needs a scenario name or spec file path"),
        },
        Some("run") => match args.get(1) {
            Some(which) => run(which, &args[2..]),
            None => fail("run needs a scenario name or spec file"),
        },
        Some("serve") => match args.get(1) {
            Some(which) => serve(which, &args[2..]),
            None => fail("serve needs a scenario name or spec file"),
        },
        Some("sweep") => match args.get(1) {
            Some(which) => sweep(which, &args[2..]),
            None => fail("sweep needs a scenario name or spec file"),
        },
        Some("--help") | Some("-h") | None => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown command {other:?}\n\n{}", usage())),
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("scenario: {message}");
    ExitCode::from(2)
}

fn list() {
    println!("built-in scenarios:");
    for name in builtin::builtin_names() {
        let blurb = builtin::builtin_blurb(name).unwrap_or("");
        println!("  {name:<16} {blurb}");
    }
    println!("\nrun one with: scenario run <name>");
}

fn show(name: &str) -> ExitCode {
    match builtin::builtin_source(name) {
        Some(source) => {
            print!("{source}");
            ExitCode::SUCCESS
        }
        None => fail(&format!(
            "no built-in scenario {name:?} (see `scenario list`)"
        )),
    }
}

fn check(which: &str) -> ExitCode {
    match resolve(which) {
        Ok(spec) => {
            println!(
                "{which}: ok — scenario {:?}, {} min of operations",
                spec.name, spec.duration_mins
            );
            ExitCode::SUCCESS
        }
        Err(message) => fail(&message),
    }
}

/// Resolves `which` as a built-in name first, then as a spec file path.
fn resolve(which: &str) -> Result<ScenarioSpec, String> {
    match builtin::builtin(which) {
        Some(spec) => {
            // Built-ins are validated by their own tests, but re-check
            // here so `check <name>` means what it says.
            spec.validate().map_err(|e| format!("{which}: {e}"))?;
            Ok(spec)
        }
        None => load_file(which).map_err(|message| {
            format!(
                "{which:?} is neither a built-in (see `scenario list`) nor a readable \
                 spec file: {message}"
            )
        }),
    }
}

fn load_file(path: &str) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let spec = parse_spec(&text).map_err(|e| format!("{path}: {e}"))?;
    spec.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(spec)
}

/// Overrides shared by `run`, `serve`, and `sweep`.
#[derive(Default)]
struct Common {
    engine: Option<&'static str>,
    shards: Option<usize>,
    threads: Option<usize>,
    json: bool,
}

impl Common {
    /// Tries to consume `option` (and its value from `iter`) as a common
    /// override. `Ok(true)` = consumed, `Ok(false)` = not a common
    /// option, `Err` = recognized but malformed.
    fn consume(
        &mut self,
        spec: &mut ScenarioSpec,
        option: &str,
        iter: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        match option {
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(seed) => spec.seed = seed,
                None => return Err("--seed needs an integer".into()),
            },
            // "parallel" is the pre-sharding spelling, kept as an alias.
            "--engine" => match iter.next().map(String::as_str) {
                Some("serial") => self.engine = Some("serial"),
                Some("sharded" | "parallel") => self.engine = Some("sharded"),
                _ => return Err("--engine needs `serial` or `sharded`".into()),
            },
            "--shards" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(s) => self.shards = Some(s),
                None => return Err("--shards needs an integer".into()),
            },
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(k) => self.threads = Some(k),
                None => return Err("--threads needs an integer".into()),
            },
            "--warmup-mins" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(mins) => spec.warmup_mins = mins,
                None => return Err("--warmup-mins needs an integer".into()),
            },
            "--duration-mins" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(mins) => spec.duration_mins = mins,
                None => return Err("--duration-mins needs an integer".into()),
            },
            "--json" => self.json = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Applies the engine override to the spec.
    fn apply_engine(&self, spec: &mut ScenarioSpec) {
        match self.engine {
            Some("serial") => spec.maintenance.engine = EngineSpec::Serial,
            Some(_) => {
                spec.maintenance.engine = EngineSpec::Sharded {
                    shards: self.shards.unwrap_or(0),
                    threads: self.threads.unwrap_or(0),
                }
            }
            None => {
                // Bare --shards/--threads refine an already-sharded spec.
                if let EngineSpec::Sharded { shards: s, threads: t } = spec.maintenance.engine {
                    if self.shards.is_some() || self.threads.is_some() {
                        spec.maintenance.engine = EngineSpec::Sharded {
                            shards: self.shards.unwrap_or(s),
                            threads: self.threads.unwrap_or(t),
                        };
                    }
                }
            }
        }
    }
}

fn run(which: &str, options: &[String]) -> ExitCode {
    let mut spec = match resolve(which) {
        Ok(spec) => spec,
        Err(message) => return fail(&message),
    };

    let mut common = Common::default();
    let mut rss_ceiling_mb: Option<u64> = None;
    let mut iter = options.iter();
    while let Some(option) = iter.next() {
        match common.consume(&mut spec, option, &mut iter) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(message) => return fail(&message),
        }
        match option.as_str() {
            "--assert-peak-rss-mb" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(mb) => rss_ceiling_mb = Some(mb),
                None => return fail("--assert-peak-rss-mb needs an integer (MiB)"),
            },
            other => return fail(&format!("unknown run option {other:?}")),
        }
    }
    common.apply_engine(&mut spec);
    let json = common.json;

    let runner = match ScenarioRunner::new(spec) {
        Ok(runner) => runner,
        Err(e) => return fail(&e.to_string()),
    };
    if !json {
        eprintln!(
            "running scenario {:?} (seed {}) ...",
            runner.spec().name, runner.spec().seed
        );
    }
    match runner.run() {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if let Some(ceiling) = rss_ceiling_mb {
                let Some(peak) = report.memory.peak_rss_bytes else {
                    return fail("--assert-peak-rss-mb: peak RSS not observable here");
                };
                let peak_mb = peak / (1024 * 1024);
                if peak_mb > ceiling {
                    return fail(&format!(
                        "peak RSS {peak_mb} MiB exceeds the asserted ceiling {ceiling} MiB"
                    ));
                }
                eprintln!("peak RSS {peak_mb} MiB within the {ceiling} MiB ceiling");
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}

fn serve(which: &str, options: &[String]) -> ExitCode {
    let mut spec = match resolve(which) {
        Ok(spec) => spec,
        Err(message) => return fail(&message),
    };

    let mut common = Common::default();
    let mut opts = ServeOptions {
        snapshot_every_secs: 10,
        ..ServeOptions::default()
    };
    let mut iter = options.iter();
    while let Some(option) = iter.next() {
        match common.consume(&mut spec, option, &mut iter) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(message) => return fail(&message),
        }
        match option.as_str() {
            "--for-mins" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(mins) => opts.for_mins = Some(mins),
                None => return fail("--for-mins needs an integer"),
            },
            "--ops-per-day" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(rate) => opts.ops_per_day = Some(rate),
                None => return fail("--ops-per-day needs a number"),
            },
            "--pace" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(pace) => opts.pace = Some(pace),
                None => return fail("--pace needs a number"),
            },
            "--lag-budget-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(ms) => opts.lag_budget_ms = Some(ms),
                None => return fail("--lag-budget-ms needs an integer"),
            },
            "--metrics-addr" => match iter.next() {
                Some(addr) => opts.metrics_addr = Some(addr.clone()),
                None => return fail("--metrics-addr needs a host:port"),
            },
            "--snapshot-secs" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(secs) => opts.snapshot_every_secs = secs,
                None => return fail("--snapshot-secs needs an integer"),
            },
            "--max-wall-secs" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(secs) => opts.max_wall_secs = Some(secs),
                None => return fail("--max-wall-secs needs an integer"),
            },
            "--scrape-once" => opts.scrape_on_exit = true,
            other => return fail(&format!("unknown serve option {other:?}")),
        }
    }
    common.apply_engine(&mut spec);
    if common.json {
        opts.snapshot_every_secs = 0;
    }

    let runner = match ScenarioRunner::new(spec) {
        Ok(runner) => runner,
        Err(e) => return fail(&e.to_string()),
    };
    if !common.json {
        eprintln!(
            "serving scenario {:?} (seed {}) ...",
            runner.spec().name, runner.spec().seed
        );
    }
    match runner.serve(&opts) {
        Ok(outcome) => {
            if common.json {
                println!(
                    "{{\"wall_secs\":{:.3},\"sim_mins\":{},\"ops_handled\":{},\
                     \"ops_per_sim_day\":{:.1},\"report\":{}}}",
                    outcome.wall_secs,
                    outcome.sim_mins,
                    outcome.ops_handled,
                    outcome.ops_per_sim_day,
                    outcome.report.render_json()
                );
            } else {
                println!(
                    "served {} sim-min in {:.1}s wall: {} arrivals handled \
                     ({:.0} ops per simulated day)",
                    outcome.sim_mins,
                    outcome.wall_secs,
                    outcome.ops_handled,
                    outcome.ops_per_sim_day
                );
                print!("{}", outcome.report.render_text());
                if let Some(text) = &outcome.metrics_text {
                    println!("--- final metrics scrape ---");
                    print!("{text}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// Parses `a..b` / `a..=b` (inclusive either way) or a single seed.
fn parse_seed_range(text: &str) -> Option<(u64, u64)> {
    if let Some((lo, hi)) = text.split_once("..") {
        let hi = hi.strip_prefix('=').unwrap_or(hi);
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    } else {
        let seed = text.trim().parse().ok()?;
        Some((seed, seed))
    }
}

fn sweep(which: &str, options: &[String]) -> ExitCode {
    let mut spec = match resolve(which) {
        Ok(spec) => spec,
        Err(message) => return fail(&message),
    };

    let mut common = Common::default();
    let mut seeds: Option<(u64, u64)> = None;
    let mut engines: Vec<SweepEngine> = Vec::new();
    let mut iter = options.iter();
    while let Some(option) = iter.next() {
        match common.consume(&mut spec, option, &mut iter) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(message) => return fail(&message),
        }
        match option.as_str() {
            "--seeds" => match iter.next().and_then(|v| parse_seed_range(v)) {
                Some(range) if range.0 <= range.1 => seeds = Some(range),
                _ => return fail("--seeds needs `a..b` with a <= b (or a single seed)"),
            },
            "--engines" => match iter.next() {
                Some(list) => {
                    for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                        let engine = match name {
                            "serial" => MaintenanceEngine::Serial,
                            "sharded" | "parallel" => MaintenanceEngine::Sharded {
                                shards: None,
                                threads: None,
                            },
                            other => {
                                return fail(&format!(
                                    "unknown engine {other:?} (serial, sharded)"
                                ))
                            }
                        };
                        engines.push(SweepEngine {
                            label: name.to_string(),
                            engine: Some(engine),
                        });
                    }
                }
                None => return fail("--engines needs a comma-separated list"),
            },
            other => return fail(&format!("unknown sweep option {other:?}")),
        }
    }
    common.apply_engine(&mut spec);
    let Some(seeds) = seeds else {
        return fail("sweep needs --seeds <a..b>");
    };

    let runner = match ScenarioRunner::new(spec) {
        Ok(runner) => runner,
        Err(e) => return fail(&e.to_string()),
    };
    if !common.json {
        eprintln!(
            "sweeping scenario {:?} over seeds {}..={} ...",
            runner.spec().name, seeds.0, seeds.1
        );
    }
    match runner.sweep(&SweepOptions { seeds, engines }) {
        Ok(summary) => {
            if common.json {
                println!("{}", summary.render_json());
            } else {
                print!("{}", summary.render_text());
            }
            if summary.mismatches.is_empty() {
                ExitCode::SUCCESS
            } else {
                // Engine divergence is a broken determinism contract.
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(&e.to_string()),
    }
}
