//! The `scenario` CLI: list, inspect, check, and run scenarios.
//!
//! ```text
//! scenario list                      # built-in scenarios
//! scenario show overnet-day          # print a built-in's spec text
//! scenario check my-experiment.scn   # parse + validate a spec file
//! scenario run overnet-day           # run a built-in
//! scenario run my-experiment.scn --seed 9 --engine serial --json
//! ```
//!
//! `run` and `check` resolve their argument as a built-in name first,
//! then as a file path. Run overrides: `--seed N`,
//! `--engine serial|sharded`, `--shards S` (0 = one per worker),
//! `--threads K` (0 = all cores), `--warmup-mins N` / `--duration-mins N`
//! (truncated CI smokes of big scenarios), `--json` for machine-readable
//! output.

use std::process::ExitCode;

use avmem_scenario::{builtin, parse_spec, EngineSpec, ScenarioRunner, ScenarioSpec};

fn usage() -> &'static str {
    "usage: scenario <command>\n\
     \n\
     commands:\n\
     \x20 list                        list built-in scenarios\n\
     \x20 show <name>                 print a built-in scenario's spec text\n\
     \x20 check <name|file>           parse and validate a built-in or spec file\n\
     \x20 run <name|file> [options]   run a scenario and print its report\n\
     \n\
     run options:\n\
     \x20 --seed <n>                  override the spec's seed\n\
     \x20 --engine serial|sharded     override the maintenance engine\n\
     \x20 --shards <s>                shard count for --engine sharded (0 = one per worker)\n\
     \x20 --threads <k>               worker threads for --engine sharded (0 = all cores)\n\
     \x20 --warmup-mins <n>           override the spec's warmup length\n\
     \x20 --duration-mins <n>         override the spec's measured duration\n\
     \x20 --json                      print the report as JSON\n"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str);
    match command {
        Some("list") | Some("--list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("show") => match args.get(1) {
            Some(name) => show(name),
            None => fail("show needs a scenario name"),
        },
        Some("check") => match args.get(1) {
            Some(which) => check(which),
            None => fail("check needs a scenario name or spec file path"),
        },
        Some("run") => match args.get(1) {
            Some(which) => run(which, &args[2..]),
            None => fail("run needs a scenario name or spec file"),
        },
        Some("--help") | Some("-h") | None => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown command {other:?}\n\n{}", usage())),
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("scenario: {message}");
    ExitCode::from(2)
}

fn list() {
    println!("built-in scenarios:");
    for name in builtin::builtin_names() {
        let blurb = builtin::builtin_blurb(name).unwrap_or("");
        println!("  {name:<16} {blurb}");
    }
    println!("\nrun one with: scenario run <name>");
}

fn show(name: &str) -> ExitCode {
    match builtin::builtin_source(name) {
        Some(source) => {
            print!("{source}");
            ExitCode::SUCCESS
        }
        None => fail(&format!(
            "no built-in scenario {name:?} (see `scenario list`)"
        )),
    }
}

fn check(which: &str) -> ExitCode {
    match resolve(which) {
        Ok(spec) => {
            println!(
                "{which}: ok — scenario {:?}, {} min of operations",
                spec.name, spec.duration_mins
            );
            ExitCode::SUCCESS
        }
        Err(message) => fail(&message),
    }
}

/// Resolves `which` as a built-in name first, then as a spec file path.
fn resolve(which: &str) -> Result<ScenarioSpec, String> {
    match builtin::builtin(which) {
        Some(spec) => {
            // Built-ins are validated by their own tests, but re-check
            // here so `check <name>` means what it says.
            spec.validate().map_err(|e| format!("{which}: {e}"))?;
            Ok(spec)
        }
        None => load_file(which).map_err(|message| {
            format!(
                "{which:?} is neither a built-in (see `scenario list`) nor a readable \
                 spec file: {message}"
            )
        }),
    }
}

fn load_file(path: &str) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let spec = parse_spec(&text).map_err(|e| format!("{path}: {e}"))?;
    spec.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(spec)
}

fn run(which: &str, options: &[String]) -> ExitCode {
    let mut spec = match resolve(which) {
        Ok(spec) => spec,
        Err(message) => return fail(&message),
    };

    let mut engine: Option<&str> = None;
    let mut shards: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut json = false;
    let mut iter = options.iter();
    while let Some(option) = iter.next() {
        match option.as_str() {
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(seed) => spec.seed = seed,
                None => return fail("--seed needs an integer"),
            },
            // "parallel" is the pre-sharding spelling, kept as an alias.
            "--engine" => match iter.next().map(String::as_str) {
                Some(name @ ("serial" | "sharded" | "parallel")) => engine = Some(name),
                _ => return fail("--engine needs `serial` or `sharded`"),
            },
            "--shards" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(s) => shards = Some(s),
                None => return fail("--shards needs an integer"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(k) => threads = Some(k),
                None => return fail("--threads needs an integer"),
            },
            "--warmup-mins" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(mins) => spec.warmup_mins = mins,
                None => return fail("--warmup-mins needs an integer"),
            },
            "--duration-mins" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(mins) => spec.duration_mins = mins,
                None => return fail("--duration-mins needs an integer"),
            },
            "--json" => json = true,
            other => return fail(&format!("unknown run option {other:?}")),
        }
    }
    match engine {
        Some("serial") => spec.maintenance.engine = EngineSpec::Serial,
        Some("sharded" | "parallel") => {
            spec.maintenance.engine = EngineSpec::Sharded {
                shards: shards.unwrap_or(0),
                threads: threads.unwrap_or(0),
            }
        }
        _ => {
            // Bare --shards/--threads refine an already-sharded spec.
            if let EngineSpec::Sharded { shards: s, threads: t } = spec.maintenance.engine {
                if shards.is_some() || threads.is_some() {
                    spec.maintenance.engine = EngineSpec::Sharded {
                        shards: shards.unwrap_or(s),
                        threads: threads.unwrap_or(t),
                    };
                }
            }
        }
    }

    let runner = match ScenarioRunner::new(spec) {
        Ok(runner) => runner,
        Err(e) => return fail(&e.to_string()),
    };
    if !json {
        eprintln!(
            "running scenario {:?} (seed {}) ...",
            runner.spec().name, runner.spec().seed
        );
    }
    match runner.run() {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}
