//! The scenario runner: operation traffic interleaved with maintenance.
//!
//! [`ScenarioRunner`] turns a [`ScenarioSpec`] into a [`ScenarioReport`]:
//!
//! 1. the churn trace and harness are built from the spec;
//! 2. a **deterministic Poisson-like arrival schedule** is drawn — every
//!    operation's arrival offset, kind, target, and initiator pick come
//!    from counter-keyed RNG streams (`SplitMix64::keyed(&[seed, purpose,
//!    op_index])`), so the schedule is a pure function of the spec and
//!    seed, independent of maintenance engine, thread count, or drain
//!    order;
//! 3. the run advances the harness clock operation by operation with
//!    [`avmem::harness::AvmemSim::advance_to`] — event-driven maintenance
//!    cohorts execute *between* operations, so each operation observes
//!    the live, possibly-unconverged overlay exactly as a deployed
//!    initiator would (converged maintenance instead rebuilds on the
//!    spec's interval and lets the overlay go stale in between);
//! 4. anycasts/multicasts execute over a borrowed
//!    [`avmem::ops::OverlayWorld`] view with per-operation keyed RNG and
//!    latency streams, adversary arrivals probe receiver-side
//!    verification, and health samples snapshot the overlay.

use avmem::harness::{AvmemSim, MaintenanceEngine};
use avmem::ops::{run_anycast, run_multicast};
use avmem::AdmissionPolicy;
use avmem::AvailabilityTarget;
use avmem::SliverScope;
use avmem_sim::{LatencyModel, Network, SimDuration, SimTime};
use avmem_util::{NodeId, Rng, SplitMix64};

use crate::report::{
    AnycastStats, AttackStats, HealthSample, MulticastStats, ScenarioReport, DECILES,
    HOPS_BUCKETS,
};
use crate::spec::{BandSpec, MaintenanceModeSpec, ScenarioError, ScenarioSpec};

/// Purpose tags for the runner's counter-keyed streams. Core maintenance
/// uses small tags with `(seed, tag, node, epoch)` keys; the runner's
/// keys are `(seed, tag, op_index)` — distinct lengths and tag values
/// keep every stream decorrelated.
const STREAM_ARRIVAL: u64 = 0x5ce0_0001;
const STREAM_MIX: u64 = 0x5ce0_0002;
const STREAM_INITIATOR: u64 = 0x5ce0_0003;
const STREAM_OP: u64 = 0x5ce0_0004;
const STREAM_NET: u64 = 0x5ce0_0005;
const STREAM_PROBE: u64 = 0x5ce0_0006;

/// What one scheduled arrival does.
#[derive(Debug, Clone, Copy, PartialEq)]
enum OpKind {
    Anycast { target: AvailabilityTarget },
    Multicast { target: AvailabilityTarget },
    FloodProbe,
}

/// One entry of the precomputed run timeline.
#[derive(Debug, Clone, Copy)]
struct TimelineEvent {
    at: SimTime,
    /// Tie order at equal instants: rebuilds first, then health samples,
    /// then operations in index order.
    order: (u8, u64),
    what: EventKind,
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    Rebuild,
    Health,
    Op { index: u64, kind: OpKind },
}

/// Runs scenarios; see the module docs for the execution model.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    spec: ScenarioSpec,
    engine_override: Option<MaintenanceEngine>,
}

impl ScenarioRunner {
    /// Creates a runner after validating the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] when the spec fails
    /// [`ScenarioSpec::validate`].
    pub fn new(spec: ScenarioSpec) -> Result<Self, ScenarioError> {
        spec.validate()?;
        Ok(ScenarioRunner {
            spec,
            engine_override: None,
        })
    }

    /// Overrides the maintenance engine (the determinism tests sweep
    /// engines and thread counts over one spec this way).
    pub fn with_engine(mut self, engine: MaintenanceEngine) -> Self {
        self.engine_override = Some(engine);
        self
    }

    /// The validated spec this runner executes.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Executes the scenario and collects the report.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Trace`] / [`ScenarioError::Invalid`] from
    /// trace construction (file I/O, trace shorter than the run).
    pub fn run(&self) -> Result<ScenarioReport, ScenarioError> {
        let spec = &self.spec;
        let trace = spec.build_trace()?;
        let hosts = trace.num_nodes();
        let mut config = spec.sim_config();
        if let Some(engine) = self.engine_override {
            config.engine = engine;
        }
        let mut sim = AvmemSim::new(trace, config);

        let warm_end = SimTime::ZERO + SimDuration::from_mins(spec.warmup_mins);
        let end = warm_end + SimDuration::from_mins(spec.duration_mins);
        let timeline = self.build_timeline(warm_end, end);

        // Warm-up: maintenance only. Converged mode rebuilds here (and
        // then on the spec's interval via Rebuild events); event-driven
        // mode runs the protocols from cold.
        sim.warm_up(warm_end.saturating_since(SimTime::ZERO));

        let mut report = ScenarioReport {
            scenario: spec.name.clone(),
            seed: spec.seed,
            hosts,
            duration_mins: spec.duration_mins,
            anycast: AnycastStats::new(),
            multicast: MulticastStats::new(),
            attack: spec.adversary.map(|_| AttackStats::new()),
            health: Vec::new(),
            skipped_ops: 0,
            timings: avmem::PhaseTimings::default(),
            finalize: avmem::FinalizeStats::default(),
        };
        // Interval accumulators for the health series.
        let mut ops_since_last = 0u64;
        let mut attack_since_last = (0u64, 0u64);

        for event in timeline {
            match event.what {
                EventKind::Rebuild => {
                    // warm_up advances to the boundary and rebuilds there.
                    sim.warm_up(event.at.saturating_since(sim.now()));
                }
                EventKind::Health => {
                    sim.advance_to(event.at);
                    report.health.push(health_sample(
                        &sim,
                        event.at,
                        std::mem::take(&mut ops_since_last),
                        std::mem::take(&mut attack_since_last),
                    ));
                }
                EventKind::Op { index, kind } => {
                    sim.advance_to(event.at);
                    ops_since_last += 1;
                    self.fire_op(&mut sim, index, kind, &mut report, &mut attack_since_last);
                }
            }
        }
        sim.advance_to(end);
        report.health.push(health_sample(
            &sim,
            end,
            ops_since_last,
            attack_since_last,
        ));
        report.timings = sim.phase_timings();
        report.finalize = sim.finalize_stats();
        Ok(report)
    }

    /// Draws the full arrival schedule: a pure function of (spec, seed).
    fn build_timeline(&self, warm_end: SimTime, end: SimTime) -> Vec<TimelineEvent> {
        let spec = &self.spec;
        let mut events: Vec<TimelineEvent> = Vec::new();

        // Health samples on the interval lattice, excluding the run end
        // (the final sample is taken unconditionally after the loop).
        let health_step = SimDuration::from_mins(spec.health_every_mins);
        let mut t = warm_end;
        while t < end {
            events.push(TimelineEvent {
                at: t,
                order: (1, 0),
                what: EventKind::Health,
            });
            t += health_step;
        }

        // Converged-mode rebuild boundaries.
        if let MaintenanceModeSpec::Converged { rebuild_every_mins } = spec.maintenance.mode {
            let step = SimDuration::from_mins(rebuild_every_mins);
            let mut t = warm_end + step;
            while t < end {
                events.push(TimelineEvent {
                    at: t,
                    order: (0, 0),
                    what: EventKind::Rebuild,
                });
                t += step;
            }
        }

        // Poisson-like operation arrivals: exponential inter-arrival
        // gaps, each drawn from its own keyed stream.
        if spec.workload.ops_per_hour > 0.0 {
            let mean_gap_ms = 3_600_000.0 / spec.workload.ops_per_hour;
            let mut at_ms = warm_end.as_millis() as f64;
            let mut index = 0u64;
            loop {
                let mut gap_rng = SplitMix64::keyed(&[spec.seed, STREAM_ARRIVAL, index]);
                // u ∈ [0, 1) keeps ln(1 - u) finite.
                let gap = -(1.0 - gap_rng.next_f64()).ln() * mean_gap_ms;
                at_ms += gap.max(1.0);
                if at_ms >= end.as_millis() as f64 {
                    break;
                }
                let at = SimTime::from_millis(at_ms as u64);
                let kind = self.draw_kind(index);
                events.push(TimelineEvent {
                    at,
                    order: (2, index),
                    what: EventKind::Op { index, kind },
                });
                index += 1;
            }
        }

        events.sort_by_key(|e| (e.at, e.order));
        events
    }

    /// Draws one arrival's kind and target from its keyed mix stream.
    fn draw_kind(&self, index: u64) -> OpKind {
        let spec = &self.spec;
        let mut rng = SplitMix64::keyed(&[spec.seed, STREAM_MIX, index]);
        if let Some(adv) = &spec.adversary {
            if rng.chance(adv.flooder_fraction) {
                return OpKind::FloodProbe;
            }
        } else {
            // Keep stream alignment identical with and without an
            // adversary section so A/B spec comparisons share arrivals.
            let _ = rng.next_f64();
        }
        let anycast = rng.chance(spec.workload.anycast_fraction);
        let target = self.draw_target(&mut rng);
        if anycast {
            OpKind::Anycast { target }
        } else {
            OpKind::Multicast { target }
        }
    }

    /// Weighted pick from the target mix.
    fn draw_target<R: Rng>(&self, rng: &mut R) -> AvailabilityTarget {
        let targets = &self.spec.workload.targets;
        let total: f64 = targets.iter().map(|t| t.weight).sum();
        let mut roll = rng.next_f64() * total;
        for mix in targets {
            roll -= mix.weight;
            if roll <= 0.0 {
                return mix.target.to_target();
            }
        }
        targets.last().expect("validated non-empty").target.to_target()
    }

    /// Picks a uniformly random online node in `band` with the
    /// operation's keyed stream; `None` when no eligible node is online.
    ///
    /// One population pass collects the eligible set, then a single
    /// keyed draw indexes it — the same distribution (and the same draw)
    /// as a count-then-select pass at half the scanning cost.
    fn pick_initiator(
        &self,
        sim: &AvmemSim,
        index: u64,
        band: BandSpec,
        stream: u64,
    ) -> Option<NodeId> {
        let trace = sim.trace();
        let now = sim.now();
        let in_band = |i: usize| {
            // `Any` needs no availability lookup — at 10⁶ hosts the
            // per-candidate long-term-availability scan is the cost.
            if matches!(band, BandSpec::Any) {
                return true;
            }
            let av = trace.long_term_availability(i).value();
            match band {
                BandSpec::Low => av < 1.0 / 3.0,
                BandSpec::Mid => (1.0 / 3.0..2.0 / 3.0).contains(&av),
                BandSpec::High => av >= 2.0 / 3.0,
                BandSpec::Any => true,
            }
        };
        let eligible: Vec<u32> = (0..trace.num_nodes())
            .filter(|&i| trace.is_online(i, now) && in_band(i))
            .map(|i| i as u32)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let mut rng = SplitMix64::keyed(&[self.spec.seed, stream, index]);
        let pick = eligible[rng.index(eligible.len())];
        Some(NodeId::new(u64::from(pick)))
    }

    /// Executes one scheduled operation against the live overlay.
    fn fire_op(
        &self,
        sim: &mut AvmemSim,
        index: u64,
        kind: OpKind,
        report: &mut ScenarioReport,
        attack_since_last: &mut (u64, u64),
    ) {
        let spec = &self.spec;
        match kind {
            // Anycast and multicast share the exact same setup — one
            // initiator stream, one op-RNG stream, one latency stream —
            // so A/B spec comparisons stay paired; keep it hoisted.
            OpKind::Anycast { target } | OpKind::Multicast { target } => {
                let Some(initiator) =
                    self.pick_initiator(sim, index, spec.workload.initiators, STREAM_INITIATOR)
                else {
                    report.skipped_ops += 1;
                    return;
                };
                let mut rng = SplitMix64::keyed(&[spec.seed, STREAM_OP, index]);
                let mut net = Network::new(
                    LatencyModel::PAPER,
                    0.0,
                    SplitMix64::keyed(&[spec.seed, STREAM_NET, index]).next_u64(),
                );
                let world = sim.world();
                if matches!(kind, OpKind::Anycast { .. }) {
                    let outcome = run_anycast(
                        &world,
                        &mut net,
                        &mut rng,
                        initiator,
                        target,
                        spec.workload.anycast_config(),
                    );
                    let stats = &mut report.anycast;
                    stats.sent += 1;
                    stats.total_messages += u64::from(outcome.messages);
                    stats.total_latency_ms += outcome.latency.as_millis();
                    if outcome.is_delivered() {
                        stats.delivered += 1;
                        stats.total_hops += u64::from(outcome.hops);
                        stats.hops_histogram[(outcome.hops as usize).min(HOPS_BUCKETS - 1)] +=
                            1;
                        if outcome.delivered_in_range_truth {
                            stats.delivered_in_truth += 1;
                        }
                    }
                } else {
                    let outcome = run_multicast(
                        &world,
                        &mut net,
                        &mut rng,
                        initiator,
                        target,
                        spec.workload.multicast_config(),
                    );
                    let stats = &mut report.multicast;
                    stats.sent += 1;
                    stats.total_messages +=
                        u64::from(outcome.messages) + u64::from(outcome.anycast.messages);
                    if outcome.anycast.is_delivered() {
                        stats.entered += 1;
                    }
                    if let Some(reliability) = outcome.reliability(&world, target) {
                        stats.reliability_sum += reliability;
                        stats.reliability_count += 1;
                    }
                    if let Some(spam) = outcome.spam_ratio(&world, target) {
                        stats.spam_sum += spam;
                        stats.spam_count += 1;
                    }
                    let trace = sim.trace();
                    for &node in outcome.deliveries.keys() {
                        let av = trace.long_term_availability(node.raw() as usize).value();
                        let decile = ((av * DECILES as f64) as usize).min(DECILES - 1);
                        stats.deliveries_by_decile[decile] += 1;
                    }
                }
            }
            OpKind::FloodProbe => {
                let adv = spec.adversary.expect("probes only scheduled with an adversary");
                // The selfish sender is any online node — flooding pays
                // regardless of the attacker's own availability, which is
                // exactly why the acceptance series is bucketed by it.
                let Some(sender) = self.pick_initiator(sim, index, BandSpec::Any, STREAM_PROBE)
                else {
                    report.skipped_ops += 1;
                    return;
                };
                let mut rng = SplitMix64::keyed(&[spec.seed, STREAM_OP, index]);
                let policy = AdmissionPolicy::with_cushion(adv.cushion);
                let trace = sim.trace();
                let now = sim.now();
                let online: Vec<usize> = trace.online_at(now);
                let membership = sim.membership(sender);
                let stats = report.attack.as_mut().expect("attack stats exist");
                stats.attempts += 1;
                let decile = {
                    let av = trace.long_term_availability(sender.raw() as usize).value();
                    ((av * DECILES as f64) as usize).min(DECILES - 1)
                };
                // Probe up to `adv.probes` distinct online nodes; skip the
                // sender itself and its legitimate neighbors (a flood is
                // precisely traffic to NON-neighbors).
                let victims = rng.sample(
                    online
                        .iter()
                        .copied()
                        .filter(|&i| {
                            NodeId::new(i as u64) != sender
                                && !membership.contains(NodeId::new(i as u64))
                        }),
                    adv.probes as usize,
                );
                for victim in victims {
                    let accepted = policy.accepts(
                        sim.predicate(),
                        sim.oracle(),
                        sender,
                        NodeId::new(victim as u64),
                        now,
                    );
                    stats.probes += 1;
                    stats.by_decile[decile].0 += 1;
                    attack_since_last.0 += 1;
                    if accepted {
                        stats.accepted += 1;
                        stats.by_decile[decile].1 += 1;
                        attack_since_last.1 += 1;
                    }
                }
            }
        }
    }
}

/// Population size past which health sampling switches from overlay
/// snapshots to the streaming [`AvmemSim::health_stats`] path. A
/// snapshot clones every node's sliver lists; at 10⁵–10⁶ hosts that
/// transient dwarfs the sample itself, while the streaming path yields
/// the identical numbers (pinned by a harness test).
const STREAMING_HEALTH_HOSTS: usize = 100_000;

/// Snapshots the overlay's health at `at`.
fn health_sample(
    sim: &AvmemSim,
    at: SimTime,
    ops_since_last: u64,
    attack_since_last: (u64, u64),
) -> HealthSample {
    let (online, mean_degree, largest_component) =
        if sim.trace().num_nodes() >= STREAMING_HEALTH_HOSTS {
            let stats = sim.health_stats();
            (stats.online, stats.mean_degree, stats.largest_component)
        } else {
            let snapshot = sim.snapshot();
            (
                snapshot.online_count(),
                snapshot.mean_degree(),
                snapshot.largest_component_fraction(SliverScope::Both),
            )
        };
    HealthSample {
        at_mins: at.as_millis() / 60_000,
        online,
        mean_degree,
        largest_component,
        ops_since_last,
        attack_since_last,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::spec::{AdversarySpec, ChurnSpec, MaintenanceModeSpec};

    fn tiny_spec() -> ScenarioSpec {
        let mut spec = builtin::builtin("smoke").expect("smoke builtin");
        spec.churn = ChurnSpec::Overnet { hosts: 80, days: 1 };
        spec.warmup_mins = 60;
        spec.duration_mins = 60;
        spec.workload.ops_per_hour = 40.0;
        spec
    }

    #[test]
    fn run_produces_traffic_and_health() {
        let report = ScenarioRunner::new(tiny_spec()).unwrap().run().unwrap();
        assert!(report.anycast.sent + report.multicast.sent + report.skipped_ops > 0);
        // One sample per health interval plus the final one.
        assert!(report.health.len() >= 2, "health series too short");
        assert!(report.health.windows(2).all(|w| w[0].at_mins < w[1].at_mins));
    }

    #[test]
    fn same_spec_same_report() {
        let runner = ScenarioRunner::new(tiny_spec()).unwrap();
        assert_eq!(runner.run().unwrap(), runner.run().unwrap());
    }

    #[test]
    fn event_driven_interleaves_ops_with_maintenance() {
        let mut spec = tiny_spec();
        spec.maintenance.mode = MaintenanceModeSpec::EventDriven {
            protocol_secs: 60,
            refresh_mins: 20,
        };
        spec.warmup_mins = 120;
        let report = ScenarioRunner::new(spec).unwrap().run().unwrap();
        let fired = report.anycast.sent + report.multicast.sent;
        assert!(fired > 0, "no operations fired over the live overlay");
        // Live discovery must have built an overlay the ops could use.
        assert!(
            report.health.last().unwrap().mean_degree > 0.5,
            "event-driven maintenance built no overlay"
        );
        // And the run carries per-phase maintenance timings.
        assert!(report.timings.cohorts > 0, "no cohorts timed");
        let busy = report.timings.propose + report.timings.commit + report.timings.finalize;
        assert!(busy > std::time::Duration::ZERO, "phase clocks never ticked");
    }

    #[test]
    fn adversary_probes_are_counted() {
        let mut spec = tiny_spec();
        spec.adversary = Some(AdversarySpec {
            flooder_fraction: 0.5,
            cushion: 0.1,
            probes: 10,
        });
        let report = ScenarioRunner::new(spec).unwrap().run().unwrap();
        let attack = report.attack.expect("adversary configured");
        assert!(attack.attempts > 0, "no flood attempts fired");
        assert!(attack.probes > 0);
        assert!(attack.accepted <= attack.probes);
        let series: (u64, u64) = report
            .health
            .iter()
            .fold((0, 0), |acc, h| {
                (acc.0 + h.attack_since_last.0, acc.1 + h.attack_since_last.1)
            });
        assert_eq!(series.0, attack.probes, "series must partition the probes");
        assert_eq!(series.1, attack.accepted);
    }

    #[test]
    fn zero_rate_workload_fires_nothing() {
        let mut spec = tiny_spec();
        spec.workload.ops_per_hour = 0.0;
        let report = ScenarioRunner::new(spec).unwrap().run().unwrap();
        assert_eq!(report.anycast.sent, 0);
        assert_eq!(report.multicast.sent, 0);
        assert_eq!(report.skipped_ops, 0);
    }

    #[test]
    fn ops_land_inside_the_operation_window() {
        let spec = tiny_spec();
        let runner = ScenarioRunner::new(spec.clone()).unwrap();
        let warm_end = SimTime::ZERO + SimDuration::from_mins(spec.warmup_mins);
        let end = warm_end + SimDuration::from_mins(spec.duration_mins);
        let timeline = runner.build_timeline(warm_end, end);
        assert!(!timeline.is_empty());
        for event in &timeline {
            assert!(event.at >= warm_end && event.at < end);
        }
        // Sorted by (time, order).
        assert!(timeline
            .windows(2)
            .all(|w| (w[0].at, w[0].order) <= (w[1].at, w[1].order)));
    }
}
