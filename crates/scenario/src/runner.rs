//! The scenario runner: operation traffic interleaved with maintenance.
//!
//! [`ScenarioRunner`] turns a [`ScenarioSpec`] into a [`ScenarioReport`]:
//!
//! 1. the churn trace and harness are built from the spec;
//! 2. a **deterministic Poisson-like arrival schedule** is drawn — every
//!    operation's arrival offset, kind, target, and initiator pick come
//!    from counter-keyed RNG streams (`SplitMix64::keyed(&[seed, purpose,
//!    op_index])`), so the schedule is a pure function of the spec and
//!    seed, independent of maintenance engine, thread count, or drain
//!    order. The schedule is generated **lazily**: three monotonic
//!    sources (health lattice, converged-rebuild lattice, Poisson
//!    arrivals) are merged on the fly under the strict total order
//!    `(at, order)`, so a multi-day serve never materializes its full
//!    event list;
//! 3. the run advances the harness clock operation by operation with
//!    [`avmem::harness::AvmemSim::advance_to`] — event-driven maintenance
//!    cohorts execute *between* operations, so each operation observes
//!    the live, possibly-unconverged overlay exactly as a deployed
//!    initiator would (converged maintenance instead rebuilds on the
//!    spec's interval and lets the overlay go stale in between);
//! 4. anycasts/multicasts execute over a borrowed
//!    [`avmem::ops::OverlayWorld`] view with per-operation keyed RNG and
//!    latency streams, adversary arrivals probe receiver-side
//!    verification, and health samples snapshot the overlay — each
//!    health boundary also draws a fixed batch of estimator-accuracy
//!    samples (see [`EstimatorAccuracy`]).
//!
//! The single-shot [`ScenarioRunner::run`] is a thin loop over
//! [`RunSession`], the resumable step-at-a-time form that `scenario
//! serve` paces against wall-clock and instruments through a live
//! [`avmem_metrics::Registry`]. A session with metrics attached produces
//! a bit-identical report to one without: instrumentation only observes.

use std::sync::Arc;
use std::time::Instant;

use avmem::harness::{AvmemSim, MaintenanceEngine};
use avmem::ops::{run_anycast, run_multicast};
use avmem::AdmissionPolicy;
use avmem::AvailabilityTarget;
use avmem::SliverScope;
use avmem_avmon::AvailabilityOracle;
use avmem_metrics::{Counter, Gauge, Histogram, Registry};
use avmem_sim::{LatencyModel, Network, SimDuration, SimTime};
use avmem_trace::ChurnTrace;
use avmem_util::{NodeId, Rng, SplitMix64};

use crate::report::{
    AnycastStats, AttackStats, EstimatorAccuracy, HealthSample, MemoryStats, MulticastStats,
    ScenarioReport, DECILES, HOPS_BUCKETS,
};
use crate::spec::{BandSpec, MaintenanceModeSpec, ScenarioError, ScenarioSpec};

/// Purpose tags for the runner's counter-keyed streams. Core maintenance
/// uses small tags with `(seed, tag, node, epoch)` keys; the runner's
/// keys are `(seed, tag, op_index)` — distinct lengths and tag values
/// keep every stream decorrelated.
const STREAM_ARRIVAL: u64 = 0x5ce0_0001;
const STREAM_MIX: u64 = 0x5ce0_0002;
const STREAM_INITIATOR: u64 = 0x5ce0_0003;
const STREAM_OP: u64 = 0x5ce0_0004;
const STREAM_NET: u64 = 0x5ce0_0005;
const STREAM_PROBE: u64 = 0x5ce0_0006;
/// Estimator-accuracy sampling; keyed by health-sample index, not op.
const STREAM_MAE: u64 = 0x5ce0_0007;

/// Rejection-sampling tries before an initiator pick falls back to the
/// exact eligible scan. With fraction `p` of the population eligible,
/// the fallback fires with probability `(1-p)^64` — at Overnet's ~15%
/// online that is ~3·10⁻⁵, so the amortized pick cost is O(1) instead
/// of the O(N) population scan per operation.
const PICK_TRIES: u32 = 64;

/// What one scheduled arrival does.
#[derive(Debug, Clone, Copy, PartialEq)]
enum OpKind {
    Anycast { target: AvailabilityTarget },
    Multicast { target: AvailabilityTarget },
    FloodProbe,
}

/// One entry of the run timeline.
#[derive(Debug, Clone, Copy)]
struct TimelineEvent {
    at: SimTime,
    /// Tie order at equal instants: rebuilds first, then health samples,
    /// then operations in index order. Carried on the event so tests can
    /// pin the merge order; the execution loop only needs `what`.
    #[cfg_attr(not(test), allow(dead_code))]
    order: (u8, u64),
    what: EventKind,
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    Rebuild,
    Health,
    Op { index: u64 },
}

/// Merge key of a timeline event: instant plus the tie order.
type EventKey = (SimTime, (u8, u64));

/// Which of the merged timeline sources produced a candidate event.
#[derive(Debug, Clone, Copy)]
enum Source {
    Rebuild,
    Health,
    Arrival,
}

/// Lazy Poisson arrival source: exponential inter-arrival gaps, each
/// drawn from its own keyed stream. Bit-identical to eagerly drawing the
/// whole schedule up front — the accumulated `at_ms` float and the
/// per-index streams do not depend on when the draws happen.
#[derive(Debug, Clone)]
struct ArrivalGen {
    seed: u64,
    mean_gap_ms: f64,
    at_ms: f64,
    end_ms: f64,
    index: u64,
    pending: Option<SimTime>,
}

impl ArrivalGen {
    fn new(seed: u64, ops_per_hour: f64, warm_end: SimTime, end: SimTime) -> ArrivalGen {
        let mut arrivals = ArrivalGen {
            seed,
            mean_gap_ms: 0.0,
            at_ms: warm_end.as_millis() as f64,
            end_ms: end.as_millis() as f64,
            index: 0,
            pending: None,
        };
        if ops_per_hour > 0.0 {
            arrivals.mean_gap_ms = 3_600_000.0 / ops_per_hour;
            arrivals.draw();
        }
        arrivals
    }

    /// Draws the arrival instant for `self.index`.
    fn draw(&mut self) {
        let mut gap_rng = SplitMix64::keyed(&[self.seed, STREAM_ARRIVAL, self.index]);
        // u ∈ [0, 1) keeps ln(1 - u) finite.
        let gap = -(1.0 - gap_rng.next_f64()).ln() * self.mean_gap_ms;
        self.at_ms += gap.max(1.0);
        self.pending =
            (self.at_ms < self.end_ms).then(|| SimTime::from_millis(self.at_ms as u64));
    }

    fn peek(&self) -> Option<SimTime> {
        self.pending
    }

    fn next_index(&self) -> u64 {
        self.index
    }

    /// Consumes the pending arrival, returning its op index.
    fn pop(&mut self) -> u64 {
        debug_assert!(self.pending.is_some(), "pop without a pending arrival");
        let index = self.index;
        self.index += 1;
        self.draw();
        index
    }
}

/// The merged, lazily generated run timeline; see the module docs. Every
/// event key `(at, order)` is distinct across sources (the leading order
/// byte is the source), so the three-way min-merge is a strict total
/// order and yields exactly the sequence the old sort-the-whole-schedule
/// path produced.
#[derive(Debug, Clone)]
struct Timeline {
    end: SimTime,
    health_at: SimTime,
    health_step: SimDuration,
    rebuild_at: Option<SimTime>,
    rebuild_step: SimDuration,
    arrivals: ArrivalGen,
}

impl Timeline {
    fn new(spec: &ScenarioSpec, warm_end: SimTime, end: SimTime) -> Timeline {
        // Converged-mode rebuild boundaries; event-driven mode has none
        // (cohorts run inside `advance_to`).
        let (rebuild_at, rebuild_step) =
            if let MaintenanceModeSpec::Converged { rebuild_every_mins } = spec.maintenance.mode {
                let step = SimDuration::from_mins(rebuild_every_mins);
                let first = warm_end + step;
                ((first < end).then_some(first), step)
            } else {
                (None, SimDuration::from_mins(1))
            };
        Timeline {
            end,
            // Health samples on the interval lattice, excluding the run
            // end (the final sample is taken unconditionally by
            // `RunSession::finish`).
            health_at: warm_end,
            health_step: SimDuration::from_mins(spec.health_every_mins),
            rebuild_at,
            rebuild_step,
            arrivals: ArrivalGen::new(spec.seed, spec.workload.ops_per_hour, warm_end, end),
        }
    }

    /// The next event's key and source, without consuming it.
    fn peek(&self) -> Option<(EventKey, Source)> {
        let rebuild = self.rebuild_at.map(|t| ((t, (0u8, 0u64)), Source::Rebuild));
        let health = (self.health_at < self.end)
            .then_some(((self.health_at, (1u8, 0u64)), Source::Health));
        let arrival = self
            .arrivals
            .peek()
            .map(|t| ((t, (2u8, self.arrivals.next_index())), Source::Arrival));
        [rebuild, health, arrival]
            .into_iter()
            .flatten()
            .min_by_key(|&(key, _)| key)
    }

    fn next(&mut self) -> Option<TimelineEvent> {
        let ((at, order), source) = self.peek()?;
        let what = match source {
            Source::Rebuild => {
                let next = at + self.rebuild_step;
                self.rebuild_at = (next < self.end).then_some(next);
                EventKind::Rebuild
            }
            Source::Health => {
                self.health_at += self.health_step;
                EventKind::Health
            }
            Source::Arrival => EventKind::Op {
                index: self.arrivals.pop(),
            },
        };
        Some(TimelineEvent { at, order, what })
    }
}

/// Static per-band initiator lists (long-term availability is a property
/// of the trace, not of time), built once when the spec restricts
/// initiators to a band. `Any` needs no index — it rejection-samples the
/// whole population.
#[derive(Debug, Default)]
struct BandIndex {
    low: Vec<u32>,
    mid: Vec<u32>,
    high: Vec<u32>,
}

impl BandIndex {
    fn build(trace: &ChurnTrace) -> BandIndex {
        let mut bands = BandIndex::default();
        for i in 0..trace.num_nodes() {
            let av = trace.long_term_availability(i).value();
            let list = if av < 1.0 / 3.0 {
                &mut bands.low
            } else if av < 2.0 / 3.0 {
                &mut bands.mid
            } else {
                &mut bands.high
            };
            list.push(i as u32);
        }
        bands
    }

    fn list(&self, band: BandSpec) -> &[u32] {
        match band {
            BandSpec::Low => &self.low,
            BandSpec::Mid => &self.mid,
            BandSpec::High => &self.high,
            BandSpec::Any => &[],
        }
    }
}

/// Live-op instrumentation handles; present only after
/// [`RunSession::set_metrics`]. Observation only — none of these affect
/// the report.
#[derive(Debug)]
struct ScenarioInstruments {
    ops_anycast: Counter,
    ops_multicast: Counter,
    ops_probe: Counter,
    delivered_anycast: Counter,
    entered_multicast: Counter,
    skipped: Counter,
    dropped: Counter,
    latency_ms: Histogram,
    hops: Histogram,
    exec_us: Histogram,
    online: Gauge,
    mean_degree: Gauge,
    largest_component: Gauge,
    backlog: Gauge,
    mae: Gauge,
    heap_live: Gauge,
    heap_peak: Gauge,
    rss_peak: Gauge,
}

impl ScenarioInstruments {
    fn new(registry: &Registry, strategy: &str) -> ScenarioInstruments {
        let ops = |kind| registry.counter("avmem_ops_total", "Operations fired.", &[("kind", kind)]);
        let delivered = |kind| {
            registry.counter(
                "avmem_ops_delivered_total",
                "Anycasts delivered / multicasts that entered their range.",
                &[("kind", kind)],
            )
        };
        ScenarioInstruments {
            ops_anycast: ops("anycast"),
            ops_multicast: ops("multicast"),
            ops_probe: ops("probe"),
            delivered_anycast: delivered("anycast"),
            entered_multicast: delivered("multicast"),
            skipped: registry.counter(
                "avmem_ops_skipped_total",
                "Operations skipped: no eligible initiator online.",
                &[],
            ),
            dropped: registry.counter(
                "avmem_ops_dropped_total",
                "Operations dropped by serve-mode admission control.",
                &[],
            ),
            latency_ms: registry.histogram(
                "avmem_op_latency_ms",
                "End-to-end anycast latency (ms).",
                &[],
            ),
            hops: registry.histogram("avmem_op_hops", "Hops per delivered anycast.", &[]),
            exec_us: registry.histogram(
                "avmem_op_exec_us",
                "Wall-clock execution time per operation (µs).",
                &[],
            ),
            online: registry.gauge(
                "avmem_online",
                "Online population at the last health sample.",
                &[],
            ),
            mean_degree: registry.gauge(
                "avmem_mean_degree",
                "Mean overlay out-degree over online nodes.",
                &[],
            ),
            largest_component: registry.gauge(
                "avmem_largest_component",
                "Largest-connected-component fraction of the online overlay.",
                &[],
            ),
            backlog: registry.gauge(
                "avmem_maintenance_backlog",
                "Maintenance work items pending behind the clock.",
                &[],
            ),
            mae: registry.gauge(
                "avmem_estimator_mae",
                "Sampled estimator mean absolute error.",
                &[("strategy", strategy)],
            ),
            heap_live: registry.gauge(
                "avmem_heap_live_bytes",
                "Live heap bytes (counting allocator; 0 without heap-stats).",
                &[],
            ),
            heap_peak: registry.gauge(
                "avmem_heap_peak_bytes",
                "Peak heap bytes since process start (counting allocator).",
                &[],
            ),
            rss_peak: registry.gauge(
                "avmem_rss_peak_bytes",
                "Kernel peak resident set size (VmHWM; 0 off-Linux).",
                &[],
            ),
        }
    }

    fn observe_health(&self, sample: &HealthSample, backlog: usize, mae: f64) {
        self.online.set(sample.online as f64);
        self.mean_degree.set(sample.mean_degree);
        self.largest_component.set(sample.largest_component);
        self.backlog.set(backlog as f64);
        self.mae.set(mae);
        // Memory refreshes on the health cadence too: cheap (one atomic
        // read per heap gauge, one /proc read) and exactly the rhythm a
        // live dashboard samples at.
        let heap = avmem_util::heap::heap_stats();
        self.heap_live.set(heap.live_bytes as f64);
        self.heap_peak.set(heap.peak_bytes as f64);
        self.rss_peak
            .set(avmem_util::heap::peak_rss_bytes().unwrap_or(0) as f64);
    }
}

/// Runs scenarios; see the module docs for the execution model.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    pub(crate) spec: ScenarioSpec,
    pub(crate) engine_override: Option<MaintenanceEngine>,
}

impl ScenarioRunner {
    /// Creates a runner after validating the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] when the spec fails
    /// [`ScenarioSpec::validate`].
    pub fn new(spec: ScenarioSpec) -> Result<Self, ScenarioError> {
        spec.validate()?;
        Ok(ScenarioRunner {
            spec,
            engine_override: None,
        })
    }

    /// Overrides the maintenance engine (the determinism tests sweep
    /// engines and thread counts over one spec this way).
    pub fn with_engine(mut self, engine: MaintenanceEngine) -> Self {
        self.engine_override = Some(engine);
        self
    }

    /// The validated spec this runner executes.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Executes the scenario and collects the report.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Trace`] / [`ScenarioError::Invalid`] from
    /// trace construction (file I/O, trace shorter than the run).
    pub fn run(&self) -> Result<ScenarioReport, ScenarioError> {
        let mut session = self.session()?;
        while session.step().is_some() {}
        Ok(session.finish())
    }

    /// Builds the resumable step-at-a-time session this runner's `run`
    /// drives to completion. `scenario serve` uses the session directly
    /// to pace events against wall-clock and shed load under pressure.
    ///
    /// # Errors
    ///
    /// Same as [`ScenarioRunner::run`].
    pub fn session(&self) -> Result<RunSession, ScenarioError> {
        let spec = self.spec.clone();
        let trace = spec.build_trace()?;
        let hosts = trace.num_nodes();
        let mut config = spec.sim_config();
        if let Some(engine) = self.engine_override {
            config.engine = engine;
        }
        let mut sim = AvmemSim::new(trace, config);

        let warm_end = SimTime::ZERO + SimDuration::from_mins(spec.warmup_mins);
        let end = warm_end + SimDuration::from_mins(spec.duration_mins);
        let timeline = Timeline::new(&spec, warm_end, end);

        // Warm-up: maintenance only. Converged mode rebuilds here (and
        // then on the spec's interval via Rebuild events); event-driven
        // mode runs the protocols from cold.
        sim.warm_up(warm_end.saturating_since(SimTime::ZERO));

        let bands = if matches!(spec.workload.initiators, BandSpec::Any) {
            BandIndex::default()
        } else {
            BandIndex::build(sim.trace())
        };
        let report = ScenarioReport {
            scenario: spec.name.clone(),
            seed: spec.seed,
            hosts,
            duration_mins: spec.duration_mins,
            anycast: AnycastStats::new(),
            multicast: MulticastStats::new(),
            attack: spec.adversary.map(|_| AttackStats::new()),
            health: Vec::new(),
            skipped_ops: 0,
            admission_drops: 0,
            estimator: EstimatorAccuracy {
                strategy: sim.oracle().strategy_label().to_string(),
                ..EstimatorAccuracy::default()
            },
            timings: avmem::PhaseTimings::default(),
            finalize: avmem::FinalizeStats::default(),
            memory: MemoryStats::default(),
        };
        Ok(RunSession {
            spec,
            sim,
            timeline,
            end,
            report,
            ops_since_last: 0,
            attack_since_last: (0, 0),
            health_index: 0,
            bands,
            pick_scratch: Vec::new(),
            instruments: None,
        })
    }
}

/// One in-flight scenario execution, advanced one timeline event at a
/// time. Stepping to exhaustion and finishing is exactly
/// [`ScenarioRunner::run`]; the serve loop interleaves [`RunSession::step`]
/// with wall-clock pacing and may shed operations with
/// [`RunSession::drop_next_op`] when behind budget.
#[derive(Debug)]
pub struct RunSession {
    spec: ScenarioSpec,
    sim: AvmemSim,
    timeline: Timeline,
    end: SimTime,
    report: ScenarioReport,
    ops_since_last: u64,
    attack_since_last: (u64, u64),
    health_index: u64,
    bands: BandIndex,
    /// Rejection-sampling fallback scratch for [`RunSession::pick_initiator`],
    /// reused across operations so the rare exact scan never reallocates.
    pick_scratch: Vec<u32>,
    instruments: Option<ScenarioInstruments>,
}

impl RunSession {
    /// Attaches a metrics registry: harness phase spans, AVMON slot
    /// costs, and per-operation counters/latency histograms all land in
    /// `registry` from here on. Observation only — the report is
    /// bit-identical with or without metrics attached.
    pub fn set_metrics(&mut self, registry: &Arc<Registry>) {
        self.sim.set_metrics(registry);
        self.instruments = Some(ScenarioInstruments::new(
            registry,
            self.sim.oracle().strategy_label(),
        ));
    }

    /// Simulated instant of the next pending event, `None` once the
    /// timeline is exhausted.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.timeline.peek().map(|((at, _), _)| at)
    }

    /// Whether the next pending event is an operation (the only event
    /// class serve-mode admission control may shed — maintenance and
    /// health samples are never dropped).
    pub fn next_is_op(&self) -> bool {
        matches!(self.timeline.peek(), Some((_, Source::Arrival)))
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// End of the operation window.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// The underlying harness (read-only; serve heartbeats export its
    /// cache/backlog statistics).
    pub fn sim(&self) -> &AvmemSim {
        &self.sim
    }

    /// The report accumulated so far (final totals come from
    /// [`RunSession::finish`]).
    pub fn report(&self) -> &ScenarioReport {
        &self.report
    }

    /// Executes the next timeline event; returns its simulated instant,
    /// or `None` when the timeline is exhausted.
    pub fn step(&mut self) -> Option<SimTime> {
        let event = self.timeline.next()?;
        match event.what {
            EventKind::Rebuild => {
                // warm_up advances to the boundary and rebuilds there.
                self.sim.warm_up(event.at.saturating_since(self.sim.now()));
            }
            EventKind::Health => {
                self.sim.advance_to(event.at);
                self.sample_estimator();
                let sample = health_sample(
                    &self.sim,
                    event.at,
                    std::mem::take(&mut self.ops_since_last),
                    std::mem::take(&mut self.attack_since_last),
                );
                if let Some(ins) = &self.instruments {
                    ins.observe_health(
                        &sample,
                        self.sim.pending_maintenance(),
                        self.report.estimator.mae(),
                    );
                }
                self.report.health.push(sample);
            }
            EventKind::Op { index } => {
                self.sim.advance_to(event.at);
                self.ops_since_last += 1;
                let kind = draw_kind(&self.spec, index);
                let t0 = self.instruments.is_some().then(Instant::now);
                self.fire_op(index, kind);
                if let (Some(ins), Some(t0)) = (&self.instruments, t0) {
                    ins.exec_us.record(t0.elapsed().as_micros() as u64);
                }
            }
        }
        Some(event.at)
    }

    /// Sheds the next pending event, which must be an operation (checked
    /// by the caller via [`RunSession::next_is_op`]): the clock still
    /// advances to the arrival instant — maintenance owed by then runs —
    /// but the operation itself is not fired. Returns the arrival
    /// instant.
    pub fn drop_next_op(&mut self) -> Option<SimTime> {
        debug_assert!(self.next_is_op(), "only operations may be dropped");
        let event = self.timeline.next()?;
        self.sim.advance_to(event.at);
        self.report.admission_drops += 1;
        if let Some(ins) = &self.instruments {
            ins.dropped.inc();
        }
        Some(event.at)
    }

    /// Takes the final health sample at the end of the operation window
    /// and seals the report.
    pub fn finish(self) -> ScenarioReport {
        let end = self.end;
        self.finish_at(end)
    }

    /// Like [`RunSession::finish`] but sealing at `at` (clamped into
    /// `[now, end]`) — used by wall-clock-bounded serve runs that stop
    /// before the spec's operation window closes.
    pub fn finish_at(mut self, at: SimTime) -> ScenarioReport {
        let at = at.min(self.end).max(self.sim.now());
        self.sim.advance_to(at);
        self.sample_estimator();
        let sample = health_sample(&self.sim, at, self.ops_since_last, self.attack_since_last);
        if let Some(ins) = &self.instruments {
            ins.observe_health(
                &sample,
                self.sim.pending_maintenance(),
                self.report.estimator.mae(),
            );
        }
        self.report.health.push(sample);
        self.report.timings = self.sim.phase_timings();
        self.report.finalize = self.sim.finalize_stats();
        self.report.memory = observe_memory();
        self.report
    }

    /// Draws one batch of estimator-accuracy samples from the dedicated
    /// keyed stream; see [`EstimatorAccuracy`].
    fn sample_estimator(&mut self) {
        let mut rng = SplitMix64::keyed(&[self.spec.seed, STREAM_MAE, self.health_index]);
        self.health_index += 1;
        let trace = self.sim.trace();
        let oracle = self.sim.oracle();
        let now = self.sim.now();
        let n = trace.num_nodes();
        let accuracy = &mut self.report.estimator;
        for _ in 0..self.spec.report.estimator_samples {
            let querier = rng.index(n);
            let target = rng.index(n);
            accuracy.drawn += 1;
            if let Some(estimate) =
                oracle.estimate(NodeId::new(querier as u64), NodeId::new(target as u64), now)
            {
                let truth = trace.long_term_availability(target).value();
                accuracy.abs_error_sum += (estimate.value() - truth).abs();
                accuracy.answered += 1;
            }
        }
    }

    /// Picks a uniformly random online node in `band` with the
    /// operation's keyed stream; `None` when no eligible node is online.
    ///
    /// Rejection sampling: up to [`PICK_TRIES`] keyed draws over the
    /// population (or the static band list), accepting the first online
    /// candidate. On exhaustion it falls back to the exact eligible scan,
    /// continuing the same stream — the pick stays a pure function of
    /// `(spec, seed, op index, overlay state)` either way. The fallback
    /// scan collects into `pick_scratch`, reused across operations so
    /// thin-population runs never reallocate per pick.
    fn pick_initiator(&mut self, index: u64, band: BandSpec, stream: u64) -> Option<NodeId> {
        let trace = self.sim.trace();
        let now = self.sim.now();
        let mut rng = SplitMix64::keyed(&[self.spec.seed, stream, index]);
        let eligible = &mut self.pick_scratch;
        if matches!(band, BandSpec::Any) {
            let n = trace.num_nodes();
            for _ in 0..PICK_TRIES {
                let i = rng.index(n);
                if trace.is_online(i, now) {
                    return Some(NodeId::new(i as u64));
                }
            }
            eligible.clear();
            eligible.extend((0..n).filter(|&i| trace.is_online(i, now)).map(|i| i as u32));
            return pick_from(eligible, &mut rng);
        }
        let list = self.bands.list(band);
        if list.is_empty() {
            return None;
        }
        for _ in 0..PICK_TRIES {
            let i = list[rng.index(list.len())];
            if trace.is_online(i as usize, now) {
                return Some(NodeId::new(u64::from(i)));
            }
        }
        eligible.clear();
        eligible.extend(list.iter().copied().filter(|&i| trace.is_online(i as usize, now)));
        pick_from(eligible, &mut rng)
    }

    /// Executes one scheduled operation against the live overlay.
    fn fire_op(&mut self, index: u64, kind: OpKind) {
        match kind {
            // Anycast and multicast share the exact same setup — one
            // initiator stream, one op-RNG stream, one latency stream —
            // so A/B spec comparisons stay paired; keep it hoisted.
            OpKind::Anycast { target } | OpKind::Multicast { target } => {
                let Some(initiator) =
                    self.pick_initiator(index, self.spec.workload.initiators, STREAM_INITIATOR)
                else {
                    self.report.skipped_ops += 1;
                    if let Some(ins) = &self.instruments {
                        ins.skipped.inc();
                    }
                    return;
                };
                let spec = &self.spec;
                let mut rng = SplitMix64::keyed(&[spec.seed, STREAM_OP, index]);
                let mut net = Network::new(
                    LatencyModel::PAPER,
                    0.0,
                    SplitMix64::keyed(&[spec.seed, STREAM_NET, index]).next_u64(),
                );
                let world = self.sim.world();
                if matches!(kind, OpKind::Anycast { .. }) {
                    let outcome = run_anycast(
                        &world,
                        &mut net,
                        &mut rng,
                        initiator,
                        target,
                        spec.workload.anycast_config(),
                    );
                    let stats = &mut self.report.anycast;
                    stats.sent += 1;
                    stats.total_messages += u64::from(outcome.messages);
                    stats.total_latency_ms += outcome.latency.as_millis();
                    if outcome.is_delivered() {
                        stats.delivered += 1;
                        stats.total_hops += u64::from(outcome.hops);
                        stats.hops_histogram[(outcome.hops as usize).min(HOPS_BUCKETS - 1)] +=
                            1;
                        if outcome.delivered_in_range_truth {
                            stats.delivered_in_truth += 1;
                        }
                    }
                    if let Some(ins) = &self.instruments {
                        ins.ops_anycast.inc();
                        ins.latency_ms.record(outcome.latency.as_millis());
                        if outcome.is_delivered() {
                            ins.delivered_anycast.inc();
                            ins.hops.record(u64::from(outcome.hops));
                        }
                    }
                } else {
                    let outcome = run_multicast(
                        &world,
                        &mut net,
                        &mut rng,
                        initiator,
                        target,
                        spec.workload.multicast_config(),
                    );
                    let stats = &mut self.report.multicast;
                    stats.sent += 1;
                    stats.total_messages +=
                        u64::from(outcome.messages) + u64::from(outcome.anycast.messages);
                    if outcome.anycast.is_delivered() {
                        stats.entered += 1;
                    }
                    if let Some(reliability) = outcome.reliability(&world, target) {
                        stats.reliability_sum += reliability;
                        stats.reliability_count += 1;
                    }
                    if let Some(spam) = outcome.spam_ratio(&world, target) {
                        stats.spam_sum += spam;
                        stats.spam_count += 1;
                    }
                    let trace = self.sim.trace();
                    for &node in outcome.deliveries.keys() {
                        let av = trace.long_term_availability(node.raw() as usize).value();
                        let decile = ((av * DECILES as f64) as usize).min(DECILES - 1);
                        stats.deliveries_by_decile[decile] += 1;
                    }
                    if let Some(ins) = &self.instruments {
                        ins.ops_multicast.inc();
                        if outcome.anycast.is_delivered() {
                            ins.entered_multicast.inc();
                        }
                    }
                }
            }
            OpKind::FloodProbe => {
                let adv = self
                    .spec
                    .adversary
                    .expect("probes only scheduled with an adversary");
                // The selfish sender is any online node — flooding pays
                // regardless of the attacker's own availability, which is
                // exactly why the acceptance series is bucketed by it.
                let Some(sender) = self.pick_initiator(index, BandSpec::Any, STREAM_PROBE)
                else {
                    self.report.skipped_ops += 1;
                    if let Some(ins) = &self.instruments {
                        ins.skipped.inc();
                    }
                    return;
                };
                if let Some(ins) = &self.instruments {
                    ins.ops_probe.inc();
                }
                let mut rng = SplitMix64::keyed(&[self.spec.seed, STREAM_OP, index]);
                let policy = AdmissionPolicy::with_cushion(adv.cushion);
                let trace = self.sim.trace();
                let now = self.sim.now();
                let online: Vec<usize> = trace.online_at(now);
                let membership = self.sim.membership(sender);
                let stats = self.report.attack.as_mut().expect("attack stats exist");
                stats.attempts += 1;
                let decile = {
                    let av = trace.long_term_availability(sender.raw() as usize).value();
                    ((av * DECILES as f64) as usize).min(DECILES - 1)
                };
                // Probe up to `adv.probes` distinct online nodes; skip the
                // sender itself and its legitimate neighbors (a flood is
                // precisely traffic to NON-neighbors).
                let victims = rng.sample(
                    online
                        .iter()
                        .copied()
                        .filter(|&i| {
                            NodeId::new(i as u64) != sender
                                && !membership.contains(NodeId::new(i as u64))
                        }),
                    adv.probes as usize,
                );
                for victim in victims {
                    let accepted = policy.accepts(
                        self.sim.predicate(),
                        self.sim.oracle(),
                        sender,
                        NodeId::new(victim as u64),
                        now,
                    );
                    stats.probes += 1;
                    stats.by_decile[decile].0 += 1;
                    self.attack_since_last.0 += 1;
                    if accepted {
                        stats.accepted += 1;
                        stats.by_decile[decile].1 += 1;
                        self.attack_since_last.1 += 1;
                    }
                }
            }
        }
    }
}

/// Draws one arrival's kind and target from its keyed mix stream.
fn draw_kind(spec: &ScenarioSpec, index: u64) -> OpKind {
    let mut rng = SplitMix64::keyed(&[spec.seed, STREAM_MIX, index]);
    if let Some(adv) = &spec.adversary {
        if rng.chance(adv.flooder_fraction) {
            return OpKind::FloodProbe;
        }
    } else {
        // Keep stream alignment identical with and without an
        // adversary section so A/B spec comparisons share arrivals.
        let _ = rng.next_f64();
    }
    let anycast = rng.chance(spec.workload.anycast_fraction);
    let target = draw_target(spec, &mut rng);
    if anycast {
        OpKind::Anycast { target }
    } else {
        OpKind::Multicast { target }
    }
}

/// Weighted pick from the target mix.
fn draw_target<R: Rng>(spec: &ScenarioSpec, rng: &mut R) -> AvailabilityTarget {
    let targets = &spec.workload.targets;
    let total: f64 = targets.iter().map(|t| t.weight).sum();
    let mut roll = rng.next_f64() * total;
    for mix in targets {
        roll -= mix.weight;
        if roll <= 0.0 {
            return mix.target.to_target();
        }
    }
    targets.last().expect("validated non-empty").target.to_target()
}

/// Uniform keyed draw from an eligible list (the rejection-sampling
/// fallback); `None` when nothing is eligible.
fn pick_from<R: Rng>(eligible: &[u32], rng: &mut R) -> Option<NodeId> {
    if eligible.is_empty() {
        None
    } else {
        Some(NodeId::new(u64::from(eligible[rng.index(eligible.len())])))
    }
}

/// Snapshots process memory for the sealed report: kernel peak RSS when
/// the platform exposes it, counting-allocator figures when the
/// `heap-stats` feature installed the tracker. Environment observations
/// only — [`ScenarioReport`] equality ignores them, like timings.
fn observe_memory() -> MemoryStats {
    let heap = avmem_util::heap::heap_tracking_installed()
        .then(avmem_util::heap::heap_stats);
    MemoryStats {
        peak_rss_bytes: avmem_util::heap::peak_rss_bytes(),
        heap_live_bytes: heap.map(|h| h.live_bytes),
        heap_peak_bytes: heap.map(|h| h.peak_bytes),
        heap_alloc_calls: heap.map(|h| h.alloc_calls),
    }
}

/// Population size past which health sampling switches from overlay
/// snapshots to the streaming [`AvmemSim::health_stats`] path. A
/// snapshot clones every node's sliver lists; at 10⁵–10⁶ hosts that
/// transient dwarfs the sample itself, while the streaming path yields
/// the identical numbers (pinned by a harness test).
const STREAMING_HEALTH_HOSTS: usize = 100_000;

/// Snapshots the overlay's health at `at`.
fn health_sample(
    sim: &AvmemSim,
    at: SimTime,
    ops_since_last: u64,
    attack_since_last: (u64, u64),
) -> HealthSample {
    let (online, mean_degree, largest_component) =
        if sim.trace().num_nodes() >= STREAMING_HEALTH_HOSTS {
            let stats = sim.health_stats();
            (stats.online, stats.mean_degree, stats.largest_component)
        } else {
            let snapshot = sim.snapshot();
            (
                snapshot.online_count(),
                snapshot.mean_degree(),
                snapshot.largest_component_fraction(SliverScope::Both),
            )
        };
    HealthSample {
        at_mins: at.as_millis() / 60_000,
        online,
        mean_degree,
        largest_component,
        ops_since_last,
        attack_since_last,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::spec::{AdversarySpec, ChurnSpec, MaintenanceModeSpec};

    fn tiny_spec() -> ScenarioSpec {
        let mut spec = builtin::builtin("smoke").expect("smoke builtin");
        spec.churn = ChurnSpec::Overnet { hosts: 80, days: 1 };
        spec.warmup_mins = 60;
        spec.duration_mins = 60;
        spec.workload.ops_per_hour = 40.0;
        spec
    }

    #[test]
    fn run_produces_traffic_and_health() {
        let report = ScenarioRunner::new(tiny_spec()).unwrap().run().unwrap();
        assert!(report.anycast.sent + report.multicast.sent + report.skipped_ops > 0);
        // One sample per health interval plus the final one.
        assert!(report.health.len() >= 2, "health series too short");
        assert!(report.health.windows(2).all(|w| w[0].at_mins < w[1].at_mins));
        // Estimator accuracy sampled at every health boundary, at the
        // default `[report] estimator_samples` budget.
        assert_eq!(
            report.estimator.drawn,
            report.health.len() as u64
                * crate::spec::ReportSpec::default().estimator_samples
        );
        assert_eq!(report.estimator.strategy, "exact");
        // The exact oracle answers everything with zero error.
        assert_eq!(report.estimator.answered, report.estimator.drawn);
        assert_eq!(report.estimator.mae(), 0.0);
        assert_eq!(report.admission_drops, 0);
    }

    #[test]
    fn same_spec_same_report() {
        let runner = ScenarioRunner::new(tiny_spec()).unwrap();
        assert_eq!(runner.run().unwrap(), runner.run().unwrap());
    }

    #[test]
    fn estimator_sampling_budget_is_a_spec_knob() {
        let base = ScenarioRunner::new(tiny_spec()).unwrap().run().unwrap();
        let mut spec = tiny_spec();
        spec.report.estimator_samples = 32;
        let trimmed = ScenarioRunner::new(spec).unwrap().run().unwrap();
        assert_eq!(trimmed.estimator.drawn, trimmed.health.len() as u64 * 32);
        // The budget shapes what the report measures, never the run.
        assert_eq!(base.health, trimmed.health);
        assert_eq!(base.anycast, trimmed.anycast);
        assert_eq!(base.multicast, trimmed.multicast);
    }

    #[test]
    fn sealed_reports_carry_memory_observations() {
        let report = ScenarioRunner::new(tiny_spec()).unwrap().run().unwrap();
        if cfg!(target_os = "linux") {
            assert!(report.memory.peak_rss_bytes.unwrap_or(0) > 0);
        }
        if avmem_util::heap::heap_tracking_installed() {
            assert!(report.memory.heap_peak_bytes.unwrap_or(0) > 0);
            assert!(report.memory.heap_alloc_calls.unwrap_or(0) > 0);
        }
    }

    #[test]
    fn stepped_session_with_metrics_matches_run() {
        let runner = ScenarioRunner::new(tiny_spec()).unwrap();
        let baseline = runner.run().unwrap();
        let registry = Arc::new(Registry::new());
        let mut session = runner.session().unwrap();
        session.set_metrics(&registry);
        while session.step().is_some() {}
        let instrumented = session.finish();
        assert_eq!(baseline, instrumented, "metrics must only observe");
        // And the registry actually saw the traffic.
        let fired = baseline.anycast.sent + baseline.multicast.sent;
        let text = registry.render_text();
        assert!(
            text.contains("avmem_ops_total{kind=\"anycast\"}"),
            "missing op counters: {text}"
        );
        assert!(fired > 0);
    }

    #[test]
    fn event_driven_interleaves_ops_with_maintenance() {
        let mut spec = tiny_spec();
        spec.maintenance.mode = MaintenanceModeSpec::EventDriven {
            protocol_secs: 60,
            refresh_mins: 20,
        };
        spec.warmup_mins = 120;
        let report = ScenarioRunner::new(spec).unwrap().run().unwrap();
        let fired = report.anycast.sent + report.multicast.sent;
        assert!(fired > 0, "no operations fired over the live overlay");
        // Live discovery must have built an overlay the ops could use.
        assert!(
            report.health.last().unwrap().mean_degree > 0.5,
            "event-driven maintenance built no overlay"
        );
        // And the run carries per-phase maintenance timings.
        assert!(report.timings.cohorts > 0, "no cohorts timed");
        let busy = report.timings.propose + report.timings.commit + report.timings.finalize;
        assert!(busy > std::time::Duration::ZERO, "phase clocks never ticked");
    }

    #[test]
    fn adversary_probes_are_counted() {
        let mut spec = tiny_spec();
        spec.adversary = Some(AdversarySpec {
            flooder_fraction: 0.5,
            cushion: 0.1,
            probes: 10,
        });
        let report = ScenarioRunner::new(spec).unwrap().run().unwrap();
        let attack = report.attack.expect("adversary configured");
        assert!(attack.attempts > 0, "no flood attempts fired");
        assert!(attack.probes > 0);
        assert!(attack.accepted <= attack.probes);
        let series: (u64, u64) = report
            .health
            .iter()
            .fold((0, 0), |acc, h| {
                (acc.0 + h.attack_since_last.0, acc.1 + h.attack_since_last.1)
            });
        assert_eq!(series.0, attack.probes, "series must partition the probes");
        assert_eq!(series.1, attack.accepted);
    }

    #[test]
    fn zero_rate_workload_fires_nothing() {
        let mut spec = tiny_spec();
        spec.workload.ops_per_hour = 0.0;
        let report = ScenarioRunner::new(spec).unwrap().run().unwrap();
        assert_eq!(report.anycast.sent, 0);
        assert_eq!(report.multicast.sent, 0);
        assert_eq!(report.skipped_ops, 0);
    }

    #[test]
    fn banded_initiators_come_from_the_band() {
        let mut spec = tiny_spec();
        spec.workload.initiators = BandSpec::High;
        let report = ScenarioRunner::new(spec).unwrap().run().unwrap();
        // High-band initiators exist in the Overnet trace, so traffic
        // still flows (possibly with skips when the band is offline).
        assert!(report.anycast.sent + report.multicast.sent + report.skipped_ops > 0);
    }

    #[test]
    fn ops_land_inside_the_operation_window() {
        let spec = tiny_spec();
        let warm_end = SimTime::ZERO + SimDuration::from_mins(spec.warmup_mins);
        let end = warm_end + SimDuration::from_mins(spec.duration_mins);
        let mut timeline = Timeline::new(&spec, warm_end, end);
        let mut events = Vec::new();
        while let Some(event) = timeline.next() {
            events.push(event);
        }
        assert!(!events.is_empty());
        for event in &events {
            assert!(event.at >= warm_end && event.at < end);
        }
        // The lazy merge yields a strictly increasing (time, order) key.
        assert!(events
            .windows(2)
            .all(|w| (w[0].at, w[0].order) < (w[1].at, w[1].order)));
    }

    #[test]
    fn dropping_ops_counts_and_never_fires_them() {
        let runner = ScenarioRunner::new(tiny_spec()).unwrap();
        let mut session = runner.session().unwrap();
        let mut dropped = 0u64;
        loop {
            if session.next_is_op() {
                if session.drop_next_op().is_none() {
                    break;
                }
                dropped += 1;
            } else if session.step().is_none() {
                break;
            }
        }
        let report = session.finish();
        assert!(dropped > 0);
        assert_eq!(report.admission_drops, dropped);
        assert_eq!(report.anycast.sent, 0, "dropped ops must not fire");
        assert_eq!(report.multicast.sent, 0);
        assert_eq!(report.skipped_ops, 0);
        // Health samples still happen — they are never droppable.
        assert!(report.health.len() >= 2);
    }
}
