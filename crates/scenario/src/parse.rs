//! The scenario text format: a hand-rolled TOML subset.
//!
//! The vendored `serde` is a derive-only no-op, so the format is parsed
//! by hand. It supports exactly what scenarios need:
//!
//! * `key = value` pairs, with integer, float, boolean and
//!   double-quoted-string values;
//! * `[section]` tables (at most one each) and `[[target]]`
//!   array-of-tables entries (any number, order preserved);
//! * `#` comments and blank lines.
//!
//! Every error carries the 1-based line number it was detected on, and
//! unknown sections or keys are rejected (typos fail loudly instead of
//! silently running a different experiment). [`ScenarioSpec::render`]
//! produces canonical text that parses back to an equal spec — the
//! proptest round-trip in `tests/spec_parser.rs` pins that down.

use std::collections::BTreeMap;

use crate::spec::{
    AdversarySpec, AssignmentSpec, BandSpec, ChurnSpec, EngineSpec, MaintenanceModeSpec,
    MaintenanceSpec, MulticastSpec, OracleSpec, PolicySpec, PredicateSpec, ReportSpec,
    ScenarioSpec, ScopeSpec, ServeSpec, TargetMix, TargetSpec, WorkloadSpec,
};

/// A parse failure, located at a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the problem was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One `key = value` occurrence.
#[derive(Debug, Clone)]
struct RawValue {
    text: String,
    line: usize,
}

/// One `[section]` / `[[section]]` body.
#[derive(Debug)]
struct RawSection {
    line: usize,
    entries: BTreeMap<String, RawValue>,
}

impl RawSection {
    fn empty(line: usize) -> Self {
        RawSection {
            line,
            entries: BTreeMap::new(),
        }
    }
}

/// First pass: lines → sections of raw key/value pairs.
struct RawDoc {
    /// Keys before any `[section]` header.
    top: RawSection,
    /// Single `[section]` tables by name.
    sections: BTreeMap<String, RawSection>,
    /// `[[target]]` occurrences, in order.
    targets: Vec<RawSection>,
}

fn split_raw(input: &str) -> Result<RawDoc, ParseError> {
    let mut doc = RawDoc {
        top: RawSection::empty(0),
        sections: BTreeMap::new(),
        targets: Vec::new(),
    };
    // Which section new keys land in: None = top, Some(name) = table,
    // targets are always the last element of doc.targets.
    enum Cursor {
        Top,
        Table(String),
        Target,
    }
    let mut cursor = Cursor::Top;
    for (idx, raw_line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return Err(ParseError::new(lineno, format!("unterminated [[...]]: {line:?}")));
            };
            let name = name.trim();
            if name != "target" {
                return Err(ParseError::new(
                    lineno,
                    format!("unknown array section [[{name}]] (only [[target]] repeats)"),
                ));
            }
            doc.targets.push(RawSection::empty(lineno));
            cursor = Cursor::Target;
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(ParseError::new(lineno, format!("unterminated [...]: {line:?}")));
            };
            let name = name.trim().to_string();
            const KNOWN: [&str; 8] = [
                "churn",
                "predicate",
                "oracle",
                "maintenance",
                "workload",
                "adversary",
                "serve",
                "report",
            ];
            if !KNOWN.contains(&name.as_str()) {
                return Err(ParseError::new(lineno, format!("unknown section [{name}]")));
            }
            if doc.sections.contains_key(&name) {
                return Err(ParseError::new(lineno, format!("duplicate section [{name}]")));
            }
            doc.sections.insert(name.clone(), RawSection::empty(lineno));
            cursor = Cursor::Table(name);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ParseError::new(
                lineno,
                format!("expected `key = value` or a [section] header, found {line:?}"),
            ));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(ParseError::new(lineno, format!("invalid key {key:?}")));
        }
        let value = RawValue {
            text: value.trim().to_string(),
            line: lineno,
        };
        if value.text.is_empty() {
            return Err(ParseError::new(lineno, format!("key {key:?} has no value")));
        }
        let entries = match &cursor {
            Cursor::Top => &mut doc.top.entries,
            Cursor::Table(name) => {
                &mut doc.sections.get_mut(name).expect("cursor section exists").entries
            }
            Cursor::Target => {
                &mut doc.targets.last_mut().expect("cursor target exists").entries
            }
        };
        if entries.insert(key.to_string(), value).is_some() {
            return Err(ParseError::new(lineno, format!("duplicate key {key:?}")));
        }
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Typed, consumption-tracking view of one raw section.
struct Section<'a> {
    name: &'a str,
    raw: &'a RawSection,
    taken: Vec<&'a str>,
}

impl<'a> Section<'a> {
    fn new(name: &'a str, raw: &'a RawSection) -> Self {
        Section {
            name,
            raw,
            taken: Vec::new(),
        }
    }

    fn raw_value(&mut self, key: &'a str) -> Option<&'a RawValue> {
        self.taken.push(key);
        self.raw.entries.get(key)
    }

    fn require(&mut self, key: &'a str) -> Result<&'a RawValue, ParseError> {
        self.raw_value(key).ok_or_else(|| {
            ParseError::new(
                // The top-level pseudo-section has no header line.
                self.raw.line.max(1),
                format!("section [{}] is missing key {key:?}", self.name),
            )
        })
    }

    fn str_of(&self, value: &RawValue, key: &str) -> Result<String, ParseError> {
        let text = &value.text;
        let inner = text
            .strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
            .ok_or_else(|| {
                ParseError::new(
                    value.line,
                    format!("key {key:?} needs a double-quoted string, found {text}"),
                )
            })?;
        if inner.contains('"') {
            return Err(ParseError::new(
                value.line,
                format!("key {key:?} has a stray quote inside its string"),
            ));
        }
        Ok(inner.to_string())
    }

    fn string(&mut self, key: &'a str) -> Result<String, ParseError> {
        let value = self.require(key)?;
        self.str_of(value, key)
    }

    fn u64_or(&mut self, key: &'a str, default: u64) -> Result<u64, ParseError> {
        match self.raw_value(key) {
            None => Ok(default),
            Some(value) => value.text.parse().map_err(|_| {
                ParseError::new(
                    value.line,
                    format!("key {key:?} needs a non-negative integer, found {}", value.text),
                )
            }),
        }
    }

    fn u64(&mut self, key: &'a str) -> Result<u64, ParseError> {
        let value = self.require(key)?;
        value.text.parse().map_err(|_| {
            ParseError::new(
                value.line,
                format!("key {key:?} needs a non-negative integer, found {}", value.text),
            )
        })
    }

    fn f64_of(&self, value: &RawValue, key: &str) -> Result<f64, ParseError> {
        let parsed: f64 = value.text.parse().map_err(|_| {
            ParseError::new(
                value.line,
                format!("key {key:?} needs a number, found {}", value.text),
            )
        })?;
        if !parsed.is_finite() {
            return Err(ParseError::new(
                value.line,
                format!("key {key:?} must be finite, found {}", value.text),
            ));
        }
        Ok(parsed)
    }

    fn f64(&mut self, key: &'a str) -> Result<f64, ParseError> {
        let value = self.require(key)?;
        self.f64_of(value, key)
    }

    fn f64_or(&mut self, key: &'a str, default: f64) -> Result<f64, ParseError> {
        match self.raw_value(key) {
            None => Ok(default),
            Some(value) => self.f64_of(value, key),
        }
    }

    /// Rejects keys nothing consumed — the typo guard.
    fn finish(self) -> Result<(), ParseError> {
        for (key, value) in &self.raw.entries {
            if !self.taken.contains(&key.as_str()) {
                return Err(ParseError::new(
                    value.line,
                    format!("unknown key {key:?} in section [{}]", self.name),
                ));
            }
        }
        Ok(())
    }
}

/// Maps an enum-like string value through `options`, erroring with the
/// accepted set on no match.
fn pick<T: Copy>(
    value: &str,
    line: usize,
    key: &str,
    options: &[(&str, T)],
) -> Result<T, ParseError> {
    options
        .iter()
        .find(|(name, _)| *name == value)
        .map(|&(_, v)| v)
        .ok_or_else(|| {
            let accepted: Vec<&str> = options.iter().map(|&(n, _)| n).collect();
            ParseError::new(
                line,
                format!("key {key:?}: unknown value {value:?} (accepted: {})", accepted.join(", ")),
            )
        })
}

/// Parses scenario text into a [`ScenarioSpec`].
///
/// The result is syntactically well-formed but not yet semantically
/// checked — call [`ScenarioSpec::validate`] before running it.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending 1-based line for any
/// structural problem: bad headers, missing or unknown sections/keys,
/// duplicate keys, or values of the wrong type.
///
/// # Examples
///
/// ```
/// let spec = avmem_scenario::parse_spec(r#"
/// name = "tiny"
/// seed = 7
/// duration_mins = 60
///
/// [churn]
/// model = "overnet"
/// hosts = 50
/// days = 1
///
/// [workload]
/// ops_per_hour = 30.0
///
/// [[target]]
/// weight = 1.0
/// kind = "range"
/// lo = 0.85
/// hi = 0.95
/// "#).unwrap();
/// assert_eq!(spec.name, "tiny");
/// assert!(spec.validate().is_ok());
/// ```
pub fn parse_spec(input: &str) -> Result<ScenarioSpec, ParseError> {
    let doc = split_raw(input)?;

    let mut top = Section::new("top level", &doc.top);
    let name = top.string("name")?;
    let seed = top.u64_or("seed", 1)?;
    let duration_mins = top.u64_or("duration_mins", 60)?;
    let warmup_mins = top.u64_or("warmup_mins", 0)?;
    let health_every_mins = top.u64_or("health_every_mins", 60)?;
    top.finish()?;

    let churn_raw = doc
        .sections
        .get("churn")
        .ok_or_else(|| ParseError::new(1, "missing required section [churn]"))?;
    let mut churn = Section::new("churn", churn_raw);
    let model_value = churn.require("model")?;
    let model_line = model_value.line;
    let model = churn.str_of(model_value, "model")?;
    let churn_spec = match model.as_str() {
        "overnet" => ChurnSpec::Overnet {
            hosts: churn.u64("hosts")? as usize,
            days: churn.u64("days")?,
        },
        "grid" => ChurnSpec::Grid {
            machines: churn.u64("machines")? as usize,
            days: churn.u64("days")?,
        },
        "flash-crowd" => ChurnSpec::FlashCrowd {
            hosts: churn.u64("hosts")? as usize,
            days: churn.u64("days")?,
            fraction: churn.f64("fraction")?,
            switch_at: churn.f64("switch_at")?,
        },
        "mass-departure" => ChurnSpec::MassDeparture {
            hosts: churn.u64("hosts")? as usize,
            days: churn.u64("days")?,
            fraction: churn.f64("fraction")?,
            switch_at: churn.f64("switch_at")?,
        },
        "trace-file" => ChurnSpec::TraceFile {
            path: churn.string("path")?,
        },
        other => {
            return Err(ParseError::new(
                model_line,
                format!(
                    "unknown churn model {other:?} (accepted: overnet, grid, flash-crowd, \
                     mass-departure, trace-file)"
                ),
            ))
        }
    };
    churn.finish()?;

    let predicate = match doc.sections.get("predicate") {
        None => PredicateSpec::Avmem {
            epsilon: 0.1,
            c1: avmem::predicate::DEFAULT_C1,
            c2: avmem::predicate::DEFAULT_C2,
        },
        Some(raw) => {
            let mut section = Section::new("predicate", raw);
            let kind_value = section.require("kind")?;
            let kind_line = kind_value.line;
            let kind = section.str_of(kind_value, "kind")?;
            let spec = match kind.as_str() {
                "avmem" => PredicateSpec::Avmem {
                    epsilon: section.f64_or("epsilon", 0.1)?,
                    c1: section.f64_or("c1", avmem::predicate::DEFAULT_C1)?,
                    c2: section.f64_or("c2", avmem::predicate::DEFAULT_C2)?,
                },
                "random" => PredicateSpec::Random {
                    degree: section.f64("degree")?,
                },
                other => {
                    return Err(ParseError::new(
                        kind_line,
                        format!("unknown predicate kind {other:?} (accepted: avmem, random)"),
                    ))
                }
            };
            section.finish()?;
            spec
        }
    };

    let oracle = match doc.sections.get("oracle") {
        None => OracleSpec::Exact,
        Some(raw) => {
            let mut section = Section::new("oracle", raw);
            let kind_value = section.require("kind")?;
            let kind_line = kind_value.line;
            let kind = section.str_of(kind_value, "kind")?;
            let spec = match kind.as_str() {
                "exact" => OracleSpec::Exact,
                "noisy" => OracleSpec::Noisy {
                    error: section.f64_or("error", 0.05)?,
                    staleness_mins: section.u64_or("staleness_mins", 20)?,
                },
                "noisy-shared" => OracleSpec::NoisyShared {
                    error: section.f64_or("error", 0.05)?,
                    staleness_mins: section.u64_or("staleness_mins", 20)?,
                },
                "avmon" => {
                    let assignment = match section.raw_value("assignment") {
                        None => AssignmentSpec::AllPairs,
                        Some(value) => {
                            let line = value.line;
                            let name = section.str_of(value, "assignment")?;
                            let ring = pick(
                                &name,
                                line,
                                "assignment",
                                &[("all-pairs", false), ("ring", true)],
                            )?;
                            if ring {
                                AssignmentSpec::Ring {
                                    vnodes: section.u64_or("vnodes", 8)? as u32,
                                    monitors: section.u64_or("monitors", 8)? as u32,
                                }
                            } else {
                                AssignmentSpec::AllPairs
                            }
                        }
                    };
                    // `vnodes`/`monitors` without `assignment = "ring"`
                    // would dangle.
                    let _ = section.u64_or("vnodes", 0)?;
                    let _ = section.u64_or("monitors", 0)?;
                    OracleSpec::Avmon { assignment }
                }
                other => {
                    return Err(ParseError::new(
                        kind_line,
                        format!(
                            "unknown oracle kind {other:?} (accepted: exact, noisy, \
                             noisy-shared, avmon)"
                        ),
                    ))
                }
            };
            section.finish()?;
            spec
        }
    };

    let maintenance = match doc.sections.get("maintenance") {
        None => MaintenanceSpec {
            mode: MaintenanceModeSpec::EventDriven {
                protocol_secs: 60,
                refresh_mins: 20,
            },
            engine: EngineSpec::Sharded { shards: 0, threads: 0 },
        },
        Some(raw) => {
            let mut section = Section::new("maintenance", raw);
            let mode_value = section.require("mode")?;
            let mode_line = mode_value.line;
            let mode_name = section.str_of(mode_value, "mode")?;
            let mode = match mode_name.as_str() {
                "event-driven" => MaintenanceModeSpec::EventDriven {
                    protocol_secs: section.u64_or("protocol_secs", 60)?,
                    refresh_mins: section.u64_or("refresh_mins", 20)?,
                },
                "converged" => MaintenanceModeSpec::Converged {
                    rebuild_every_mins: section.u64_or("rebuild_every_mins", 60)?,
                },
                other => {
                    return Err(ParseError::new(
                        mode_line,
                        format!(
                            "unknown maintenance mode {other:?} (accepted: event-driven, \
                             converged)"
                        ),
                    ))
                }
            };
            let engine = match section.raw_value("engine") {
                None => EngineSpec::Sharded {
                    shards: section.u64_or("shards", 0)? as usize,
                    threads: section.u64_or("threads", 0)? as usize,
                },
                Some(value) => {
                    let engine_name = section.str_of(value, "engine")?;
                    match engine_name.as_str() {
                        "serial" => EngineSpec::Serial,
                        // "parallel" is the pre-sharding name, kept as an
                        // alias so existing spec files keep parsing.
                        "sharded" | "parallel" => EngineSpec::Sharded {
                            shards: section.u64_or("shards", 0)? as usize,
                            threads: section.u64_or("threads", 0)? as usize,
                        },
                        other => {
                            return Err(ParseError::new(
                                value.line,
                                format!(
                                    "unknown engine {other:?} (accepted: serial, sharded, \
                                     parallel)"
                                ),
                            ))
                        }
                    }
                }
            };
            // `shards`/`threads` without `engine = "sharded"` would dangle.
            if matches!(engine, EngineSpec::Serial) {
                let _ = section.u64_or("shards", 0)?;
                let _ = section.u64_or("threads", 0)?;
            }
            section.finish()?;
            MaintenanceSpec { mode, engine }
        }
    };

    let workload_raw = doc
        .sections
        .get("workload")
        .ok_or_else(|| ParseError::new(1, "missing required section [workload]"))?;
    let mut workload = Section::new("workload", workload_raw);
    let ops_per_hour = workload.f64("ops_per_hour")?;
    let anycast_fraction = workload.f64_or("anycast_fraction", 1.0)?;
    let policy = match workload.raw_value("policy") {
        None => PolicySpec::Greedy,
        Some(value) => {
            let name = workload.str_of(value, "policy")?;
            match name.as_str() {
                "greedy" => PolicySpec::Greedy,
                "retried-greedy" => PolicySpec::RetriedGreedy {
                    retries: workload.u64_or("retries", 8)? as u32,
                },
                "annealing" => PolicySpec::Annealing,
                other => {
                    return Err(ParseError::new(
                        value.line,
                        format!(
                            "unknown policy {other:?} (accepted: greedy, retried-greedy, \
                             annealing)"
                        ),
                    ))
                }
            }
        }
    };
    if !matches!(policy, PolicySpec::RetriedGreedy { .. }) {
        let _ = workload.u64_or("retries", 0)?;
    }
    let scope = match workload.raw_value("scope") {
        None => ScopeSpec::Both,
        Some(value) => {
            let name = workload.str_of(value, "scope")?;
            pick(
                &name,
                value.line,
                "scope",
                &[("hs", ScopeSpec::Hs), ("vs", ScopeSpec::Vs), ("both", ScopeSpec::Both)],
            )?
        }
    };
    let ttl = workload.u64_or("ttl", 6)? as u32;
    let initiators = match workload.raw_value("initiators") {
        None => BandSpec::Any,
        Some(value) => {
            let name = workload.str_of(value, "initiators")?;
            pick(
                &name,
                value.line,
                "initiators",
                &[
                    ("low", BandSpec::Low),
                    ("mid", BandSpec::Mid),
                    ("high", BandSpec::High),
                    ("any", BandSpec::Any),
                ],
            )?
        }
    };
    let multicast = match workload.raw_value("multicast") {
        None => MulticastSpec::Flood,
        Some(value) => {
            let name = workload.str_of(value, "multicast")?;
            match name.as_str() {
                "flood" => MulticastSpec::Flood,
                "gossip" => MulticastSpec::Gossip {
                    fanout: workload.u64_or("fanout", 5)? as u32,
                    rounds: workload.u64_or("rounds", 2)? as u32,
                    period_secs: workload.u64_or("gossip_period_secs", 1)?,
                },
                other => {
                    return Err(ParseError::new(
                        value.line,
                        format!("unknown multicast {other:?} (accepted: flood, gossip)"),
                    ))
                }
            }
        }
    };
    if !matches!(multicast, MulticastSpec::Gossip { .. }) {
        let _ = workload.u64_or("fanout", 0)?;
        let _ = workload.u64_or("rounds", 0)?;
        let _ = workload.u64_or("gossip_period_secs", 0)?;
    }
    workload.finish()?;

    let mut targets = Vec::with_capacity(doc.targets.len());
    for raw in &doc.targets {
        let mut section = Section::new("target", raw);
        let weight = section.f64_or("weight", 1.0)?;
        let kind_value = section.require("kind")?;
        let kind_line = kind_value.line;
        let kind = section.str_of(kind_value, "kind")?;
        let target = match kind.as_str() {
            "range" => TargetSpec::Range {
                lo: section.f64("lo")?,
                hi: section.f64("hi")?,
            },
            "threshold" => TargetSpec::Threshold {
                min: section.f64("min")?,
            },
            other => {
                return Err(ParseError::new(
                    kind_line,
                    format!("unknown target kind {other:?} (accepted: range, threshold)"),
                ))
            }
        };
        section.finish()?;
        targets.push(TargetMix { weight, target });
    }
    if targets.is_empty() {
        targets.push(TargetMix {
            weight: 1.0,
            target: TargetSpec::Range { lo: 0.85, hi: 0.95 },
        });
    }

    let adversary = match doc.sections.get("adversary") {
        None => None,
        Some(raw) => {
            let mut section = Section::new("adversary", raw);
            let spec = AdversarySpec {
                flooder_fraction: section.f64("flooder_fraction")?,
                cushion: section.f64_or("cushion", 0.0)?,
                probes: section.u64_or("probes", 30)? as u32,
            };
            section.finish()?;
            Some(spec)
        }
    };

    let serve = match doc.sections.get("serve") {
        None => None,
        Some(raw) => {
            let mut section = Section::new("serve", raw);
            let ops_per_day = match section.raw_value("ops_per_day") {
                None => None,
                Some(value) => Some(section.f64_of(value, "ops_per_day")?),
            };
            let spec = ServeSpec {
                ops_per_day,
                pace: section.f64_or("pace", 0.0)?,
                lag_budget_ms: section.u64_or("lag_budget_ms", 2_000)?,
            };
            section.finish()?;
            Some(spec)
        }
    };

    let report = match doc.sections.get("report") {
        None => ReportSpec::default(),
        Some(raw) => {
            let mut section = Section::new("report", raw);
            let defaults = ReportSpec::default();
            let spec = ReportSpec {
                estimator_samples: section
                    .u64_or("estimator_samples", defaults.estimator_samples)?,
            };
            section.finish()?;
            spec
        }
    };

    Ok(ScenarioSpec {
        name,
        seed,
        duration_mins,
        warmup_mins,
        health_every_mins,
        churn: churn_spec,
        predicate,
        oracle,
        maintenance,
        workload: WorkloadSpec {
            ops_per_hour,
            anycast_fraction,
            policy,
            scope,
            ttl,
            initiators,
            multicast,
            targets,
        },
        adversary,
        serve,
        report,
    })
}

impl ScenarioSpec {
    /// Renders the spec as canonical scenario text.
    ///
    /// Round-trip guarantee: `parse_spec(&spec.render()) == Ok(spec)` for
    /// every valid spec (floats print with Rust's shortest round-trip
    /// formatting).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let w = &mut out;
        writeln!(w, "name = \"{}\"", self.name).unwrap();
        writeln!(w, "seed = {}", self.seed).unwrap();
        writeln!(w, "duration_mins = {}", self.duration_mins).unwrap();
        writeln!(w, "warmup_mins = {}", self.warmup_mins).unwrap();
        writeln!(w, "health_every_mins = {}", self.health_every_mins).unwrap();

        writeln!(w, "\n[churn]").unwrap();
        match &self.churn {
            ChurnSpec::Overnet { hosts, days } => {
                writeln!(w, "model = \"overnet\"\nhosts = {hosts}\ndays = {days}").unwrap();
            }
            ChurnSpec::Grid { machines, days } => {
                writeln!(w, "model = \"grid\"\nmachines = {machines}\ndays = {days}").unwrap();
            }
            ChurnSpec::FlashCrowd { hosts, days, fraction, switch_at } => {
                writeln!(
                    w,
                    "model = \"flash-crowd\"\nhosts = {hosts}\ndays = {days}\n\
                     fraction = {fraction:?}\nswitch_at = {switch_at:?}"
                )
                .unwrap();
            }
            ChurnSpec::MassDeparture { hosts, days, fraction, switch_at } => {
                writeln!(
                    w,
                    "model = \"mass-departure\"\nhosts = {hosts}\ndays = {days}\n\
                     fraction = {fraction:?}\nswitch_at = {switch_at:?}"
                )
                .unwrap();
            }
            ChurnSpec::TraceFile { path } => {
                writeln!(w, "model = \"trace-file\"\npath = \"{path}\"").unwrap();
            }
        }

        writeln!(w, "\n[predicate]").unwrap();
        match &self.predicate {
            PredicateSpec::Avmem { epsilon, c1, c2 } => {
                writeln!(
                    w,
                    "kind = \"avmem\"\nepsilon = {epsilon:?}\nc1 = {c1:?}\nc2 = {c2:?}"
                )
                .unwrap();
            }
            PredicateSpec::Random { degree } => {
                writeln!(w, "kind = \"random\"\ndegree = {degree:?}").unwrap();
            }
        }

        writeln!(w, "\n[oracle]").unwrap();
        match &self.oracle {
            OracleSpec::Exact => writeln!(w, "kind = \"exact\"").unwrap(),
            OracleSpec::Noisy { error, staleness_mins } => {
                writeln!(
                    w,
                    "kind = \"noisy\"\nerror = {error:?}\nstaleness_mins = {staleness_mins}"
                )
                .unwrap();
            }
            OracleSpec::NoisyShared { error, staleness_mins } => {
                writeln!(
                    w,
                    "kind = \"noisy-shared\"\nerror = {error:?}\n\
                     staleness_mins = {staleness_mins}"
                )
                .unwrap();
            }
            OracleSpec::Avmon { assignment } => {
                writeln!(w, "kind = \"avmon\"").unwrap();
                match assignment {
                    AssignmentSpec::AllPairs => {
                        writeln!(w, "assignment = \"all-pairs\"").unwrap();
                    }
                    AssignmentSpec::Ring { vnodes, monitors } => {
                        writeln!(
                            w,
                            "assignment = \"ring\"\nvnodes = {vnodes}\nmonitors = {monitors}"
                        )
                        .unwrap();
                    }
                }
            }
        }

        writeln!(w, "\n[maintenance]").unwrap();
        match self.maintenance.mode {
            MaintenanceModeSpec::EventDriven { protocol_secs, refresh_mins } => {
                writeln!(
                    w,
                    "mode = \"event-driven\"\nprotocol_secs = {protocol_secs}\n\
                     refresh_mins = {refresh_mins}"
                )
                .unwrap();
            }
            MaintenanceModeSpec::Converged { rebuild_every_mins } => {
                writeln!(
                    w,
                    "mode = \"converged\"\nrebuild_every_mins = {rebuild_every_mins}"
                )
                .unwrap();
            }
        }
        match self.maintenance.engine {
            EngineSpec::Serial => writeln!(w, "engine = \"serial\"").unwrap(),
            EngineSpec::Sharded { shards, threads } => {
                writeln!(w, "engine = \"sharded\"\nshards = {shards}\nthreads = {threads}")
                    .unwrap();
            }
        }

        let wl = &self.workload;
        writeln!(w, "\n[workload]").unwrap();
        writeln!(w, "ops_per_hour = {:?}", wl.ops_per_hour).unwrap();
        writeln!(w, "anycast_fraction = {:?}", wl.anycast_fraction).unwrap();
        match wl.policy {
            PolicySpec::Greedy => writeln!(w, "policy = \"greedy\"").unwrap(),
            PolicySpec::RetriedGreedy { retries } => {
                writeln!(w, "policy = \"retried-greedy\"\nretries = {retries}").unwrap();
            }
            PolicySpec::Annealing => writeln!(w, "policy = \"annealing\"").unwrap(),
        }
        let scope = match wl.scope {
            ScopeSpec::Hs => "hs",
            ScopeSpec::Vs => "vs",
            ScopeSpec::Both => "both",
        };
        writeln!(w, "scope = \"{scope}\"").unwrap();
        writeln!(w, "ttl = {}", wl.ttl).unwrap();
        let band = match wl.initiators {
            BandSpec::Low => "low",
            BandSpec::Mid => "mid",
            BandSpec::High => "high",
            BandSpec::Any => "any",
        };
        writeln!(w, "initiators = \"{band}\"").unwrap();
        match wl.multicast {
            MulticastSpec::Flood => writeln!(w, "multicast = \"flood\"").unwrap(),
            MulticastSpec::Gossip { fanout, rounds, period_secs } => {
                writeln!(
                    w,
                    "multicast = \"gossip\"\nfanout = {fanout}\nrounds = {rounds}\n\
                     gossip_period_secs = {period_secs}"
                )
                .unwrap();
            }
        }

        for mix in &wl.targets {
            writeln!(w, "\n[[target]]").unwrap();
            writeln!(w, "weight = {:?}", mix.weight).unwrap();
            match mix.target {
                TargetSpec::Range { lo, hi } => {
                    writeln!(w, "kind = \"range\"\nlo = {lo:?}\nhi = {hi:?}").unwrap();
                }
                TargetSpec::Threshold { min } => {
                    writeln!(w, "kind = \"threshold\"\nmin = {min:?}").unwrap();
                }
            }
        }

        if let Some(adv) = &self.adversary {
            writeln!(w, "\n[adversary]").unwrap();
            writeln!(w, "flooder_fraction = {:?}", adv.flooder_fraction).unwrap();
            writeln!(w, "cushion = {:?}", adv.cushion).unwrap();
            writeln!(w, "probes = {}", adv.probes).unwrap();
        }
        if let Some(serve) = &self.serve {
            writeln!(w, "\n[serve]").unwrap();
            if let Some(rate) = serve.ops_per_day {
                writeln!(w, "ops_per_day = {rate:?}").unwrap();
            }
            writeln!(w, "pace = {:?}", serve.pace).unwrap();
            writeln!(w, "lag_budget_ms = {}", serve.lag_budget_ms).unwrap();
        }
        // All-defaults report settings render as nothing: old spec files
        // stay canonical and the section only appears when it matters.
        if self.report != ReportSpec::default() {
            writeln!(w, "\n[report]").unwrap();
            writeln!(w, "estimator_samples = {}", self.report.estimator_samples).unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    #[test]
    fn builtins_round_trip() {
        for name in builtin::builtin_names() {
            let spec = builtin::builtin(name).unwrap();
            let rendered = spec.render();
            let reparsed = parse_spec(&rendered)
                .unwrap_or_else(|e| panic!("{name}: render did not parse: {e}\n{rendered}"));
            assert_eq!(spec, reparsed, "{name} did not round-trip");
        }
    }

    #[test]
    fn parallel_engine_is_a_sharded_alias() {
        // Spec files written before the sharded engine existed said
        // `engine = "parallel"`; they keep working and now mean a
        // thread-count-matched shard layout.
        let spec = parse_spec(
            "name = \"legacy\"\n[churn]\nmodel = \"overnet\"\nhosts = 10\ndays = 1\n\
             [maintenance]\nmode = \"event-driven\"\nengine = \"parallel\"\nthreads = 4\n\
             [workload]\nops_per_hour = 5.0\n",
        )
        .unwrap();
        assert_eq!(
            spec.maintenance.engine,
            EngineSpec::Sharded { shards: 0, threads: 4 }
        );
    }

    #[test]
    fn sharded_engine_parses_both_knobs() {
        let spec = parse_spec(
            "name = \"s\"\n[churn]\nmodel = \"overnet\"\nhosts = 10\ndays = 1\n\
             [maintenance]\nmode = \"event-driven\"\nengine = \"sharded\"\nshards = 8\n\
             threads = 2\n[workload]\nops_per_hour = 5.0\n",
        )
        .unwrap();
        assert_eq!(
            spec.maintenance.engine,
            EngineSpec::Sharded { shards: 8, threads: 2 }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_spec("name = \"x\"\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().starts_with("line 2:"));

        let err = parse_spec("name = \"x\"\n\n[nonsense]\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown section"));
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let src = "name = \"x\"\n[churn]\nmodel = \"overnet\"\nhosts = 10\ndays = 1\n\
                   hostz = 10\n[workload]\nops_per_hour = 1.0\n";
        let err = parse_spec(src).unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.message.contains("unknown key \"hostz\""), "{err}");
    }

    #[test]
    fn duplicate_keys_and_sections_are_rejected() {
        let err = parse_spec("name = \"a\"\nname = \"b\"\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate key"));

        let err =
            parse_spec("name = \"a\"\n[churn]\nmodel = \"overnet\"\nhosts = 1\ndays = 1\n[churn]\n")
                .unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.message.contains("duplicate section"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let spec = parse_spec(
            "# a scenario\nname = \"c\" # trailing comment\n\n[churn]\nmodel = \"overnet\"\n\
             hosts = 10\ndays = 1\n[workload]\nops_per_hour = 5.0\n",
        )
        .unwrap();
        assert_eq!(spec.name, "c");
        assert_eq!(spec.workload.targets.len(), 1, "default target applies");
    }

    #[test]
    fn strings_may_contain_hashes() {
        let spec = parse_spec(
            "name = \"run#7\"\n[churn]\nmodel = \"overnet\"\nhosts = 10\ndays = 1\n\
             [workload]\nops_per_hour = 5.0\n",
        )
        .unwrap();
        assert_eq!(spec.name, "run#7");
    }

    #[test]
    fn missing_required_sections_are_reported() {
        let err = parse_spec("name = \"x\"\n").unwrap_err();
        assert!(err.message.contains("[churn]"));
        let err = parse_spec("name = \"x\"\n[churn]\nmodel = \"overnet\"\nhosts = 5\ndays = 1\n")
            .unwrap_err();
        assert!(err.message.contains("[workload]"));
    }

    #[test]
    fn wrong_value_types_are_reported_at_their_line() {
        let err = parse_spec(
            "name = \"x\"\nseed = \"not a number\"\n[churn]\nmodel = \"overnet\"\nhosts = 5\n\
             days = 1\n[workload]\nops_per_hour = 1.0\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("integer"));
    }
}
