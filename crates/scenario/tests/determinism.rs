//! Pins scenario-report determinism: one spec + seed produces a
//! bit-identical [`ScenarioReport`] regardless of maintenance engine
//! (serial reference vs sharded), shard count, and worker-thread count.
//!
//! This is the scenario-level corollary of the `event_driven_equivalence`
//! harness tests: maintenance state is engine-independent, and every
//! operation draw comes from counter-keyed streams, so nothing in the
//! report may move when only the execution strategy changes. (Report
//! equality deliberately excludes the wall-clock phase timings.)

use avmem::harness::MaintenanceEngine;
use avmem_scenario::{
    builtin, AdversarySpec, ChurnSpec, MaintenanceModeSpec, OracleSpec, ScenarioRunner,
    ScenarioSpec,
};

/// (shards, threads) sweep: single-shard fast path, balanced, shard
/// count above and below the thread count.
const SHARD_SWEEP: [(usize, usize); 4] = [(1, 1), (2, 2), (4, 2), (8, 8)];

/// A scenario small enough to sweep engines over, but exercising the full
/// machinery: event-driven maintenance, mixed traffic, an adversary.
fn event_driven_spec() -> ScenarioSpec {
    let mut spec = builtin::builtin("smoke").expect("smoke builtin");
    spec.name = "determinism".into();
    spec.seed = 41;
    spec.churn = ChurnSpec::Overnet { hosts: 150, days: 1 };
    spec.maintenance.mode = MaintenanceModeSpec::EventDriven {
        protocol_secs: 60,
        refresh_mins: 20,
    };
    spec.warmup_mins = 90;
    spec.duration_mins = 120;
    spec.health_every_mins = 30;
    spec.workload.ops_per_hour = 60.0;
    spec.workload.anycast_fraction = 0.6;
    spec.oracle = OracleSpec::Noisy {
        error: 0.05,
        staleness_mins: 20,
    };
    spec.adversary = Some(AdversarySpec {
        flooder_fraction: 0.1,
        cushion: 0.1,
        probes: 20,
    });
    spec
}

fn report_with(spec: &ScenarioSpec, engine: MaintenanceEngine) -> avmem_scenario::ScenarioReport {
    ScenarioRunner::new(spec.clone())
        .expect("spec validates")
        .with_engine(engine)
        .run()
        .expect("scenario runs")
}

fn sharded(shards: usize, threads: usize) -> MaintenanceEngine {
    MaintenanceEngine::Sharded {
        shards: Some(shards),
        threads: Some(threads),
    }
}

#[test]
fn reports_are_bit_identical_across_engines_shards_and_threads() {
    let spec = event_driven_spec();
    let reference = report_with(&spec, MaintenanceEngine::Serial);

    // Guard against vacuous equality: traffic actually flowed.
    assert!(
        reference.anycast.sent > 10,
        "too little anycast traffic ({}) for a meaningful pin",
        reference.anycast.sent
    );
    assert!(reference.multicast.sent > 0, "no multicast traffic");
    let attack = reference.attack.as_ref().expect("adversary configured");
    assert!(attack.probes > 0, "no adversary probes");
    assert!(reference.health.len() >= 4, "health series too short");

    for (shards, threads) in SHARD_SWEEP {
        let candidate = report_with(&spec, sharded(shards, threads));
        assert_eq!(
            reference, candidate,
            "report diverged with the sharded engine at {shards} shards x {threads} threads"
        );
    }
}

#[test]
fn reports_are_bit_identical_for_converged_maintenance_too() {
    let mut spec = event_driven_spec();
    spec.maintenance.mode = MaintenanceModeSpec::Converged {
        rebuild_every_mins: 30,
    };
    let reference = report_with(&spec, MaintenanceEngine::Serial);
    assert!(reference.anycast.sent > 10);
    for (shards, threads) in SHARD_SWEEP {
        let candidate = report_with(&spec, sharded(shards, threads));
        assert_eq!(
            reference, candidate,
            "converged report diverged at {shards} shards x {threads} threads"
        );
    }
}

#[test]
fn repeated_runs_of_one_runner_are_identical() {
    let runner = ScenarioRunner::new(event_driven_spec()).unwrap();
    let first = runner.run().unwrap();
    let second = runner.run().unwrap();
    assert_eq!(first, second, "runner must be stateless across runs");
}

#[test]
fn different_seeds_differ() {
    let spec = event_driven_spec();
    let mut reseeded = spec.clone();
    reseeded.seed = 42;
    let a = ScenarioRunner::new(spec).unwrap().run().unwrap();
    let b = ScenarioRunner::new(reseeded).unwrap().run().unwrap();
    assert_ne!(a, b, "seed must matter");
}
