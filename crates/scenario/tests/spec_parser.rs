//! Property tests for the scenario text format: render → parse is the
//! identity on arbitrary valid specs, and malformed inputs are rejected
//! with the offending line number.

use proptest::prelude::*;

use avmem_scenario::{
    parse_spec, AdversarySpec, AssignmentSpec, BandSpec, ChurnSpec, EngineSpec,
    MaintenanceModeSpec, MaintenanceSpec, MulticastSpec, OracleSpec, PolicySpec, PredicateSpec,
    ReportSpec, ScenarioSpec, ScopeSpec, ServeSpec, TargetMix, TargetSpec, WorkloadSpec,
};

fn arb_churn() -> impl Strategy<Value = ChurnSpec> {
    prop_oneof![
        (1usize..5000, 1u64..8)
            .prop_map(|(hosts, days)| ChurnSpec::Overnet { hosts, days }),
        (1usize..5000, 1u64..8)
            .prop_map(|(machines, days)| ChurnSpec::Grid { machines, days }),
        (1usize..5000, 1u64..8, 0.0f64..=1.0, 0.0f64..=1.0).prop_map(
            |(hosts, days, fraction, switch_at)| ChurnSpec::FlashCrowd {
                hosts,
                days,
                fraction,
                switch_at,
            }
        ),
        (1usize..5000, 1u64..8, 0.0f64..=1.0, 0.0f64..=1.0).prop_map(
            |(hosts, days, fraction, switch_at)| ChurnSpec::MassDeparture {
                hosts,
                days,
                fraction,
                switch_at,
            }
        ),
        (0u64..1000).prop_map(|n| ChurnSpec::TraceFile {
            path: format!("traces/churn-{n}.avt"),
        }),
    ]
}

fn arb_predicate() -> impl Strategy<Value = PredicateSpec> {
    prop_oneof![
        (0.01f64..0.49, 0.1f64..10.0, 0.1f64..10.0)
            .prop_map(|(epsilon, c1, c2)| PredicateSpec::Avmem { epsilon, c1, c2 }),
        (1.0f64..40.0).prop_map(|degree| PredicateSpec::Random { degree }),
    ]
}

fn arb_oracle() -> impl Strategy<Value = OracleSpec> {
    prop_oneof![
        Just(OracleSpec::Exact),
        (0.0f64..0.5, 1u64..120).prop_map(|(error, staleness_mins)| OracleSpec::Noisy {
            error,
            staleness_mins,
        }),
        (0.0f64..0.5, 1u64..120).prop_map(|(error, staleness_mins)| {
            OracleSpec::NoisyShared {
                error,
                staleness_mins,
            }
        }),
        Just(OracleSpec::Avmon {
            assignment: AssignmentSpec::AllPairs,
        }),
        (1u32..32, 1u32..16).prop_map(|(vnodes, monitors)| OracleSpec::Avmon {
            assignment: AssignmentSpec::Ring { vnodes, monitors },
        }),
    ]
}

fn arb_maintenance() -> impl Strategy<Value = MaintenanceSpec> {
    let mode = prop_oneof![
        (1u64..600, 1u64..120).prop_map(|(protocol_secs, refresh_mins)| {
            MaintenanceModeSpec::EventDriven {
                protocol_secs,
                refresh_mins,
            }
        }),
        (1u64..240).prop_map(|rebuild_every_mins| MaintenanceModeSpec::Converged {
            rebuild_every_mins,
        }),
    ];
    let engine = prop_oneof![
        Just(EngineSpec::Serial),
        (0usize..16, 0usize..16)
            .prop_map(|(shards, threads)| EngineSpec::Sharded { shards, threads }),
    ];
    (mode, engine).prop_map(|(mode, engine)| MaintenanceSpec { mode, engine })
}

fn arb_target() -> impl Strategy<Value = TargetMix> {
    let target = prop_oneof![
        (0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            TargetSpec::Range { lo, hi }
        }),
        (0.0f64..1.0).prop_map(|min| TargetSpec::Threshold { min }),
    ];
    (0.01f64..10.0, target).prop_map(|(weight, target)| TargetMix { weight, target })
}

fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    let policy = prop_oneof![
        Just(PolicySpec::Greedy),
        (1u32..20).prop_map(|retries| PolicySpec::RetriedGreedy { retries }),
        Just(PolicySpec::Annealing),
    ];
    let scope = prop_oneof![
        Just(ScopeSpec::Hs),
        Just(ScopeSpec::Vs),
        Just(ScopeSpec::Both)
    ];
    let band = prop_oneof![
        Just(BandSpec::Low),
        Just(BandSpec::Mid),
        Just(BandSpec::High),
        Just(BandSpec::Any),
    ];
    let multicast = prop_oneof![
        Just(MulticastSpec::Flood),
        (1u32..10, 1u32..6, 1u64..10).prop_map(|(fanout, rounds, period_secs)| {
            MulticastSpec::Gossip {
                fanout,
                rounds,
                period_secs,
            }
        }),
    ];
    (
        (0.0f64..500.0, 0.0f64..=1.0, 1u32..12),
        policy,
        scope,
        band,
        multicast,
        proptest::collection::vec(arb_target(), 1..4),
    )
        .prop_map(
            |((ops_per_hour, anycast_fraction, ttl), policy, scope, initiators, multicast, targets)| {
                WorkloadSpec {
                    ops_per_hour,
                    anycast_fraction,
                    policy,
                    scope,
                    ttl,
                    initiators,
                    multicast,
                    targets,
                }
            },
        )
}

fn arb_adversary() -> impl Strategy<Value = Option<AdversarySpec>> {
    prop_oneof![
        Just(None),
        (0.0f64..=1.0, 0.0f64..0.5, 1u32..100).prop_map(|(flooder_fraction, cushion, probes)| {
            Some(AdversarySpec {
                flooder_fraction,
                cushion,
                probes,
            })
        }),
    ]
}

fn arb_serve() -> impl Strategy<Value = Option<ServeSpec>> {
    prop_oneof![
        Just(None),
        (
            prop_oneof![Just(None), (1.0f64..1.0e7).prop_map(Some)],
            0.0f64..1000.0,
            0u64..60_000,
        )
            .prop_map(|(ops_per_day, pace, lag_budget_ms)| {
                Some(ServeSpec {
                    ops_per_day,
                    pace,
                    lag_budget_ms,
                })
            }),
    ]
}

fn arb_report() -> impl Strategy<Value = ReportSpec> {
    prop_oneof![
        Just(ReportSpec::default()),
        (0u64..10_000).prop_map(|estimator_samples| ReportSpec { estimator_samples }),
    ]
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        (0u64..1000, 0u64..u64::from(u32::MAX), 1u64..3000, 0u64..3000, 1u64..240),
        arb_churn(),
        arb_predicate(),
        arb_oracle(),
        arb_maintenance(),
        (arb_workload(), arb_adversary(), arb_serve(), arb_report()),
    )
        .prop_map(
            |(
                (name_tag, seed, duration_mins, warmup_mins, health_every_mins),
                churn,
                predicate,
                oracle,
                maintenance,
                (workload, adversary, serve, report),
            )| {
                ScenarioSpec {
                    name: format!("generated-{name_tag}"),
                    seed,
                    duration_mins,
                    warmup_mins,
                    health_every_mins,
                    churn,
                    predicate,
                    oracle,
                    maintenance,
                    workload,
                    adversary,
                    serve,
                    report,
                }
            },
        )
}

proptest! {
    #[test]
    fn render_parse_round_trips(spec in arb_spec()) {
        let rendered = spec.render();
        let reparsed = match parse_spec(&rendered) {
            Ok(reparsed) => reparsed,
            Err(e) => panic!("rendered spec did not parse: {e}\n{rendered}"),
        };
        prop_assert_eq!(spec, reparsed);
    }

    #[test]
    fn rendering_is_stable(spec in arb_spec()) {
        // render(parse(render(s))) == render(s): one canonical text.
        let rendered = spec.render();
        let again = parse_spec(&rendered).expect("round trip").render();
        prop_assert_eq!(rendered, again);
    }

    #[test]
    fn generated_specs_validate(spec in arb_spec()) {
        // The generators stay inside every invariant validate() checks.
        prop_assert!(spec.validate().is_ok(), "{:?}", spec.validate().err());
    }
}

/// Corrupting any single line of a rendered spec must never be silently
/// *misread* — it either still parses (the line was a no-op change) or
/// fails with that line's number.
#[test]
fn corrupted_lines_are_rejected_with_their_line_number() {
    let spec = avmem_scenario::builtin::builtin("overnet-day").unwrap();
    let rendered = spec.render();
    let lines: Vec<&str> = rendered.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut corrupted = lines.clone();
        let broken = format!("{line} ??");
        corrupted[i] = &broken;
        let text = corrupted.join("\n");
        match parse_spec(&text) {
            Ok(_) => panic!("corrupting line {} was accepted: {broken:?}", i + 1),
            Err(e) => assert_eq!(
                e.line,
                i + 1,
                "corrupted line {} reported at line {}: {e}",
                i + 1,
                e.line
            ),
        }
    }
}

#[test]
fn malformed_inputs_name_the_offending_line() {
    let cases: &[(&str, usize, &str)] = &[
        ("name = \"x\"\n[churn\n", 2, "unterminated"),
        ("name = \"x\"\n[[churn]]\n", 2, "unknown array section"),
        ("name = \"x\"\n= 4\n", 2, "invalid key"),
        ("name = \"x\"\nkey =\n", 2, "no value"),
        ("name = unquoted\n", 1, "double-quoted"),
        (
            "name = \"x\"\n[churn]\nmodel = \"overnet\"\nhosts = -3\ndays = 1\n",
            4,
            "non-negative integer",
        ),
        (
            "name = \"x\"\n[churn]\nmodel = \"martian\"\n",
            3,
            "unknown churn model",
        ),
        (
            "name = \"x\"\n[churn]\nmodel = \"overnet\"\nhosts = 9\ndays = 1\n\
             [workload]\nops_per_hour = \"fast\"\n",
            7,
            "needs a number",
        ),
    ];
    for &(input, line, needle) in cases {
        let err = parse_spec(input).unwrap_err();
        assert_eq!(err.line, line, "{input:?} reported {err}");
        assert!(
            err.message.contains(needle),
            "{input:?} produced {err:?}, expected {needle:?}"
        );
    }
}
