//! Pins the service-mode determinism contract: an **unpaced** serve of a
//! fixed window is bit-identical to a batch `run` of the same spec, on
//! every maintenance engine and thread count — the serve loop is the
//! same event loop, just driven step-by-step with metrics attached.
//!
//! This is the serve-mode corollary of `tests/determinism.rs`: pacing
//! and load-shedding are the *only* sources of divergence, and both are
//! off at `pace = 0`.

use avmem::harness::MaintenanceEngine;
use avmem_scenario::{
    builtin, AdversarySpec, ChurnSpec, MaintenanceModeSpec, OracleSpec, ScenarioRunner,
    ScenarioSpec, ServeOptions,
};

/// (shards, threads) sweep: single-shard fast path, balanced, shard
/// count above and below the thread count.
const SHARD_SWEEP: [(usize, usize); 4] = [(1, 1), (2, 2), (4, 2), (8, 8)];

/// Same shape as the determinism suite's spec: event-driven maintenance,
/// mixed traffic, a noisy oracle, and an adversary.
fn event_driven_spec() -> ScenarioSpec {
    let mut spec = builtin::builtin("smoke").expect("smoke builtin");
    spec.name = "serve-determinism".into();
    spec.seed = 41;
    spec.churn = ChurnSpec::Overnet { hosts: 150, days: 1 };
    spec.maintenance.mode = MaintenanceModeSpec::EventDriven {
        protocol_secs: 60,
        refresh_mins: 20,
    };
    spec.warmup_mins = 90;
    spec.duration_mins = 120;
    spec.health_every_mins = 30;
    spec.workload.ops_per_hour = 60.0;
    spec.workload.anycast_fraction = 0.6;
    spec.oracle = OracleSpec::Noisy {
        error: 0.05,
        staleness_mins: 20,
    };
    spec.adversary = Some(AdversarySpec {
        flooder_fraction: 0.1,
        cushion: 0.1,
        probes: 20,
    });
    spec
}

fn sharded(shards: usize, threads: usize) -> MaintenanceEngine {
    MaintenanceEngine::Sharded {
        shards: Some(shards),
        threads: Some(threads),
    }
}

/// Unpaced serve options: no rate override, no pacing, no endpoint.
fn unpaced() -> ServeOptions {
    ServeOptions {
        pace: Some(0.0),
        ..ServeOptions::default()
    }
}

#[test]
fn unpaced_serve_equals_run_on_every_engine() {
    let spec = event_driven_spec();
    let reference = ScenarioRunner::new(spec.clone())
        .unwrap()
        .with_engine(MaintenanceEngine::Serial)
        .run()
        .unwrap();

    // Guard against vacuous equality: traffic actually flowed.
    assert!(reference.anycast.sent > 10, "too little anycast traffic");
    assert!(reference.multicast.sent > 0, "no multicast traffic");
    assert!(
        reference.estimator.drawn > 0,
        "estimator sampling never ran"
    );

    let mut engines = vec![MaintenanceEngine::Serial];
    engines.extend(SHARD_SWEEP.map(|(s, t)| sharded(s, t)));
    for engine in engines {
        let outcome = ScenarioRunner::new(spec.clone())
            .unwrap()
            .with_engine(engine)
            .serve(&unpaced())
            .unwrap();
        assert_eq!(
            reference, outcome.report,
            "unpaced serve diverged from run on {engine:?}"
        );
        assert_eq!(outcome.report.admission_drops, 0, "unpaced serve shed load");
        assert_eq!(outcome.sim_mins, spec.duration_mins);
    }
}

#[test]
fn fixed_duration_serve_is_a_prefix_on_every_engine() {
    // --for-mins N must equal a batch run whose spec already says N:
    // the arrival schedule is a true prefix, on every engine.
    let spec = event_driven_spec();
    let mut truncated = spec.clone();
    truncated.duration_mins = 45;
    let reference = ScenarioRunner::new(truncated).unwrap().run().unwrap();

    let opts = ServeOptions {
        for_mins: Some(45),
        ..unpaced()
    };
    for (shards, threads) in SHARD_SWEEP {
        let outcome = ScenarioRunner::new(spec.clone())
            .unwrap()
            .with_engine(sharded(shards, threads))
            .serve(&opts)
            .unwrap();
        assert_eq!(
            reference, outcome.report,
            "45-min serve prefix diverged at {shards} shards x {threads} threads"
        );
    }
}

#[test]
fn serve_with_metrics_endpoint_still_matches_run() {
    // Binding the exporter and scraping it must not perturb the
    // simulation: metrics are observers, never participants.
    let spec = event_driven_spec();
    let reference = ScenarioRunner::new(spec.clone()).unwrap().run().unwrap();
    let opts = ServeOptions {
        metrics_addr: Some("127.0.0.1:0".into()),
        scrape_on_exit: true,
        ..unpaced()
    };
    let outcome = ScenarioRunner::new(spec).unwrap().serve(&opts).unwrap();
    assert_eq!(reference, outcome.report);
    let text = outcome.metrics_text.expect("scrape_on_exit captured text");
    for family in [
        "avmem_ops_total",
        "avmem_op_latency_ms",
        "avmem_online",
        "avmem_estimator_mae",
        "avmem_phase_span_us",
    ] {
        assert!(text.contains(family), "scrape missing {family}:\n{text}");
    }
}
