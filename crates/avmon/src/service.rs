//! The full simulation-backed AVMON service.
//!
//! [`AvmonService`] runs the complete monitoring pipeline over a churn
//! trace: consistent monitor assignment, per-slot pinging by online
//! monitors, per-target estimate aggregation (median of monitor
//! estimates), and caching of the last aggregate for targets whose
//! monitors are all offline. Queries therefore exhibit the exact
//! imperfections the paper's §4.1 attack analysis attributes to AVMON:
//! estimates are stale (refreshed once per probe slot), noisy (monitors
//! ping at finite rate, pings can be lost), and slightly inconsistent
//! over time.
//!
//! # Architecture
//!
//! The service is laid out for bulk slot sweeps rather than per-node
//! stepping:
//!
//! * the monitor relation is stored **twice**, as build-once CSR
//!   indexes — forward (`monitor → targets`) for the ping phase and
//!   inverted (`target → (monitor, estimator)`) for the aggregation
//!   phase, so neither phase ever scans the population;
//! * estimators live in one **flat columnar arena** aligned with the
//!   forward index (no per-monitor `Vec`s, no pointer chasing on the
//!   sweep);
//! * ping-loss randomness is **counter-keyed** per `(seed, monitor,
//!   slot)` stream, so the outcome of a slot is a pure function of the
//!   key material — independent of processing order and thread count;
//! * [`AvmonService::step_to`] processes each slot in **two parallel
//!   phases** over the persistent worker pool
//!   ([`avmem_util::parallel`]): pings parallel over monitors (each
//!   monitor owns a disjoint arena range), aggregation parallel over
//!   targets (each target reads its inverted-index row, with one
//!   reusable median scratch per worker).
//!
//! Results are bit-identical for every thread count; the
//! `service_equivalence` integration tests pin the refactored pipeline
//! to a seed-style serial reference.

use avmem_sim::{SimDuration, SimTime};
use avmem_trace::ChurnTrace;
use avmem_util::parallel::{default_threads, par_chunks_mut};
use avmem_util::{Availability, NodeId, Rng, SplitMix64};
use serde::{Deserialize, Serialize};

use crate::assignment::MonitorAssignment;
use crate::estimator::PingEstimator;
use crate::oracle::AvailabilityOracle;

/// Purpose tag of the counter-keyed ping-loss streams: every draw comes
/// from `SplitMix64::keyed(&[seed, STREAM_PING, monitor, slot])`, so a
/// monitor-slot's losses are a property of the key, never of which
/// worker processed the monitor or in which order.
const STREAM_PING: u64 = 0x4156_4d4f_4e50;

/// Configuration of the AVMON service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvmonConfig {
    /// Expected number of monitors per node (`cms`).
    pub cms: f64,
    /// EWMA smoothing factor for aged estimates.
    pub alpha: f64,
    /// Probability that a ping to an *online* target is lost anyway.
    pub ping_loss: f64,
    /// Serve aged (EWMA) estimates instead of raw lifetime fractions.
    pub use_aged: bool,
}

impl Default for AvmonConfig {
    fn default() -> Self {
        AvmonConfig {
            cms: 8.0,
            alpha: 0.05,
            ping_loss: 0.0,
            use_aged: false,
        }
    }
}

/// A ping-based availability monitoring service over a churn trace.
///
/// Drive it forward with [`AvmonService::step_to`]; query it through the
/// [`AvailabilityOracle`] impl. Estimates reflect only the slots
/// processed so far.
///
/// # Examples
///
/// ```
/// use avmem_avmon::{AvailabilityOracle, AvmonConfig, AvmonService};
/// use avmem_sim::{SimDuration, SimTime};
/// use avmem_trace::OvernetModel;
/// use avmem_util::NodeId;
///
/// let trace = OvernetModel::default().hosts(60).days(1).generate(3);
/// let mut service = AvmonService::new(&trace, AvmonConfig::default(), 42);
/// let noon = SimTime::ZERO + SimDuration::from_hours(12);
/// service.step_to(&trace, noon);
/// // After half a day of pinging, most nodes have estimates.
/// let known = (0..60)
///     .filter(|&i| service.estimate(NodeId::new(0), NodeId::new(i), noon).is_some())
///     .count();
/// assert!(known > 30);
/// ```
#[derive(Debug, Clone)]
pub struct AvmonService {
    config: AvmonConfig,
    assignment: MonitorAssignment,
    /// Seed of the counter-keyed ping-loss streams.
    seed: u64,
    /// Chunk fan-out for the parallel slot phases. Results are
    /// bit-identical for every value; see [`AvmonService::set_threads`].
    threads: usize,
    /// Forward CSR: monitor `m` observes
    /// `target_ids[target_offsets[m]..target_offsets[m + 1]]`.
    target_offsets: Vec<usize>,
    target_ids: Vec<u32>,
    /// Flat estimator arena aligned with `target_ids`: the estimator of
    /// monitor `m` for its `k`-th target is
    /// `estimators[target_offsets[m] + k]`.
    estimators: Vec<PingEstimator>,
    /// Inverted CSR: target `t` is observed by
    /// `inv_entries[inv_offsets[t]..inv_offsets[t + 1]]`, each entry a
    /// `(monitor, arena index)` pair, ascending by monitor.
    inv_offsets: Vec<usize>,
    inv_entries: Vec<(u32, u32)>,
    /// Aggregated (median) estimate per target, refreshed each processed
    /// slot from the monitors online in that slot; retains the previous
    /// value when no monitor is online (staleness).
    aggregate: Vec<Option<Availability>>,
    next_slot: usize,
}

impl AvmonService {
    /// Builds the service for a trace population: computes the consistent
    /// monitor assignment (rows hashed in parallel over the worker pool)
    /// and the forward + inverted CSR indexes with empty estimators.
    /// `seed` drives ping-loss randomness only.
    pub fn new(trace: &ChurnTrace, config: AvmonConfig, seed: u64) -> Self {
        let n = trace.num_nodes();
        let assignment = MonitorAssignment::new(config.cms, n as f64);
        // Each monitor's target row is an independent N-scan of the
        // consistent-assignment hash — the build's O(N²) SHA-256 cost —
        // so rows are computed in parallel.
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        par_chunks_mut(&mut rows, 1, default_threads(), |offset, chunk| {
            for (k, row) in chunk.iter_mut().enumerate() {
                let m_id = trace.node_id(offset + k);
                for x in 0..n {
                    if assignment.is_monitor(m_id, trace.node_id(x)) {
                        row.push(x as u32);
                    }
                }
            }
        });
        let total: usize = rows.iter().map(Vec::len).sum();
        assert!(
            u32::try_from(total).is_ok(),
            "monitor-target pairs exceed the index width"
        );
        let mut target_offsets = Vec::with_capacity(n + 1);
        let mut target_ids = Vec::with_capacity(total);
        target_offsets.push(0);
        for row in &rows {
            target_ids.extend_from_slice(row);
            target_offsets.push(target_ids.len());
        }
        // Invert: count per target, prefix-sum, then one placement pass.
        // Monitors are visited in ascending order, so each target's
        // entries come out sorted by monitor.
        let mut inv_offsets = vec![0usize; n + 1];
        for &t in &target_ids {
            inv_offsets[t as usize + 1] += 1;
        }
        for t in 0..n {
            inv_offsets[t + 1] += inv_offsets[t];
        }
        let mut cursor = inv_offsets[..n].to_vec();
        let mut inv_entries = vec![(0u32, 0u32); total];
        for m in 0..n {
            let start = target_offsets[m];
            for (k, &t) in target_ids[start..target_offsets[m + 1]].iter().enumerate() {
                let t = t as usize;
                inv_entries[cursor[t]] = (m as u32, (start + k) as u32);
                cursor[t] += 1;
            }
        }
        AvmonService {
            config,
            assignment,
            seed,
            threads: default_threads(),
            target_offsets,
            target_ids,
            estimators: vec![PingEstimator::new(config.alpha); total],
            inv_offsets,
            inv_entries,
            aggregate: vec![None; n],
            next_slot: 0,
        }
    }

    /// The monitor-assignment rule in force.
    pub fn assignment(&self) -> MonitorAssignment {
        self.assignment
    }

    /// Sets the chunk fan-out of the parallel slot phases. Purely a
    /// performance knob: every thread count produces bit-identical
    /// estimates (randomness is keyed, and the two phases write disjoint
    /// state), which the `service_equivalence` tests pin.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The monitors of `target` (by index) in this population, served by
    /// the inverted index in `O(monitors of target)`, ascending.
    pub fn monitors_of_index(&self, target: usize) -> Vec<usize> {
        self.inv_entries[self.inv_offsets[target]..self.inv_offsets[target + 1]]
            .iter()
            .map(|&(m, _)| m as usize)
            .collect()
    }

    /// Processes all trace slots with start time `< now` that have not
    /// been processed yet: every online monitor pings its targets once
    /// per slot, then per-target aggregates are refreshed. Chopping the
    /// advance into several calls is identical to one big call.
    pub fn step_to(&mut self, trace: &ChurnTrace, now: SimTime) {
        let slot_ms = trace.slot_duration().as_millis();
        let last_slot = ((now.as_millis() / slot_ms) as usize).min(trace.num_slots() - 1);
        while self.next_slot <= last_slot {
            self.process_slot(trace, self.next_slot);
            self.next_slot += 1;
        }
    }

    /// One slot of the monitoring pipeline, in two parallel phases.
    fn process_slot(&mut self, trace: &ChurnTrace, slot: usize) {
        let n = trace.num_nodes();
        let threads = self.threads;
        // Ping phase — parallel over monitors. Every monitor owns the
        // disjoint arena range `target_offsets[m]..target_offsets[m+1]`,
        // carved into per-monitor lanes up front; loss draws come from
        // the monitor-slot's keyed stream, in target (CSR) order.
        {
            let config = self.config;
            let seed = self.seed;
            let target_ids = &self.target_ids;
            let target_offsets = &self.target_offsets;
            let mut lanes: Vec<&mut [PingEstimator]> = Vec::with_capacity(n);
            let mut rest: &mut [PingEstimator] = &mut self.estimators;
            for m in 0..n {
                let len = target_offsets[m + 1] - target_offsets[m];
                let (lane, tail) = rest.split_at_mut(len);
                lanes.push(lane);
                rest = tail;
            }
            par_chunks_mut(&mut lanes, 1, threads, |offset, chunk| {
                for (k, lane) in chunk.iter_mut().enumerate() {
                    let m = offset + k;
                    if lane.is_empty() || !trace.is_online_in_slot(m, slot) {
                        continue;
                    }
                    let targets = &target_ids[target_offsets[m]..target_offsets[m + 1]];
                    let mut loss = (config.ping_loss > 0.0).then(|| {
                        SplitMix64::keyed(&[seed, STREAM_PING, m as u64, slot as u64])
                    });
                    for (est, &t) in lane.iter_mut().zip(targets) {
                        // The loss draw happens only for online targets,
                        // mirroring a real ping: a down host loses the
                        // ping deterministically, no coin needed.
                        let answered = trace.is_online_in_slot(t as usize, slot)
                            && loss
                                .as_mut()
                                .map_or(true, |rng| !rng.chance(config.ping_loss));
                        est.record(answered);
                    }
                }
            });
        }
        // Aggregation phase — parallel over targets via the inverted
        // index: median of the online monitors' current estimates, with
        // one reusable median scratch per worker. Entries are ascending
        // by monitor, so the collected values (and their sorted median)
        // match a serial monitor scan exactly.
        {
            let config = self.config;
            let estimators = &self.estimators;
            let inv_offsets = &self.inv_offsets;
            let inv_entries = &self.inv_entries;
            par_chunks_mut(&mut self.aggregate, 1, threads, |offset, chunk| {
                let mut values: Vec<f64> = Vec::new();
                for (k, slot_agg) in chunk.iter_mut().enumerate() {
                    let t = offset + k;
                    values.clear();
                    for &(m, est) in &inv_entries[inv_offsets[t]..inv_offsets[t + 1]] {
                        if !trace.is_online_in_slot(m as usize, slot) {
                            continue;
                        }
                        let estimator = &estimators[est as usize];
                        let est = if config.use_aged {
                            estimator.aged()
                        } else {
                            estimator.raw()
                        };
                        if let Some(av) = est {
                            values.push(av.value());
                        }
                    }
                    if !values.is_empty() {
                        values.sort_by(|a, b| {
                            a.partial_cmp(b).expect("estimates are never NaN")
                        });
                        let median = values[values.len() / 2];
                        *slot_agg = Some(Availability::saturating(median));
                    }
                    // else: keep the stale cached aggregate (or None).
                }
            });
        }
    }

    /// Number of slots processed so far.
    pub fn slots_processed(&self) -> usize {
        self.next_slot
    }

    /// Mean absolute estimation error against the trace's ground truth,
    /// over targets with an estimate.
    pub fn mean_absolute_error(&self, trace: &ChurnTrace) -> Option<f64> {
        let mut total = 0.0;
        let mut count = 0usize;
        for (i, est) in self.aggregate.iter().enumerate() {
            if let Some(av) = est {
                total += (av.value() - trace.long_term_availability(i).value()).abs();
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(total / count as f64)
        }
    }
}

impl AvailabilityOracle for AvmonService {
    fn estimate(&self, _querier: NodeId, target: NodeId, _now: SimTime) -> Option<Availability> {
        self.aggregate.get(target.raw() as usize).copied().flatten()
    }
}

/// Staleness period helper: the paper refreshes AVMEM entries every 20
/// minutes; AVMON estimates refresh once per trace slot. This constant is
/// the paper's default refresh period.
pub const DEFAULT_REFRESH_PERIOD: SimDuration = SimDuration::from_mins(20);

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_trace::OvernetModel;

    fn small_trace() -> ChurnTrace {
        OvernetModel::default().hosts(80).days(2).generate(5)
    }

    #[test]
    fn estimates_appear_after_stepping() {
        let trace = small_trace();
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let q = NodeId::new(0);
        assert!(service.estimate(q, NodeId::new(1), SimTime::ZERO).is_none());
        service.step_to(&trace, SimTime::ZERO + SimDuration::from_hours(24));
        let known = (0..trace.num_nodes())
            .filter(|&i| service.estimate(q, trace.node_id(i), SimTime::ZERO).is_some())
            .count();
        assert!(known > trace.num_nodes() / 2, "only {known} known");
    }

    #[test]
    fn estimates_converge_to_truth() {
        let trace = small_trace();
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        service.step_to(&trace, SimTime::ZERO + trace.duration());
        let mae = service.mean_absolute_error(&trace).unwrap();
        assert!(mae < 0.12, "mean absolute error {mae} too large");
    }

    #[test]
    fn ping_loss_biases_estimates_down() {
        let trace = small_trace();
        let mut clean = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let lossy_cfg = AvmonConfig {
            ping_loss: 0.4,
            ..AvmonConfig::default()
        };
        let mut lossy = AvmonService::new(&trace, lossy_cfg, 1);
        let end = SimTime::ZERO + trace.duration();
        clean.step_to(&trace, end);
        lossy.step_to(&trace, end);
        let q = NodeId::new(0);
        let mut clean_sum = 0.0;
        let mut lossy_sum = 0.0;
        let mut count = 0;
        for i in 0..trace.num_nodes() {
            let x = trace.node_id(i);
            if let (Some(c), Some(l)) = (
                clean.estimate(q, x, end),
                lossy.estimate(q, x, end),
            ) {
                clean_sum += c.value();
                lossy_sum += l.value();
                count += 1;
            }
        }
        assert!(count > 0);
        assert!(
            lossy_sum < clean_sum,
            "loss should depress estimates: lossy {lossy_sum} vs clean {clean_sum}"
        );
    }

    #[test]
    fn stepping_is_idempotent_for_same_time() {
        let trace = small_trace();
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let t = SimTime::ZERO + SimDuration::from_hours(6);
        service.step_to(&trace, t);
        let processed = service.slots_processed();
        service.step_to(&trace, t);
        assert_eq!(service.slots_processed(), processed);
    }

    #[test]
    fn aggregates_persist_when_monitors_go_offline() {
        // Even in harsh churn some aggregate survives via caching.
        let trace = OvernetModel::default()
            .hosts(60)
            .days(1)
            .mixture(1.0, (0.05, 0.2), 0.0, (0.5, 0.5), (0.9, 1.0))
            .generate(8);
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 2);
        service.step_to(&trace, SimTime::ZERO + trace.duration());
        let q = NodeId::new(0);
        let known = (0..trace.num_nodes())
            .filter(|&i| service.estimate(q, trace.node_id(i), SimTime::ZERO).is_some())
            .count();
        assert!(known > 0, "no estimates survived");
    }

    #[test]
    fn aged_mode_serves_estimates() {
        let trace = small_trace();
        let cfg = AvmonConfig {
            use_aged: true,
            ..AvmonConfig::default()
        };
        let mut service = AvmonService::new(&trace, cfg, 1);
        service.step_to(&trace, SimTime::ZERO + SimDuration::from_hours(12));
        let q = NodeId::new(0);
        let known = (0..trace.num_nodes())
            .filter(|&i| service.estimate(q, trace.node_id(i), SimTime::ZERO).is_some())
            .count();
        assert!(known > 0);
    }

    #[test]
    fn monitors_of_index_matches_assignment() {
        let trace = small_trace();
        let service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        for target in [0usize, 5, 41, 79] {
            let monitors = service.monitors_of_index(target);
            // Sorted ascending, no duplicates, and exactly the nodes the
            // assignment rule names.
            assert!(monitors.windows(2).all(|w| w[0] < w[1]));
            let expected: Vec<usize> = (0..trace.num_nodes())
                .filter(|&m| {
                    service
                        .assignment()
                        .is_monitor(trace.node_id(m), trace.node_id(target))
                })
                .collect();
            assert_eq!(monitors, expected, "target {target}");
        }
    }

    #[test]
    fn forward_and_inverted_indexes_agree() {
        let trace = small_trace();
        let service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let n = trace.num_nodes();
        // Every forward (m → t) edge appears exactly once inverted, and
        // its arena index points back into monitor m's lane.
        let mut seen = 0usize;
        for t in 0..n {
            for &(m, est) in
                &service.inv_entries[service.inv_offsets[t]..service.inv_offsets[t + 1]]
            {
                let (m, est) = (m as usize, est as usize);
                assert!(est >= service.target_offsets[m]);
                assert!(est < service.target_offsets[m + 1]);
                assert_eq!(service.target_ids[est] as usize, t);
                seen += 1;
            }
        }
        assert_eq!(seen, service.target_ids.len());
    }
}
