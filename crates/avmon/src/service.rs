//! The full simulation-backed AVMON service.
//!
//! [`AvmonService`] runs the complete monitoring pipeline over a churn
//! trace: consistent monitor assignment, per-slot pinging by online
//! monitors, per-target estimate aggregation (median of monitor
//! estimates), and caching of the last aggregate for targets whose
//! monitors are all offline. Queries therefore exhibit the exact
//! imperfections the paper's §4.1 attack analysis attributes to AVMON:
//! estimates are stale (refreshed once per probe slot), noisy (monitors
//! ping at finite rate, pings can be lost), and slightly inconsistent
//! over time.

use avmem_sim::{SimDuration, SimTime};
use avmem_trace::ChurnTrace;
use avmem_util::{Availability, NodeId, Rng, SplitMix64};
use serde::{Deserialize, Serialize};

use crate::assignment::MonitorAssignment;
use crate::estimator::PingEstimator;
use crate::oracle::AvailabilityOracle;

/// Configuration of the AVMON service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvmonConfig {
    /// Expected number of monitors per node (`cms`).
    pub cms: f64,
    /// EWMA smoothing factor for aged estimates.
    pub alpha: f64,
    /// Probability that a ping to an *online* target is lost anyway.
    pub ping_loss: f64,
    /// Serve aged (EWMA) estimates instead of raw lifetime fractions.
    pub use_aged: bool,
}

impl Default for AvmonConfig {
    fn default() -> Self {
        AvmonConfig {
            cms: 8.0,
            alpha: 0.05,
            ping_loss: 0.0,
            use_aged: false,
        }
    }
}

/// A ping-based availability monitoring service over a churn trace.
///
/// Drive it forward with [`AvmonService::step_to`]; query it through the
/// [`AvailabilityOracle`] impl. Estimates reflect only the slots
/// processed so far.
///
/// # Examples
///
/// ```
/// use avmem_avmon::{AvailabilityOracle, AvmonConfig, AvmonService};
/// use avmem_sim::{SimDuration, SimTime};
/// use avmem_trace::OvernetModel;
/// use avmem_util::NodeId;
///
/// let trace = OvernetModel::default().hosts(60).days(1).generate(3);
/// let mut service = AvmonService::new(&trace, AvmonConfig::default(), 42);
/// let noon = SimTime::ZERO + SimDuration::from_hours(12);
/// service.step_to(&trace, noon);
/// // After half a day of pinging, most nodes have estimates.
/// let known = (0..60)
///     .filter(|&i| service.estimate(NodeId::new(0), NodeId::new(i), noon).is_some())
///     .count();
/// assert!(known > 30);
/// ```
#[derive(Debug, Clone)]
pub struct AvmonService {
    config: AvmonConfig,
    assignment: MonitorAssignment,
    /// `targets[m]` = indices of the nodes monitor `m` observes.
    targets: Vec<Vec<usize>>,
    /// `estimators[m][k]` = estimator of monitor `m` for `targets[m][k]`.
    estimators: Vec<Vec<PingEstimator>>,
    /// Aggregated (median) estimate per target, refreshed each processed
    /// slot from the monitors online in that slot; retains the previous
    /// value when no monitor is online (staleness).
    aggregate: Vec<Option<Availability>>,
    next_slot: usize,
    rng: SplitMix64,
}

impl AvmonService {
    /// Builds the service for a trace population: computes the consistent
    /// monitor assignment and empty estimators. `seed` drives ping-loss
    /// randomness only.
    pub fn new(trace: &ChurnTrace, config: AvmonConfig, seed: u64) -> Self {
        let n = trace.num_nodes();
        let assignment = MonitorAssignment::new(config.cms, n as f64);
        let mut targets = vec![Vec::new(); n];
        for (m, monitor_targets) in targets.iter_mut().enumerate() {
            let m_id = trace.node_id(m);
            for x in 0..n {
                if assignment.is_monitor(m_id, trace.node_id(x)) {
                    monitor_targets.push(x);
                }
            }
        }
        let estimators = targets
            .iter()
            .map(|ts| ts.iter().map(|_| PingEstimator::new(config.alpha)).collect())
            .collect();
        AvmonService {
            config,
            assignment,
            targets,
            estimators,
            aggregate: vec![None; n],
            next_slot: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The monitor-assignment rule in force.
    pub fn assignment(&self) -> MonitorAssignment {
        self.assignment
    }

    /// The monitors of `target` (by index) in this population.
    pub fn monitors_of_index(&self, target: usize) -> Vec<usize> {
        (0..self.targets.len())
            .filter(|&m| self.targets[m].contains(&target))
            .collect()
    }

    /// Processes all trace slots with start time `< now` that have not
    /// been processed yet: every online monitor pings its targets once
    /// per slot, then per-target aggregates are refreshed.
    pub fn step_to(&mut self, trace: &ChurnTrace, now: SimTime) {
        let slot_ms = trace.slot_duration().as_millis();
        let last_slot = ((now.as_millis() / slot_ms) as usize).min(trace.num_slots() - 1);
        while self.next_slot <= last_slot {
            self.process_slot(trace, self.next_slot);
            self.next_slot += 1;
        }
    }

    fn process_slot(&mut self, trace: &ChurnTrace, slot: usize) {
        let n = trace.num_nodes();
        // Ping phase.
        for m in 0..n {
            if !trace.is_online_in_slot(m, slot) {
                continue;
            }
            for (k, &t) in self.targets[m].clone().iter().enumerate() {
                let target_online = trace.is_online_in_slot(t, slot);
                let answered =
                    target_online && !(self.config.ping_loss > 0.0 && self.rng.chance(self.config.ping_loss));
                self.estimators[m][k].record(answered);
            }
        }
        // Aggregation phase: median over online monitors' estimates.
        for target in 0..n {
            let mut values: Vec<f64> = Vec::new();
            for m in 0..n {
                if !trace.is_online_in_slot(m, slot) {
                    continue;
                }
                if let Some(k) = self.targets[m].iter().position(|&t| t == target) {
                    let est = if self.config.use_aged {
                        self.estimators[m][k].aged()
                    } else {
                        self.estimators[m][k].raw()
                    };
                    if let Some(av) = est {
                        values.push(av.value());
                    }
                }
            }
            if !values.is_empty() {
                values.sort_by(|a, b| a.partial_cmp(b).expect("estimates are never NaN"));
                let median = values[values.len() / 2];
                self.aggregate[target] = Some(Availability::saturating(median));
            }
            // else: keep the stale cached aggregate (or None).
        }
    }

    /// Number of slots processed so far.
    pub fn slots_processed(&self) -> usize {
        self.next_slot
    }

    /// Mean absolute estimation error against the trace's ground truth,
    /// over targets with an estimate.
    pub fn mean_absolute_error(&self, trace: &ChurnTrace) -> Option<f64> {
        let mut total = 0.0;
        let mut count = 0usize;
        for (i, est) in self.aggregate.iter().enumerate() {
            if let Some(av) = est {
                total += (av.value() - trace.long_term_availability(i).value()).abs();
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(total / count as f64)
        }
    }
}

impl AvailabilityOracle for AvmonService {
    fn estimate(&self, _querier: NodeId, target: NodeId, _now: SimTime) -> Option<Availability> {
        self.aggregate.get(target.raw() as usize).copied().flatten()
    }
}

/// Staleness period helper: the paper refreshes AVMEM entries every 20
/// minutes; AVMON estimates refresh once per trace slot. This constant is
/// the paper's default refresh period.
pub const DEFAULT_REFRESH_PERIOD: SimDuration = SimDuration::from_mins(20);

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_trace::OvernetModel;

    fn small_trace() -> ChurnTrace {
        OvernetModel::default().hosts(80).days(2).generate(5)
    }

    #[test]
    fn estimates_appear_after_stepping() {
        let trace = small_trace();
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let q = NodeId::new(0);
        assert!(service.estimate(q, NodeId::new(1), SimTime::ZERO).is_none());
        service.step_to(&trace, SimTime::ZERO + SimDuration::from_hours(24));
        let known = (0..trace.num_nodes())
            .filter(|&i| service.estimate(q, trace.node_id(i), SimTime::ZERO).is_some())
            .count();
        assert!(known > trace.num_nodes() / 2, "only {known} known");
    }

    #[test]
    fn estimates_converge_to_truth() {
        let trace = small_trace();
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        service.step_to(&trace, SimTime::ZERO + trace.duration());
        let mae = service.mean_absolute_error(&trace).unwrap();
        assert!(mae < 0.12, "mean absolute error {mae} too large");
    }

    #[test]
    fn ping_loss_biases_estimates_down() {
        let trace = small_trace();
        let mut clean = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let lossy_cfg = AvmonConfig {
            ping_loss: 0.4,
            ..AvmonConfig::default()
        };
        let mut lossy = AvmonService::new(&trace, lossy_cfg, 1);
        let end = SimTime::ZERO + trace.duration();
        clean.step_to(&trace, end);
        lossy.step_to(&trace, end);
        let q = NodeId::new(0);
        let mut clean_sum = 0.0;
        let mut lossy_sum = 0.0;
        let mut count = 0;
        for i in 0..trace.num_nodes() {
            let x = trace.node_id(i);
            if let (Some(c), Some(l)) = (
                clean.estimate(q, x, end),
                lossy.estimate(q, x, end),
            ) {
                clean_sum += c.value();
                lossy_sum += l.value();
                count += 1;
            }
        }
        assert!(count > 0);
        assert!(
            lossy_sum < clean_sum,
            "loss should depress estimates: lossy {lossy_sum} vs clean {clean_sum}"
        );
    }

    #[test]
    fn stepping_is_idempotent_for_same_time() {
        let trace = small_trace();
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let t = SimTime::ZERO + SimDuration::from_hours(6);
        service.step_to(&trace, t);
        let processed = service.slots_processed();
        service.step_to(&trace, t);
        assert_eq!(service.slots_processed(), processed);
    }

    #[test]
    fn aggregates_persist_when_monitors_go_offline() {
        // Even in harsh churn some aggregate survives via caching.
        let trace = OvernetModel::default()
            .hosts(60)
            .days(1)
            .mixture(1.0, (0.05, 0.2), 0.0, (0.5, 0.5), (0.9, 1.0))
            .generate(8);
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 2);
        service.step_to(&trace, SimTime::ZERO + trace.duration());
        let q = NodeId::new(0);
        let known = (0..trace.num_nodes())
            .filter(|&i| service.estimate(q, trace.node_id(i), SimTime::ZERO).is_some())
            .count();
        assert!(known > 0, "no estimates survived");
    }

    #[test]
    fn aged_mode_serves_estimates() {
        let trace = small_trace();
        let cfg = AvmonConfig {
            use_aged: true,
            ..AvmonConfig::default()
        };
        let mut service = AvmonService::new(&trace, cfg, 1);
        service.step_to(&trace, SimTime::ZERO + SimDuration::from_hours(12));
        let q = NodeId::new(0);
        let known = (0..trace.num_nodes())
            .filter(|&i| service.estimate(q, trace.node_id(i), SimTime::ZERO).is_some())
            .count();
        assert!(known > 0);
    }

    #[test]
    fn monitors_of_index_matches_assignment() {
        let trace = small_trace();
        let service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let monitors = service.monitors_of_index(5);
        for m in monitors {
            assert!(service
                .assignment()
                .is_monitor(trace.node_id(m), trace.node_id(5)));
        }
    }
}
