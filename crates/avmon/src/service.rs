//! The full simulation-backed AVMON service.
//!
//! [`AvmonService`] runs the complete monitoring pipeline over a churn
//! trace: consistent monitor assignment, per-slot pinging by online
//! monitors, per-target estimate aggregation (median of monitor
//! estimates), and caching of the last aggregate for targets whose
//! monitors are all offline. Queries therefore exhibit the exact
//! imperfections the paper's §4.1 attack analysis attributes to AVMON:
//! estimates are stale (refreshed once per probe slot), noisy (monitors
//! ping at finite rate, pings can be lost), and slightly inconsistent
//! over time.
//!
//! # Architecture
//!
//! The service is laid out for bulk slot sweeps rather than per-node
//! stepping, with one index layout per assignment strategy
//! ([`AssignmentChoice`]):
//!
//! * **All-pairs** — the monitor relation is stored twice, as build-once
//!   CSR indexes (u32 offsets; the relation is static, so churn never
//!   touches them) — forward (`monitor → targets`) for the ping phase
//!   and inverted (`target → (monitor, estimator)`) for the aggregation
//!   phase — plus a flat columnar estimator arena aligned with the
//!   forward index;
//! * **Ring** — the relation churns incrementally, so the inverted index
//!   is *fixed-width*: every target owns exactly `k` monitor slots
//!   (`u32::MAX` = vacant) with the estimator arena aligned slot for
//!   slot. A join/leave delta rewrites a few rows in place — vacated
//!   slots are recycled for the incoming monitors, surviving edges keep
//!   their estimator history — instead of rebuilding anything. Before a
//!   slot is processed, the membership transitions since the last
//!   processed slot are replayed through [`RingAssignment::join`] /
//!   [`RingAssignment::leave`], which is how trace churn drives
//!   incremental reassignment.
//!
//! Ping-loss randomness is **counter-keyed**: per `(seed, monitor,
//! slot)` stream in the all-pairs layout (a monitor's row is a fixed
//! target sequence) and per `(seed, monitor, target, slot)` stream in
//! the ring layout (rows mutate, so each edge draws independently).
//! Either way the outcome of a slot is a pure function of the key
//! material — independent of processing order and thread count.
//! [`AvmonService::step_to`] processes each slot in **two parallel
//! phases** over the persistent worker pool ([`avmem_util::parallel`]).
//!
//! Results are bit-identical for every thread count; the
//! `service_equivalence` and `ring_incremental` integration tests pin
//! both pipelines to serial from-scratch references.

use avmem_sim::{SimDuration, SimTime};
use avmem_trace::ChurnTrace;
use avmem_util::parallel::{default_threads, par_chunks_mut, par_each_mut};
use avmem_util::ShardPartition;
use avmem_util::{Availability, NodeId, Rng, SplitMix64};
use serde::{Deserialize, Serialize};

use crate::assignment::{MonitorAssignment, RingAssignment};
use crate::estimator::PingEstimator;
use crate::oracle::AvailabilityOracle;

/// Purpose tag of the all-pairs ping-loss streams: every draw comes from
/// `SplitMix64::keyed(&[seed, STREAM_PING, monitor, slot])`, so a
/// monitor-slot's losses are a property of the key, never of which
/// worker processed the monitor or in which order.
const STREAM_PING: u64 = 0x4156_4d4f_4e50;

/// Purpose tag of the ring-layout ping-loss streams, keyed per edge:
/// `SplitMix64::keyed(&[seed, STREAM_PING_EDGE, monitor, target, slot])`.
/// Ring rows mutate under churn, so a per-monitor sequential stream
/// would tie outcomes to row order; per-edge keys make each ping a pure
/// function of who pings whom and when.
const STREAM_PING_EDGE: u64 = 0x4156_4d4f_4e51;

/// A vacant slot in the ring layout's fixed-width monitor rows.
const NO_MONITOR: u32 = u32::MAX;

/// Which monitor-assignment strategy the service builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AssignmentChoice {
    /// The paper's all-pairs hash-threshold rule: O(N²) build, exact
    /// reference randomness, no incremental membership.
    #[default]
    AllPairs,
    /// Consistent-hash-ring successors: O(N log N) build, O(k)
    /// incremental join/leave as the trace churns.
    Ring {
        /// Virtual ring points per monitor (load-balance knob).
        vnodes: u32,
        /// Monitors per target (the ring's analogue of `cms`).
        k: u32,
    },
}

/// Configuration of the AVMON service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvmonConfig {
    /// Expected number of monitors per node (`cms`) — the all-pairs
    /// strategy's density knob.
    pub cms: f64,
    /// EWMA smoothing factor for aged estimates.
    pub alpha: f64,
    /// Probability that a ping to an *online* target is lost anyway.
    pub ping_loss: f64,
    /// Serve aged (EWMA) estimates instead of raw lifetime fractions.
    pub use_aged: bool,
    /// Monitor-assignment strategy (all-pairs reference by default).
    pub assignment: AssignmentChoice,
}

impl Default for AvmonConfig {
    fn default() -> Self {
        AvmonConfig {
            cms: 8.0,
            alpha: 0.05,
            ping_loss: 0.0,
            use_aged: false,
            assignment: AssignmentChoice::AllPairs,
        }
    }
}

/// The strategy-specific monitor indexes and estimator arena.
#[derive(Debug, Clone)]
enum MonitorIndex {
    /// Build-once CSR pair for the static all-pairs relation.
    AllPairs {
        /// Forward CSR: monitor `m` observes
        /// `target_ids[target_offsets[m]..target_offsets[m + 1]]`.
        target_offsets: Vec<u32>,
        target_ids: Vec<u32>,
        /// Flat estimator arena aligned with the forward index.
        estimators: Vec<PingEstimator>,
        /// Inverted CSR: target `t` is observed by
        /// `inv_entries[inv_offsets[t]..inv_offsets[t + 1]]`, each entry
        /// a `(monitor, arena index)` pair, ascending by monitor.
        inv_offsets: Vec<u32>,
        inv_entries: Vec<(u32, u32)>,
    },
    /// Fixed-width inverted rows for the churning ring relation.
    Ring {
        /// Monitors per target (row width).
        k: usize,
        /// Row `t` is `monitors[t * k..(t + 1) * k]`; [`NO_MONITOR`]
        /// marks a vacant slot (ring smaller than `k + 1` members).
        monitors: Vec<u32>,
        /// Estimator arena aligned slot for slot with `monitors`.
        estimators: Vec<PingEstimator>,
        /// Trace slot whose online set the ring currently reflects.
        synced_slot: usize,
    },
}

/// A ping-based availability monitoring service over a churn trace.
///
/// Drive it forward with [`AvmonService::step_to`]; query it through the
/// [`AvailabilityOracle`] impl. Estimates reflect only the slots
/// processed so far.
///
/// # Examples
///
/// ```
/// use avmem_avmon::{AvailabilityOracle, AvmonConfig, AvmonService};
/// use avmem_sim::{SimDuration, SimTime};
/// use avmem_trace::OvernetModel;
/// use avmem_util::NodeId;
///
/// let trace = OvernetModel::default().hosts(60).days(1).generate(3);
/// let mut service = AvmonService::new(&trace, AvmonConfig::default(), 42);
/// let noon = SimTime::ZERO + SimDuration::from_hours(12);
/// service.step_to(&trace, noon);
/// // After half a day of pinging, most nodes have estimates.
/// let known = (0..60)
///     .filter(|&i| service.estimate(NodeId::new(0), NodeId::new(i), noon).is_some())
///     .count();
/// assert!(known > 30);
/// ```
#[derive(Debug, Clone)]
pub struct AvmonService {
    config: AvmonConfig,
    assignment: MonitorAssignment,
    /// Seed of the counter-keyed ping-loss streams.
    seed: u64,
    /// Chunk fan-out for the parallel slot phases. Results are
    /// bit-identical for every value; see [`AvmonService::set_threads`].
    threads: usize,
    /// Shard count partitioning the node-indexed slot phases (estimator
    /// arena, aggregation) by owning shard; see
    /// [`AvmonService::set_shards`].
    shards: usize,
    index: MonitorIndex,
    /// Aggregated (median) estimate per target, refreshed each processed
    /// slot from the monitors online in that slot; retains the previous
    /// value when no monitor is online (staleness).
    aggregate: Vec<Option<Availability>>,
    next_slot: usize,
    /// Slot-advance cost instruments, present once
    /// [`AvmonService::set_metrics`] attaches a registry.
    metrics: Option<SlotInstruments>,
}

#[derive(Debug, Clone)]
struct SlotInstruments {
    slots: avmem_metrics::Counter,
    slot_us: avmem_metrics::Histogram,
}

impl AvmonService {
    /// Builds the service for a trace population under the strategy in
    /// `config.assignment`. All-pairs computes the full O(N²) relation
    /// (rows hashed in parallel over the worker pool); ring places the
    /// slot-0 online set on the ring and fills the fixed-width rows in
    /// O(N (k + vnodes) log N). `seed` drives ping-loss randomness only.
    pub fn new(trace: &ChurnTrace, config: AvmonConfig, seed: u64) -> Self {
        let n = trace.num_nodes();
        let (assignment, index) = match config.assignment {
            AssignmentChoice::AllPairs => {
                let assignment = MonitorAssignment::new(config.cms, n as f64);
                let index = build_all_pairs_index(trace, &assignment);
                (assignment, index)
            }
            AssignmentChoice::Ring { vnodes, k } => {
                let members = (0..n as u32).filter(|&i| trace.is_online_in_slot(i as usize, 0));
                let ring = RingAssignment::new(n, vnodes, k, members);
                let index = build_ring_index(&ring, n);
                (MonitorAssignment::Ring(ring), index)
            }
        };
        AvmonService {
            config,
            assignment,
            seed,
            threads: default_threads(),
            shards: default_threads(),
            index,
            aggregate: vec![None; n],
            next_slot: 0,
            metrics: None,
        }
    }

    /// Attaches a metrics registry: every processed slot counts into
    /// `avmem_avmon_slots_total` and records its wall cost into the
    /// `avmem_avmon_slot_us` histogram. Observation only — estimates
    /// are bit-identical with or without a registry.
    pub fn set_metrics(&mut self, registry: &avmem_metrics::Registry) {
        self.metrics = Some(SlotInstruments {
            slots: registry.counter(
                "avmem_avmon_slots_total",
                "Trace slots processed by the AVMON service.",
                &[],
            ),
            slot_us: registry.histogram(
                "avmem_avmon_slot_us",
                "Wall cost per processed AVMON slot (µs).",
                &[],
            ),
        });
    }

    /// Whether the service runs the ring assignment strategy (vs the
    /// paper's all-pairs relation).
    pub fn is_ring_assignment(&self) -> bool {
        matches!(self.config.assignment, AssignmentChoice::Ring { .. })
    }

    /// The monitor-assignment strategy in force.
    pub fn assignment(&self) -> &MonitorAssignment {
        &self.assignment
    }

    /// Sets the chunk fan-out of the parallel slot phases. Purely a
    /// performance knob: every thread count produces bit-identical
    /// estimates (randomness is keyed, and the two phases write disjoint
    /// state), which the `service_equivalence` tests pin.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Sets the shard count partitioning the node-indexed slot phases —
    /// each shard owns the contiguous estimator-arena and aggregate rows
    /// of its nodes, matching the maintenance harness's ownership map.
    /// Purely a performance knob: every shard count produces
    /// bit-identical estimates (per-edge randomness is keyed and every
    /// row's computation is independent), which the fan-out invariance
    /// tests pin.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// The monitors of `target` (by index) in this population, ascending:
    /// served by the inverted CSR row (all-pairs) or the fixed-width row
    /// (ring), either way in `O(monitors of target)`.
    pub fn monitors_of_index(&self, target: usize) -> Vec<usize> {
        match &self.index {
            MonitorIndex::AllPairs {
                inv_offsets,
                inv_entries,
                ..
            } => inv_entries
                [inv_offsets[target] as usize..inv_offsets[target + 1] as usize]
                .iter()
                .map(|&(m, _)| m as usize)
                .collect(),
            MonitorIndex::Ring { k, monitors, .. } => {
                let mut row: Vec<usize> = monitors[target * k..(target + 1) * k]
                    .iter()
                    .filter(|&&m| m != NO_MONITOR)
                    .map(|&m| m as usize)
                    .collect();
                row.sort_unstable();
                row
            }
        }
    }

    /// Processes all trace slots with start time `< now` that have not
    /// been processed yet: every online monitor pings its targets once
    /// per slot, then per-target aggregates are refreshed. Chopping the
    /// advance into several calls is identical to one big call.
    pub fn step_to(&mut self, trace: &ChurnTrace, now: SimTime) {
        let slot_ms = trace.slot_duration().as_millis();
        let last_slot = ((now.as_millis() / slot_ms) as usize).min(trace.num_slots() - 1);
        while self.next_slot <= last_slot {
            let t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
            self.process_slot(trace, self.next_slot);
            if let (Some(m), Some(t0)) = (self.metrics.as_ref(), t0) {
                m.slots.inc();
                m.slot_us.record(t0.elapsed().as_micros() as u64);
            }
            self.next_slot += 1;
        }
    }

    /// One slot of the monitoring pipeline: ring resync (if churning),
    /// then the two parallel phases, each partitioned into shard-owned
    /// contiguous slices of the node-indexed state.
    fn process_slot(&mut self, trace: &ChurnTrace, slot: usize) {
        self.sync_ring_to(trace, slot);
        let threads = self.threads;
        let shards = self.shards;
        let config = self.config;
        let seed = self.seed;
        // Ping phase — parallel, writing only the estimator arena.
        match &mut self.index {
            MonitorIndex::AllPairs {
                target_offsets,
                target_ids,
                estimators,
                ..
            } => {
                // Parallel over monitors: every monitor owns the disjoint
                // arena range `target_offsets[m]..target_offsets[m+1]`,
                // carved into per-monitor lanes up front; loss draws come
                // from the monitor-slot's keyed stream, in target (CSR)
                // order.
                let n = target_offsets.len() - 1;
                let mut lanes: Vec<&mut [PingEstimator]> = Vec::with_capacity(n);
                let mut rest: &mut [PingEstimator] = estimators;
                for m in 0..n {
                    let len = (target_offsets[m + 1] - target_offsets[m]) as usize;
                    let (lane, tail) = rest.split_at_mut(len);
                    lanes.push(lane);
                    rest = tail;
                }
                let target_ids = &*target_ids;
                let target_offsets = &*target_offsets;
                let part = ShardPartition::new(n, shards);
                let mut tasks = shard_slices(part, 1, &mut lanes);
                par_each_mut(&mut tasks, threads, |_, (offset, chunk)| {
                    let offset = *offset;
                    for (j, lane) in chunk.iter_mut().enumerate() {
                        let m = offset + j;
                        if lane.is_empty() || !trace.is_online_in_slot(m, slot) {
                            continue;
                        }
                        let targets = &target_ids
                            [target_offsets[m] as usize..target_offsets[m + 1] as usize];
                        let mut loss = (config.ping_loss > 0.0).then(|| {
                            SplitMix64::keyed(&[seed, STREAM_PING, m as u64, slot as u64])
                        });
                        for (est, &t) in lane.iter_mut().zip(targets) {
                            // The loss draw happens only for online
                            // targets, mirroring a real ping: a down host
                            // loses the ping deterministically, no coin
                            // needed.
                            let answered = trace.is_online_in_slot(t as usize, slot)
                                && loss
                                    .as_mut()
                                    .map_or(true, |rng| !rng.chance(config.ping_loss));
                            est.record(answered, config.alpha);
                        }
                    }
                });
            }
            MonitorIndex::Ring {
                k,
                monitors,
                estimators,
                ..
            } => {
                // Parallel over shard-owned arena slices (each shard owns
                // its targets' `k`-wide rows): each slot is one
                // (monitor, target) edge with its own keyed loss stream,
                // so outcomes are independent of the partitioning.
                let k = *k;
                let monitors = &*monitors;
                let part = ShardPartition::new(monitors.len() / k, shards);
                let mut tasks = shard_slices(part, k, estimators);
                par_each_mut(&mut tasks, threads, |_, (start, chunk)| {
                    let offset = *start * k;
                    for (j, est) in chunk.iter_mut().enumerate() {
                        let idx = offset + j;
                        let m = monitors[idx];
                        if m == NO_MONITOR || !trace.is_online_in_slot(m as usize, slot) {
                            continue;
                        }
                        let t = (idx / k) as u32;
                        let answered = trace.is_online_in_slot(t as usize, slot)
                            && (config.ping_loss <= 0.0 || {
                                let mut rng = SplitMix64::keyed(&[
                                    seed,
                                    STREAM_PING_EDGE,
                                    u64::from(m),
                                    u64::from(t),
                                    slot as u64,
                                ]);
                                !rng.chance(config.ping_loss)
                            });
                        est.record(answered, config.alpha);
                    }
                });
            }
        }
        // Aggregation phase — parallel over shard-owned target slices:
        // median of the online monitors' current estimates, with one
        // reusable median scratch per worker. Values are sorted before
        // taking the median, so collection order never shows in the
        // result.
        {
            let index = &self.index;
            let part = ShardPartition::new(self.aggregate.len(), shards);
            let mut tasks = shard_slices(part, 1, &mut self.aggregate);
            par_each_mut(&mut tasks, threads, |_, (offset, chunk)| {
                let offset = *offset;
                let mut values: Vec<f64> = Vec::new();
                for (j, slot_agg) in chunk.iter_mut().enumerate() {
                    let t = offset + j;
                    values.clear();
                    match index {
                        MonitorIndex::AllPairs {
                            estimators,
                            inv_offsets,
                            inv_entries,
                            ..
                        } => {
                            for &(m, est) in &inv_entries
                                [inv_offsets[t] as usize..inv_offsets[t + 1] as usize]
                            {
                                if !trace.is_online_in_slot(m as usize, slot) {
                                    continue;
                                }
                                push_estimate(&estimators[est as usize], &config, &mut values);
                            }
                        }
                        MonitorIndex::Ring {
                            k,
                            monitors,
                            estimators,
                            ..
                        } => {
                            for (slot_idx, &m) in
                                monitors[t * k..(t + 1) * k].iter().enumerate()
                            {
                                if m == NO_MONITOR
                                    || !trace.is_online_in_slot(m as usize, slot)
                                {
                                    continue;
                                }
                                push_estimate(&estimators[t * k + slot_idx], &config, &mut values);
                            }
                        }
                    }
                    if !values.is_empty() {
                        values.sort_by(|a, b| {
                            a.partial_cmp(b).expect("estimates are never NaN")
                        });
                        let median = values[values.len() / 2];
                        *slot_agg = Some(Availability::saturating(median));
                    }
                    // else: keep the stale cached aggregate (or None).
                }
            });
        }
    }

    /// Ring strategy only: replays the trace's online-set transitions
    /// from the last synced slot up to `slot` through the ring's
    /// incremental join/leave, then repairs the affected fixed-width
    /// rows in place — surviving edges keep their estimator history,
    /// vacated slots are recycled (with a fresh estimator) for incoming
    /// monitors. This is where churn events become O(k) assignment
    /// deltas instead of rebuilds.
    fn sync_ring_to(&mut self, trace: &ChurnTrace, slot: usize) {
        let MonitorIndex::Ring {
            k,
            monitors,
            estimators,
            synced_slot,
        } = &mut self.index
        else {
            return;
        };
        let MonitorAssignment::Ring(ring) = &mut self.assignment else {
            unreachable!("ring index without ring assignment");
        };
        let n = trace.num_nodes();
        while *synced_slot < slot {
            let prev = *synced_slot;
            let next = prev + 1;
            let mut affected: Vec<u32> = Vec::new();
            for i in 0..n {
                let was = trace.is_online_in_slot(i, prev);
                let is = trace.is_online_in_slot(i, next);
                if was == is {
                    continue;
                }
                let delta = if is {
                    ring.join(i as u32)
                } else {
                    ring.leave(i as u32)
                };
                affected.extend_from_slice(&delta);
            }
            affected.sort_unstable();
            affected.dedup();
            for &t in &affected {
                let t = t as usize;
                let new_set = ring.monitors_of_index(t as u32);
                let row = &mut monitors[t * *k..(t + 1) * *k];
                // Evict monitors no longer assigned; keep survivors in
                // their slots so their estimator history continues.
                for entry in row.iter_mut() {
                    if *entry != NO_MONITOR && !new_set.contains(entry) {
                        *entry = NO_MONITOR;
                    }
                }
                // Recycle vacated slots for the incoming monitors, each
                // starting a fresh estimator.
                for m in new_set {
                    if row.contains(&m) {
                        continue;
                    }
                    let free = row
                        .iter()
                        .position(|&e| e == NO_MONITOR)
                        .expect("a k-wide row fits k distinct monitors");
                    row[free] = m;
                    estimators[t * *k + free] = PingEstimator::new();
                }
            }
            *synced_slot = next;
        }
    }

    /// Number of slots processed so far.
    pub fn slots_processed(&self) -> usize {
        self.next_slot
    }

    /// Mean absolute estimation error against the trace's ground truth,
    /// over targets with an estimate.
    pub fn mean_absolute_error(&self, trace: &ChurnTrace) -> Option<f64> {
        let mut total = 0.0;
        let mut count = 0usize;
        for (i, est) in self.aggregate.iter().enumerate() {
            if let Some(av) = est {
                total += (av.value() - trace.long_term_availability(i).value()).abs();
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(total / count as f64)
        }
    }
}

/// Splits a node-indexed arena (`stride` slots per node) into one
/// `(first_node, slice)` task per shard of `part` — the disjoint `&mut`
/// sub-slices each shard owns during a slot phase.
fn shard_slices<T>(
    part: ShardPartition,
    stride: usize,
    items: &mut [T],
) -> Vec<(usize, &mut [T])> {
    debug_assert_eq!(items.len(), part.len() * stride);
    let mut tasks = Vec::with_capacity(part.shards());
    let mut rest = items;
    for s in 0..part.shards() {
        let range = part.range(s);
        let (head, tail) = rest.split_at_mut(range.len() * stride);
        tasks.push((range.start, head));
        rest = tail;
    }
    tasks
}

/// Appends one monitor's current estimate (raw or aged per config) to
/// the aggregation scratch, if the estimator has samples.
fn push_estimate(estimator: &PingEstimator, config: &AvmonConfig, values: &mut Vec<f64>) {
    let est = if config.use_aged {
        estimator.aged()
    } else {
        estimator.raw()
    };
    if let Some(av) = est {
        values.push(av.value());
    }
}

/// The all-pairs build: each monitor's target row is an independent
/// N-scan of the consistent-assignment hash — the O(N²) SHA-256 cost —
/// so rows are computed in parallel, then inverted by counting sort.
fn build_all_pairs_index(trace: &ChurnTrace, assignment: &MonitorAssignment) -> MonitorIndex {
    let n = trace.num_nodes();
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
    par_chunks_mut(&mut rows, 1, default_threads(), |offset, chunk| {
        for (j, row) in chunk.iter_mut().enumerate() {
            let m_id = trace.node_id(offset + j);
            for x in 0..n {
                if assignment.is_monitor(m_id, trace.node_id(x)) {
                    row.push(x as u32);
                }
            }
        }
    });
    let total: usize = rows.iter().map(Vec::len).sum();
    assert!(
        u32::try_from(total).is_ok(),
        "monitor-target pairs exceed the index width"
    );
    let mut target_offsets = Vec::with_capacity(n + 1);
    let mut target_ids = Vec::with_capacity(total);
    target_offsets.push(0u32);
    for row in &rows {
        target_ids.extend_from_slice(row);
        target_offsets.push(target_ids.len() as u32);
    }
    // Invert: count per target, prefix-sum, then one placement pass.
    // Monitors are visited in ascending order, so each target's entries
    // come out sorted by monitor.
    let mut inv_offsets = vec![0u32; n + 1];
    for &t in &target_ids {
        inv_offsets[t as usize + 1] += 1;
    }
    for t in 0..n {
        inv_offsets[t + 1] += inv_offsets[t];
    }
    let mut cursor: Vec<u32> = inv_offsets[..n].to_vec();
    let mut inv_entries = vec![(0u32, 0u32); total];
    for m in 0..n {
        let start = target_offsets[m] as usize;
        for (j, &t) in target_ids[start..target_offsets[m + 1] as usize]
            .iter()
            .enumerate()
        {
            let t = t as usize;
            inv_entries[cursor[t] as usize] = (m as u32, (start + j) as u32);
            cursor[t] += 1;
        }
    }
    MonitorIndex::AllPairs {
        target_offsets,
        target_ids,
        estimators: vec![PingEstimator::new(); total],
        inv_offsets,
        inv_entries,
    }
}

/// The ring build: one `k`-wide row per target, filled from the ring's
/// distinct-successor walks (parallel over rows; the ring is shared
/// read-only).
fn build_ring_index(ring: &RingAssignment, n: usize) -> MonitorIndex {
    let k = ring.k() as usize;
    let mut monitors = vec![NO_MONITOR; n * k];
    par_chunks_mut(&mut monitors, k, default_threads(), |offset, chunk| {
        for (row_idx, row) in chunk.chunks_mut(k).enumerate() {
            let t = (offset / k + row_idx) as u32;
            for (slot, m) in ring.monitors_of_index(t).into_iter().enumerate() {
                row[slot] = m;
            }
        }
    });
    MonitorIndex::Ring {
        k,
        monitors,
        estimators: vec![PingEstimator::new(); n * k],
        synced_slot: 0,
    }
}

impl AvailabilityOracle for AvmonService {
    fn estimate(&self, _querier: NodeId, target: NodeId, _now: SimTime) -> Option<Availability> {
        self.aggregate.get(target.raw() as usize).copied().flatten()
    }

    fn estimate_batch(
        &self,
        _querier: NodeId,
        targets: &[NodeId],
        _now: SimTime,
        out: &mut Vec<Option<Availability>>,
    ) {
        // One gather over the aggregate table instead of N dispatched
        // calls; answers are querier-independent (the aggregated median
        // every client receives).
        out.clear();
        out.extend(
            targets
                .iter()
                .map(|t| self.aggregate.get(t.raw() as usize).copied().flatten()),
        );
    }
}

/// Staleness period helper: the paper refreshes AVMEM entries every 20
/// minutes; AVMON estimates refresh once per trace slot. This constant is
/// the paper's default refresh period.
pub const DEFAULT_REFRESH_PERIOD: SimDuration = SimDuration::from_mins(20);

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_trace::OvernetModel;

    fn small_trace() -> ChurnTrace {
        OvernetModel::default().hosts(80).days(2).generate(5)
    }

    fn ring_config() -> AvmonConfig {
        AvmonConfig {
            assignment: AssignmentChoice::Ring { vnodes: 8, k: 8 },
            ..AvmonConfig::default()
        }
    }

    #[test]
    fn estimates_appear_after_stepping() {
        let trace = small_trace();
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let q = NodeId::new(0);
        assert!(service.estimate(q, NodeId::new(1), SimTime::ZERO).is_none());
        service.step_to(&trace, SimTime::ZERO + SimDuration::from_hours(24));
        let known = (0..trace.num_nodes())
            .filter(|&i| service.estimate(q, trace.node_id(i), SimTime::ZERO).is_some())
            .count();
        assert!(known > trace.num_nodes() / 2, "only {known} known");
    }

    #[test]
    fn estimates_converge_to_truth() {
        let trace = small_trace();
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        service.step_to(&trace, SimTime::ZERO + trace.duration());
        let mae = service.mean_absolute_error(&trace).unwrap();
        assert!(mae < 0.12, "mean absolute error {mae} too large");
    }

    #[test]
    fn ring_estimates_track_truth() {
        // Ring estimates are noisier than all-pairs: every reassignment
        // under churn starts the affected edges' estimators fresh, so
        // observations cover windows, not lifetimes. The bound here is
        // accordingly looser than the all-pairs 0.12.
        let trace = small_trace();
        let mut service = AvmonService::new(&trace, ring_config(), 1);
        service.step_to(&trace, SimTime::ZERO + trace.duration());
        let mae = service.mean_absolute_error(&trace).unwrap();
        assert!(mae < 0.3, "ring mean absolute error {mae} too large");
    }

    #[test]
    fn ping_loss_biases_estimates_down() {
        let trace = small_trace();
        let mut clean = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let lossy_cfg = AvmonConfig {
            ping_loss: 0.4,
            ..AvmonConfig::default()
        };
        let mut lossy = AvmonService::new(&trace, lossy_cfg, 1);
        let end = SimTime::ZERO + trace.duration();
        clean.step_to(&trace, end);
        lossy.step_to(&trace, end);
        let q = NodeId::new(0);
        let mut clean_sum = 0.0;
        let mut lossy_sum = 0.0;
        let mut count = 0;
        for i in 0..trace.num_nodes() {
            let x = trace.node_id(i);
            if let (Some(c), Some(l)) = (
                clean.estimate(q, x, end),
                lossy.estimate(q, x, end),
            ) {
                clean_sum += c.value();
                lossy_sum += l.value();
                count += 1;
            }
        }
        assert!(count > 0);
        assert!(
            lossy_sum < clean_sum,
            "loss should depress estimates: lossy {lossy_sum} vs clean {clean_sum}"
        );
    }

    #[test]
    fn stepping_is_idempotent_for_same_time() {
        let trace = small_trace();
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let t = SimTime::ZERO + SimDuration::from_hours(6);
        service.step_to(&trace, t);
        let processed = service.slots_processed();
        service.step_to(&trace, t);
        assert_eq!(service.slots_processed(), processed);
    }

    #[test]
    fn aggregates_persist_when_monitors_go_offline() {
        // Even in harsh churn some aggregate survives via caching.
        let trace = OvernetModel::default()
            .hosts(60)
            .days(1)
            .mixture(1.0, (0.05, 0.2), 0.0, (0.5, 0.5), (0.9, 1.0))
            .generate(8);
        let mut service = AvmonService::new(&trace, AvmonConfig::default(), 2);
        service.step_to(&trace, SimTime::ZERO + trace.duration());
        let q = NodeId::new(0);
        let known = (0..trace.num_nodes())
            .filter(|&i| service.estimate(q, trace.node_id(i), SimTime::ZERO).is_some())
            .count();
        assert!(known > 0, "no estimates survived");
    }

    #[test]
    fn aged_mode_serves_estimates() {
        let trace = small_trace();
        let cfg = AvmonConfig {
            use_aged: true,
            ..AvmonConfig::default()
        };
        let mut service = AvmonService::new(&trace, cfg, 1);
        service.step_to(&trace, SimTime::ZERO + SimDuration::from_hours(12));
        let q = NodeId::new(0);
        let known = (0..trace.num_nodes())
            .filter(|&i| service.estimate(q, trace.node_id(i), SimTime::ZERO).is_some())
            .count();
        assert!(known > 0);
    }

    #[test]
    fn monitors_of_index_matches_assignment() {
        let trace = small_trace();
        let service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        for target in [0usize, 5, 41, 79] {
            let monitors = service.monitors_of_index(target);
            // Sorted ascending, no duplicates, and exactly the nodes the
            // assignment rule names.
            assert!(monitors.windows(2).all(|w| w[0] < w[1]));
            let expected: Vec<usize> = (0..trace.num_nodes())
                .filter(|&m| {
                    service
                        .assignment()
                        .is_monitor(trace.node_id(m), trace.node_id(target))
                })
                .collect();
            assert_eq!(monitors, expected, "target {target}");
        }
    }

    #[test]
    fn forward_and_inverted_indexes_agree() {
        let trace = small_trace();
        let service = AvmonService::new(&trace, AvmonConfig::default(), 1);
        let n = trace.num_nodes();
        let MonitorIndex::AllPairs {
            target_offsets,
            target_ids,
            inv_offsets,
            inv_entries,
            ..
        } = &service.index
        else {
            panic!("default config builds the all-pairs index");
        };
        // Every forward (m → t) edge appears exactly once inverted, and
        // its arena index points back into monitor m's lane.
        let mut seen = 0usize;
        for t in 0..n {
            for &(m, est) in
                &inv_entries[inv_offsets[t] as usize..inv_offsets[t + 1] as usize]
            {
                let (m, est) = (m as usize, est);
                assert!(est >= target_offsets[m]);
                assert!(est < target_offsets[m + 1]);
                assert_eq!(target_ids[est as usize] as usize, t);
                seen += 1;
            }
        }
        assert_eq!(seen, target_ids.len());
    }

    #[test]
    fn ring_rows_match_the_ring_assignment_after_stepping() {
        let trace = small_trace();
        let mut service = AvmonService::new(&trace, ring_config(), 1);
        service.step_to(&trace, SimTime::ZERO + SimDuration::from_hours(20));
        let ring = service.assignment().as_ring().unwrap();
        for t in 0..trace.num_nodes() {
            let mut expected = ring.monitors_of_index(t as u32);
            expected.sort_unstable();
            let row: Vec<u32> = service
                .monitors_of_index(t)
                .into_iter()
                .map(|m| m as u32)
                .collect();
            assert_eq!(row, expected, "target {t}");
        }
        // The ring's member set is exactly the slot's online set.
        let synced = service.slots_processed() - 1;
        for i in 0..trace.num_nodes() {
            assert_eq!(
                ring.is_member(i as u32),
                trace.is_online_in_slot(i, synced),
                "node {i}"
            );
        }
    }

    #[test]
    fn ring_chopped_advance_equals_one_shot() {
        let trace = small_trace();
        let end = SimTime::ZERO + trace.duration();
        let mut one_shot = AvmonService::new(&trace, ring_config(), 7);
        one_shot.step_to(&trace, end);
        let mut chopped = AvmonService::new(&trace, ring_config(), 7);
        let mut t = SimTime::ZERO;
        while t < end {
            t += SimDuration::from_hours(5);
            chopped.step_to(&trace, t.min(end));
        }
        chopped.step_to(&trace, end);
        for i in 0..trace.num_nodes() {
            assert_eq!(
                one_shot.estimate(NodeId::new(0), trace.node_id(i), end),
                chopped.estimate(NodeId::new(0), trace.node_id(i), end),
                "node {i}"
            );
        }
    }
}
