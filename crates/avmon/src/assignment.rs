//! Consistent monitor assignment strategies.
//!
//! AVMON's contribution (leveraged as a black box by AVMEM) is selecting,
//! for every node `x`, a small random-but-*consistent* set of monitor
//! nodes. Consistency means the relation is a pure function of identities
//! and membership, so a selfish node can neither choose its monitors nor
//! deny the relationship; randomness (via the hash) spreads monitoring
//! load uniformly. Two strategies implement that contract:
//!
//! * [`AllPairsAssignment`] — the paper's original rule: `m` monitors `x`
//!   iff `H(id(m), id(x)) ≤ cms / N*`. The reference for randomness and
//!   consistency, but discovering a node's monitors costs a population
//!   scan and building all monitor sets costs O(N²) hashes.
//! * [`RingAssignment`] — a consistent-hash ring: monitors sit on a keyed
//!   [`HashRing`] with virtual points, every target owns a lookup point,
//!   and a target's monitors are its `k` distinct clockwise ring
//!   successors. Build drops to O(N log N), and a membership change
//!   perturbs only the arcs next to the changed points —
//!   [`RingAssignment::join`] / [`RingAssignment::leave`] return the
//!   affected targets as an O(k)-sized delta instead of forcing a global
//!   rebuild.
//!
//! [`MonitorAssignment`] is the strategy enum the service stores; the
//! all-pairs constructor keeps its historical `new(cms, n_star)` shape.
//!
//! The hashes are drawn from keyed families (domain tags `"avmon"` and
//! `"avmon-ring"`) so both strategies are independent of the AVMEM
//! membership predicate's hash and of each other.

use avmem_util::{consistent_hash_keyed, consistent_point_keyed, HashRing, NodeId};
use serde::{Deserialize, Serialize};

const DOMAIN: &[u8] = b"avmon";
/// Domain key of the monitor ring (member placement points).
const RING_DOMAIN: &[u8] = b"avmon-ring";
/// Domain key of target lookup points — distinct from the member domain
/// so a node's lookup point never coincides with its own ring points.
const RING_TARGET_DOMAIN: &[u8] = b"avmon-ring/target";

/// The paper's all-pairs hash-threshold rule: `m` monitors `x` iff
/// `H(id(m), id(x)) ≤ cms / N*`.
///
/// # Examples
///
/// ```
/// use avmem_avmon::AllPairsAssignment;
/// use avmem_util::NodeId;
///
/// let rule = AllPairsAssignment::new(8.0, 1000.0);
/// let (m, x) = (NodeId::new(7), NodeId::new(42));
/// // The relation is consistent: any evaluation agrees.
/// assert_eq!(rule.is_monitor(m, x), rule.is_monitor(m, x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllPairsAssignment {
    /// Target expected number of monitors per node (`cms` in AVMON).
    cms: f64,
    /// The stable system size estimate `N*`.
    n_star: f64,
}

impl AllPairsAssignment {
    /// Creates an assignment rule with expected `cms` monitors per node
    /// in a system of `n_star` nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `cms > 0` and `n_star > 0`.
    pub fn new(cms: f64, n_star: f64) -> Self {
        assert!(cms > 0.0, "cms must be positive");
        assert!(n_star > 0.0, "n_star must be positive");
        AllPairsAssignment { cms, n_star }
    }

    /// The monitor-set probability threshold `cms / N*` (capped at 1).
    pub fn threshold(&self) -> f64 {
        (self.cms / self.n_star).min(1.0)
    }

    /// Whether `monitor` is assigned to observe `target`.
    ///
    /// Consistent: depends only on the two identities.
    pub fn is_monitor(&self, monitor: NodeId, target: NodeId) -> bool {
        monitor != target && consistent_hash_keyed(DOMAIN, monitor, target) <= self.threshold()
    }
}

/// Ring-based monitor assignment with O(k) incremental membership.
///
/// Monitors own `vnodes` points each on a keyed [`HashRing`]; every
/// target (member or not — offline nodes keep being monitored, which is
/// how downtime gets measured) owns one fixed lookup point, and its
/// monitors are the first `k` distinct ring members clockwise from that
/// point, never itself. The assignment is a pure function of the member
/// set, so any party evaluating it agrees — the consistency property the
/// paper's selfishness analysis rests on.
///
/// [`RingAssignment::join`] and [`RingAssignment::leave`] update the
/// member set and return the targets whose monitor sets *may* have
/// changed: a conservative window of O(k + vnodes) expected size found
/// by walking the ring backwards from each touched point, instead of
/// the O(N) rescan the all-pairs rule would need.
///
/// # Examples
///
/// ```
/// use avmem_avmon::RingAssignment;
///
/// let mut ring = RingAssignment::new(100, 8, 4, 0..100u32);
/// let before = ring.monitors_of_index(17);
/// assert_eq!(before.len(), 4);
///
/// // A leave only disturbs the arcs next to the leaver's points.
/// let affected = ring.leave(42);
/// assert!(affected.len() < 100);
/// for t in 0..100u32 {
///     assert!(!ring.monitors_of_index(t).contains(&42));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RingAssignment {
    k: u32,
    ring: HashRing,
    /// Lookup point of each target, indexed by target.
    points: Vec<u128>,
    /// Target indexes sorted by lookup point, aligned with
    /// `sorted_points` — the range structure behind the delta windows.
    order: Vec<u32>,
    sorted_points: Vec<u128>,
}

impl RingAssignment {
    /// Builds the assignment for a population of `n` targets (indexes
    /// `0..n`), with `vnodes` ring points per monitor and `k` monitors
    /// per target. `members` is the initial monitor membership (typically
    /// the currently-online nodes). O(N log N).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `vnodes == 0`, `n` exceeds `u32`, or a member
    /// index is out of `0..n`.
    pub fn new<I>(n: usize, vnodes: u32, k: u32, members: I) -> Self
    where
        I: IntoIterator<Item = u32>,
    {
        assert!(k > 0, "a target needs at least one monitor");
        let n_u32 = u32::try_from(n).expect("population exceeds the u32 index width");
        let points: Vec<u128> = (0..n_u32)
            .map(|t| {
                consistent_point_keyed(RING_TARGET_DOMAIN, NodeId::new(u64::from(t)), NodeId::new(0))
            })
            .collect();
        let mut order: Vec<u32> = (0..n_u32).collect();
        order.sort_unstable_by_key(|&t| points[t as usize]);
        let sorted_points: Vec<u128> = order.iter().map(|&t| points[t as usize]).collect();
        let mut ring = HashRing::new(RING_DOMAIN, vnodes);
        for m in members {
            assert!(m < n_u32, "member {m} outside the population 0..{n}");
            ring.insert(m);
        }
        RingAssignment {
            k,
            ring,
            points,
            order,
            sorted_points,
        }
    }

    /// Monitors per target.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Virtual ring points per monitor.
    pub fn vnodes(&self) -> u32 {
        self.ring.vnodes()
    }

    /// Number of targets in the population.
    pub fn num_targets(&self) -> usize {
        self.points.len()
    }

    /// Number of monitors currently on the ring.
    pub fn num_members(&self) -> usize {
        self.ring.len()
    }

    /// Whether `member` is currently on the ring.
    pub fn is_member(&self, member: u32) -> bool {
        self.ring.contains(member)
    }

    /// The monitors of `target`: its `k` distinct ring successors,
    /// excluding itself, in clockwise walk order. Fewer than `k` when
    /// the ring holds fewer (other) members.
    pub fn monitors_of_index(&self, target: u32) -> Vec<u32> {
        self.ring.distinct_successors(
            self.points[target as usize],
            self.k as usize,
            Some(target),
        )
    }

    /// Adds `member` to the ring and returns the targets whose monitor
    /// sets may have changed, ascending and deduplicated. No-op (empty
    /// delta) if the member is already present.
    pub fn join(&mut self, member: u32) -> Vec<u32> {
        if !self.ring.insert(member) {
            return Vec::new();
        }
        self.affected_by(member)
    }

    /// Removes `member` from the ring and returns the targets whose
    /// monitor sets may have changed, ascending and deduplicated. No-op
    /// (empty delta) if the member was not present.
    ///
    /// The windows are computed *before* the points disappear — they
    /// bound the walks that used to end at the removed points.
    pub fn leave(&mut self, member: u32) -> Vec<u32> {
        if !self.ring.contains(member) {
            return Vec::new();
        }
        let affected = self.affected_by(member);
        self.ring.remove(member);
        affected
    }

    /// Targets whose clockwise `k`-distinct-successor walk can reach one
    /// of `member`'s ring points: for each point `p`, the window extends
    /// counter-clockwise until `k + 2` distinct owners have been passed
    /// (`+2` covers the target's self-exclusion and `member` itself
    /// owning other points in the arc) — any target further back
    /// resolves all `k` monitors before reaching `p`, changed or not.
    fn affected_by(&self, member: u32) -> Vec<u32> {
        let distinct = self.k as usize + 2;
        let mut affected: Vec<u32> = Vec::new();
        for p in self.ring.member_points(member) {
            match self.ring.predecessor_window_start(p, distinct) {
                Some(start) => self.targets_in_arc(start, p, &mut affected),
                None => {
                    // The ring is too small to bound the walk: every
                    // target's monitor set is up for grabs.
                    return (0..self.points.len() as u32).collect();
                }
            }
        }
        affected.sort_unstable();
        affected.dedup();
        affected
    }

    /// Appends the targets with lookup points in the clockwise arc
    /// `(from, to]` (wrap-aware) to `out`.
    fn targets_in_arc(&self, from: u128, to: u128, out: &mut Vec<u32>) {
        let lo = self.sorted_points.partition_point(|&p| p <= from);
        let hi = self.sorted_points.partition_point(|&p| p <= to);
        if from < to {
            out.extend_from_slice(&self.order[lo..hi]);
        } else {
            // Wraps over the top of the circle.
            out.extend_from_slice(&self.order[lo..]);
            out.extend_from_slice(&self.order[..hi]);
        }
    }
}

/// The monitor-assignment strategy in force: the all-pairs reference
/// rule or the incremental ring.
///
/// # Examples
///
/// ```
/// use avmem_avmon::MonitorAssignment;
/// use avmem_util::NodeId;
///
/// // The historical constructor builds the all-pairs reference.
/// let assignment = MonitorAssignment::new(8.0, 1000.0);
/// let (m, x) = (NodeId::new(7), NodeId::new(42));
/// assert_eq!(assignment.is_monitor(m, x), assignment.is_monitor(m, x));
///
/// // The ring strategy answers the same question from ring geometry.
/// let ring = MonitorAssignment::ring(100, 8, 4, 0..100u32);
/// let monitors = ring.monitors_of(NodeId::new(17), (0..100).map(NodeId::new));
/// assert_eq!(monitors.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub enum MonitorAssignment {
    /// The paper's all-pairs hash-threshold rule.
    AllPairs(AllPairsAssignment),
    /// Consistent-hash-ring successors with incremental join/leave.
    Ring(RingAssignment),
}

impl MonitorAssignment {
    /// Creates the all-pairs reference rule with expected `cms` monitors
    /// per node in a system of `n_star` nodes (the historical
    /// constructor).
    ///
    /// # Panics
    ///
    /// Panics unless `cms > 0` and `n_star > 0`.
    pub fn new(cms: f64, n_star: f64) -> Self {
        MonitorAssignment::AllPairs(AllPairsAssignment::new(cms, n_star))
    }

    /// Creates a ring assignment over `n` targets; see
    /// [`RingAssignment::new`].
    pub fn ring<I>(n: usize, vnodes: u32, k: u32, members: I) -> Self
    where
        I: IntoIterator<Item = u32>,
    {
        MonitorAssignment::Ring(RingAssignment::new(n, vnodes, k, members))
    }

    /// Whether `monitor` is assigned to observe `target`. For the ring
    /// strategy the identities must be population indexes (`0..n`);
    /// anything outside is never a monitor.
    pub fn is_monitor(&self, monitor: NodeId, target: NodeId) -> bool {
        match self {
            MonitorAssignment::AllPairs(rule) => rule.is_monitor(monitor, target),
            MonitorAssignment::Ring(ring) => {
                let (m, t) = (monitor.raw(), target.raw());
                if m == t || t >= ring.num_targets() as u64 || m >= ring.num_targets() as u64 {
                    return false;
                }
                ring.monitors_of_index(t as u32).contains(&(m as u32))
            }
        }
    }

    /// All monitors of `target` within `population`.
    pub fn monitors_of<'a, I>(&'a self, target: NodeId, population: I) -> Vec<NodeId>
    where
        I: IntoIterator<Item = NodeId> + 'a,
    {
        population
            .into_iter()
            .filter(|&m| self.is_monitor(m, target))
            .collect()
    }

    /// All targets that `monitor` is responsible for within `population`.
    pub fn targets_of<'a, I>(&'a self, monitor: NodeId, population: I) -> Vec<NodeId>
    where
        I: IntoIterator<Item = NodeId> + 'a,
    {
        population
            .into_iter()
            .filter(|&x| self.is_monitor(monitor, x))
            .collect()
    }

    /// The all-pairs rule, if that is the strategy in force.
    pub fn as_all_pairs(&self) -> Option<&AllPairsAssignment> {
        match self {
            MonitorAssignment::AllPairs(rule) => Some(rule),
            MonitorAssignment::Ring(_) => None,
        }
    }

    /// The ring, if that is the strategy in force.
    pub fn as_ring(&self) -> Option<&RingAssignment> {
        match self {
            MonitorAssignment::Ring(ring) => Some(ring),
            MonitorAssignment::AllPairs(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> impl Iterator<Item = NodeId> + Clone {
        (0..n).map(NodeId::new)
    }

    #[test]
    fn expected_monitor_count_is_cms() {
        let n = 2000u64;
        let assignment = MonitorAssignment::new(10.0, n as f64);
        let total: usize = ids(200)
            .map(|x| assignment.monitors_of(x, ids(n)).len())
            .sum();
        let mean = total as f64 / 200.0;
        assert!(
            (8.0..12.0).contains(&mean),
            "mean monitor count {mean}, expected ~10"
        );
    }

    #[test]
    fn assignment_is_consistent() {
        let assignment = MonitorAssignment::new(5.0, 100.0);
        let x = NodeId::new(3);
        let first = assignment.monitors_of(x, ids(100));
        let second = assignment.monitors_of(x, ids(100));
        assert_eq!(first, second);
    }

    #[test]
    fn no_self_monitoring() {
        let assignment = MonitorAssignment::new(100.0, 100.0); // threshold 1.0
        let x = NodeId::new(9);
        let monitors = assignment.monitors_of(x, ids(100));
        assert!(!monitors.contains(&x));
        assert_eq!(monitors.len(), 99); // everyone else qualifies
    }

    #[test]
    fn monitors_and_targets_are_duals() {
        let assignment = MonitorAssignment::new(10.0, 300.0);
        let m = NodeId::new(17);
        let targets = assignment.targets_of(m, ids(300));
        for &t in &targets {
            assert!(assignment.monitors_of(t, ids(300)).contains(&m));
        }
    }

    #[test]
    fn monitoring_load_is_balanced() {
        let n = 1000u64;
        let assignment = MonitorAssignment::new(8.0, n as f64);
        let loads: Vec<usize> = ids(n)
            .map(|m| assignment.targets_of(m, ids(n)).len())
            .collect();
        let max = *loads.iter().max().unwrap();
        // Binomial(1000, 8/1000): max load should stay modest.
        assert!(max < 30, "max monitoring load {max}");
    }

    #[test]
    fn threshold_caps_at_one() {
        let rule = AllPairsAssignment::new(50.0, 10.0);
        assert_eq!(rule.threshold(), 1.0);
    }

    #[test]
    #[should_panic(expected = "cms must be positive")]
    fn zero_cms_panics() {
        let _ = MonitorAssignment::new(0.0, 10.0);
    }

    #[test]
    fn ring_gives_exactly_k_monitors() {
        let ring = RingAssignment::new(200, 8, 5, 0..200u32);
        for t in 0..200u32 {
            let monitors = ring.monitors_of_index(t);
            assert_eq!(monitors.len(), 5, "target {t}");
            assert!(!monitors.contains(&t), "target {t} monitors itself");
        }
    }

    #[test]
    fn ring_enum_view_agrees_with_index_view() {
        let assignment = MonitorAssignment::ring(80, 4, 3, 0..80u32);
        let ring = assignment.as_ring().unwrap();
        for t in [0u32, 7, 79] {
            let by_index: Vec<NodeId> = {
                let mut m = ring.monitors_of_index(t);
                m.sort_unstable();
                m.into_iter().map(|i| NodeId::new(u64::from(i))).collect()
            };
            let mut by_id = assignment.monitors_of(NodeId::new(u64::from(t)), ids(80));
            by_id.sort_unstable();
            assert_eq!(by_id, by_index);
        }
    }

    #[test]
    fn ring_join_delta_covers_every_changed_target() {
        let n = 150u32;
        let mut ring = RingAssignment::new(n as usize, 4, 4, 0..n - 1);
        let before: Vec<Vec<u32>> = (0..n).map(|t| ring.monitors_of_index(t)).collect();
        let affected = ring.join(n - 1);
        assert!(ring.is_member(n - 1));
        for t in 0..n {
            let after = ring.monitors_of_index(t);
            if after != before[t as usize] {
                assert!(
                    affected.contains(&t),
                    "target {t} changed but was not reported affected"
                );
            }
        }
        // The delta is local, not a global rebuild.
        assert!(
            affected.len() < n as usize / 2,
            "join affected {} of {n} targets",
            affected.len()
        );
    }

    #[test]
    fn ring_leave_delta_covers_every_changed_target() {
        let n = 150u32;
        let mut ring = RingAssignment::new(n as usize, 4, 4, 0..n);
        let before: Vec<Vec<u32>> = (0..n).map(|t| ring.monitors_of_index(t)).collect();
        let affected = ring.leave(77);
        assert!(!ring.is_member(77));
        for t in 0..n {
            let after = ring.monitors_of_index(t);
            if after != before[t as usize] {
                assert!(
                    affected.contains(&t),
                    "target {t} changed but was not reported affected"
                );
            }
        }
        assert!(affected.len() < n as usize / 2);
    }

    #[test]
    fn ring_join_then_leave_round_trips() {
        let mut ring = RingAssignment::new(120, 4, 4, 0..120u32);
        let before: Vec<Vec<u32>> = (0..120u32).map(|t| ring.monitors_of_index(t)).collect();
        ring.leave(60);
        ring.join(60);
        let after: Vec<Vec<u32>> = (0..120u32).map(|t| ring.monitors_of_index(t)).collect();
        assert_eq!(before, after, "assignment must be a pure function of membership");
    }

    #[test]
    fn ring_redundant_join_and_leave_are_empty_deltas() {
        let mut ring = RingAssignment::new(50, 4, 3, 0..25u32);
        assert!(ring.join(10).is_empty(), "member already present");
        assert!(ring.leave(40).is_empty(), "member already absent");
    }

    #[test]
    fn ring_offline_targets_keep_their_monitors() {
        // Targets outside the member set (offline nodes) still resolve k
        // monitors — downtime is only measurable if someone keeps
        // pinging you.
        let ring = RingAssignment::new(100, 4, 4, 0..50u32);
        for t in 50..100u32 {
            let monitors = ring.monitors_of_index(t);
            assert_eq!(monitors.len(), 4);
            assert!(monitors.iter().all(|&m| m < 50));
        }
    }

    #[test]
    fn tiny_ring_reports_every_target_affected() {
        // With fewer members than k + 2 distinct owners the delta
        // windows cannot bound the walk, so the delta degrades to "all".
        let mut ring = RingAssignment::new(30, 2, 4, 0..3u32);
        let affected = ring.join(3);
        assert_eq!(affected, (0..30u32).collect::<Vec<_>>());
    }
}
