//! Consistent monitor assignment.
//!
//! AVMON's contribution (leveraged as a black box by AVMEM) is selecting,
//! for every node `x`, a small random-but-*consistent* set of monitor
//! nodes: `m` monitors `x` iff `H(id(m), id(x)) ≤ cms / N*`. Consistency
//! means the relation is a pure function of identities, so a selfish node
//! can neither choose its monitors nor deny the relationship; randomness
//! (via the hash) spreads monitoring load uniformly.
//!
//! The hash is drawn from a keyed family (domain tag `"avmon"`) so it is
//! independent of the AVMEM membership predicate's hash.

use avmem_util::{consistent_hash_keyed, NodeId};
use serde::{Deserialize, Serialize};

const DOMAIN: &[u8] = b"avmon";

/// The consistent monitor-assignment rule.
///
/// # Examples
///
/// ```
/// use avmem_avmon::MonitorAssignment;
/// use avmem_util::NodeId;
///
/// let assignment = MonitorAssignment::new(8.0, 1000.0);
/// let x = NodeId::new(42);
/// // The relation is consistent: any evaluation agrees.
/// let m = NodeId::new(7);
/// assert_eq!(assignment.is_monitor(m, x), assignment.is_monitor(m, x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorAssignment {
    /// Target expected number of monitors per node (`cms` in AVMON).
    cms: f64,
    /// The stable system size estimate `N*`.
    n_star: f64,
}

impl MonitorAssignment {
    /// Creates an assignment rule with expected `cms` monitors per node
    /// in a system of `n_star` nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `cms > 0` and `n_star > 0`.
    pub fn new(cms: f64, n_star: f64) -> Self {
        assert!(cms > 0.0, "cms must be positive");
        assert!(n_star > 0.0, "n_star must be positive");
        MonitorAssignment { cms, n_star }
    }

    /// The monitor-set probability threshold `cms / N*` (capped at 1).
    pub fn threshold(&self) -> f64 {
        (self.cms / self.n_star).min(1.0)
    }

    /// Whether `monitor` is assigned to observe `target`.
    ///
    /// Consistent: depends only on the two identities.
    pub fn is_monitor(&self, monitor: NodeId, target: NodeId) -> bool {
        monitor != target && consistent_hash_keyed(DOMAIN, monitor, target) <= self.threshold()
    }

    /// All monitors of `target` within `population`.
    pub fn monitors_of<'a, I>(&'a self, target: NodeId, population: I) -> Vec<NodeId>
    where
        I: IntoIterator<Item = NodeId> + 'a,
    {
        population
            .into_iter()
            .filter(|&m| self.is_monitor(m, target))
            .collect()
    }

    /// All targets that `monitor` is responsible for within `population`.
    pub fn targets_of<'a, I>(&'a self, monitor: NodeId, population: I) -> Vec<NodeId>
    where
        I: IntoIterator<Item = NodeId> + 'a,
    {
        population
            .into_iter()
            .filter(|&x| self.is_monitor(monitor, x))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> impl Iterator<Item = NodeId> + Clone {
        (0..n).map(NodeId::new)
    }

    #[test]
    fn expected_monitor_count_is_cms() {
        let n = 2000u64;
        let assignment = MonitorAssignment::new(10.0, n as f64);
        let total: usize = ids(200)
            .map(|x| assignment.monitors_of(x, ids(n)).len())
            .sum();
        let mean = total as f64 / 200.0;
        assert!(
            (8.0..12.0).contains(&mean),
            "mean monitor count {mean}, expected ~10"
        );
    }

    #[test]
    fn assignment_is_consistent() {
        let assignment = MonitorAssignment::new(5.0, 100.0);
        let x = NodeId::new(3);
        let first = assignment.monitors_of(x, ids(100));
        let second = assignment.monitors_of(x, ids(100));
        assert_eq!(first, second);
    }

    #[test]
    fn no_self_monitoring() {
        let assignment = MonitorAssignment::new(100.0, 100.0); // threshold 1.0
        let x = NodeId::new(9);
        let monitors = assignment.monitors_of(x, ids(100));
        assert!(!monitors.contains(&x));
        assert_eq!(monitors.len(), 99); // everyone else qualifies
    }

    #[test]
    fn monitors_and_targets_are_duals() {
        let assignment = MonitorAssignment::new(10.0, 300.0);
        let m = NodeId::new(17);
        let targets = assignment.targets_of(m, ids(300));
        for &t in &targets {
            assert!(assignment.monitors_of(t, ids(300)).contains(&m));
        }
    }

    #[test]
    fn monitoring_load_is_balanced() {
        let n = 1000u64;
        let assignment = MonitorAssignment::new(8.0, n as f64);
        let loads: Vec<usize> = ids(n)
            .map(|m| assignment.targets_of(m, ids(n)).len())
            .collect();
        let max = *loads.iter().max().unwrap();
        // Binomial(1000, 8/1000): max load should stay modest.
        assert!(max < 30, "max monitoring load {max}");
    }

    #[test]
    fn threshold_caps_at_one() {
        let assignment = MonitorAssignment::new(50.0, 10.0);
        assert_eq!(assignment.threshold(), 1.0);
    }

    #[test]
    #[should_panic(expected = "cms must be positive")]
    fn zero_cms_panics() {
        let _ = MonitorAssignment::new(0.0, 10.0);
    }
}
