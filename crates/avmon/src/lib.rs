#![warn(missing_docs)]

//! AVMON-style availability monitoring substrate.
//!
//! The paper consumes an *availability monitoring service* as a black box
//! (§3.1): "one that can be queried for the long-term availability (e.g.,
//! raw, or aged) of any given node. It returns an answer that is
//! reasonably accurate, and that is reasonably consistent over time." The
//! authors use their own AVMON system (Morales & Gupta, ICDCS 2007). This
//! crate rebuilds the pieces of AVMON that AVMEM depends on:
//!
//! * [`assignment`] — AVMON's core idea: **consistent monitor selection**,
//!   as a strategy: the paper's all-pairs rule (`m` monitors `x` iff
//!   `H(id(m), id(x)) ≤ cms / N*`, a predicate any third party can
//!   verify, giving each node an expected `cms` uniformly random
//!   monitors — selfish nodes cannot choose their own monitors), and a
//!   consistent-hash-ring strategy ([`RingAssignment`]) with the same
//!   consistency contract but an O(N log N) build and O(k) incremental
//!   [`join`](RingAssignment::join) / [`leave`](RingAssignment::leave)
//!   deltas under churn;
//! * [`estimator`] — per-target ping bookkeeping: raw (lifetime fraction
//!   of answered pings) and aged (exponentially weighted) availability
//!   estimates;
//! * [`service`] — [`AvmonService`]: a full simulation-backed monitoring
//!   service over a churn trace. Each slot, online monitors ping their
//!   online targets; queries aggregate the monitors' current estimates
//!   (median), yielding the "reasonably accurate, reasonably consistent"
//!   answers the paper assumes — including their natural staleness and
//!   inconsistency. The pipeline is batched: build-once forward and
//!   inverted CSR monitor indexes, a flat estimator arena, counter-keyed
//!   ping-loss streams, and two parallel phases per slot on the
//!   persistent worker pool (see the [`service`] module docs);
//! * [`oracle`] — the [`AvailabilityOracle`] abstraction AVMEM queries,
//!   with ground-truth ([`TraceOracle`]) and fault-injecting
//!   ([`NoisyOracle`]) implementations used by the attack analysis
//!   (Figs. 5–6 of the paper).

pub mod assignment;
pub mod estimator;
pub mod oracle;
pub mod service;

pub use assignment::{AllPairsAssignment, MonitorAssignment, RingAssignment};
pub use estimator::PingEstimator;
pub use oracle::{AvailabilityOracle, NoisyOracle, TraceOracle};
pub use service::{AssignmentChoice, AvmonConfig, AvmonService};
