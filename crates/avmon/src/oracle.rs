//! The availability oracle abstraction.
//!
//! AVMEM queries the monitoring service through [`AvailabilityOracle`]:
//! "given node y, what is its long-term availability?". Different
//! implementations model different fidelity levels:
//!
//! * [`TraceOracle`] — ground truth straight from the churn trace (a
//!   perfect monitoring service); baseline for microbenchmarks;
//! * [`NoisyOracle`] — wraps another oracle and injects *per-querier*
//!   error and staleness: querier `q` asking about target `y` during
//!   staleness epoch `e` gets a deterministic perturbed answer. Two
//!   queriers can therefore disagree about the same target — exactly the
//!   inconsistency that drives the paper's attack analysis (Figs. 5–6);
//! * [`crate::AvmonService`] — the full ping-based service.
//!
//! Keeping the oracle a trait lets every experiment choose its fidelity
//! level without touching protocol code.

use avmem_sim::{SimDuration, SimTime};
use avmem_trace::ChurnTrace;
use avmem_util::{Availability, NodeId, Rng, SplitMix64};

/// A queryable availability monitoring service (the paper's §3.1 service
/// #1).
///
/// Implementations return `None` when they have no information about the
/// target (e.g. no monitor has ever pinged it).
pub trait AvailabilityOracle {
    /// The availability of `target` as observable by `querier` at `now`.
    ///
    /// `querier` matters because real monitoring gives different nodes
    /// (slightly) different answers; consistent implementations may ignore
    /// it.
    fn estimate(&self, querier: NodeId, target: NodeId, now: SimTime) -> Option<Availability>;

    /// Resolves a whole candidate list in one call: `out` is cleared and
    /// filled with `estimate(querier, targets[k], now)` for every `k`.
    ///
    /// The default is a per-target loop; backends with table/arena state
    /// override it to hoist the dispatch and per-call setup out of the
    /// loop. Results must be bit-identical to N single calls — batching
    /// is purely a throughput knob for drivers that already hold the
    /// candidate list (the maintenance finalize phase).
    fn estimate_batch(
        &self,
        querier: NodeId,
        targets: &[NodeId],
        now: SimTime,
        out: &mut Vec<Option<Availability>>,
    ) {
        out.clear();
        out.extend(targets.iter().map(|&t| self.estimate(querier, t, now)));
    }
}

impl<T: AvailabilityOracle + ?Sized> AvailabilityOracle for &T {
    fn estimate(&self, querier: NodeId, target: NodeId, now: SimTime) -> Option<Availability> {
        (**self).estimate(querier, target, now)
    }

    fn estimate_batch(
        &self,
        querier: NodeId,
        targets: &[NodeId],
        now: SimTime,
        out: &mut Vec<Option<Availability>>,
    ) {
        (**self).estimate_batch(querier, targets, now, out)
    }
}

/// Ground-truth oracle: every node's true long-term availability from the
/// churn trace. Models a perfect monitoring service.
///
/// # Examples
///
/// ```
/// use avmem_avmon::{AvailabilityOracle, TraceOracle};
/// use avmem_sim::SimTime;
/// use avmem_trace::OvernetModel;
/// use avmem_util::NodeId;
///
/// let trace = OvernetModel::default().hosts(10).days(1).generate(1);
/// let oracle = TraceOracle::new(&trace);
/// let av = oracle
///     .estimate(NodeId::new(0), NodeId::new(3), SimTime::ZERO)
///     .unwrap();
/// assert_eq!(av, trace.long_term_availability(3));
/// ```
#[derive(Debug, Clone)]
pub struct TraceOracle {
    availabilities: Vec<Availability>,
}

impl TraceOracle {
    /// Precomputes long-term availabilities from a trace.
    pub fn new(trace: &ChurnTrace) -> Self {
        TraceOracle {
            availabilities: (0..trace.num_nodes())
                .map(|i| trace.long_term_availability(i))
                .collect(),
        }
    }

    /// Number of nodes known to the oracle.
    pub fn len(&self) -> usize {
        self.availabilities.len()
    }

    /// Whether the oracle knows no nodes.
    pub fn is_empty(&self) -> bool {
        self.availabilities.is_empty()
    }
}

impl AvailabilityOracle for TraceOracle {
    fn estimate(&self, _querier: NodeId, target: NodeId, _now: SimTime) -> Option<Availability> {
        self.availabilities.get(target.raw() as usize).copied()
    }

    fn estimate_batch(
        &self,
        _querier: NodeId,
        targets: &[NodeId],
        _now: SimTime,
        out: &mut Vec<Option<Availability>>,
    ) {
        out.clear();
        out.extend(
            targets
                .iter()
                .map(|t| self.availabilities.get(t.raw() as usize).copied()),
        );
    }
}

/// Error/staleness-injecting wrapper around another oracle.
///
/// Within one *staleness epoch* (queries at times `t` with the same
/// `t / staleness`), a given `(querier, target)` pair always sees the same
/// perturbed value — modelling a cached answer — and the perturbation is
/// redrawn each epoch — modelling refresh. The perturbation is uniform in
/// `[−error, +error]`, clamped into `[0, 1]`.
///
/// # Examples
///
/// ```
/// use avmem_avmon::{AvailabilityOracle, NoisyOracle, TraceOracle};
/// use avmem_sim::{SimDuration, SimTime};
/// use avmem_trace::OvernetModel;
/// use avmem_util::NodeId;
///
/// let trace = OvernetModel::default().hosts(10).days(1).generate(1);
/// let oracle = NoisyOracle::new(
///     TraceOracle::new(&trace),
///     0.05,
///     SimDuration::from_mins(20),
///     99,
/// );
/// let (q, t) = (NodeId::new(0), NodeId::new(3));
/// // Same epoch ⇒ identical (cached) answer.
/// let a = oracle.estimate(q, t, SimTime::ZERO).unwrap();
/// let b = oracle.estimate(q, t, SimTime::ZERO).unwrap();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct NoisyOracle<O> {
    inner: O,
    error: f64,
    staleness: SimDuration,
    seed: u64,
    per_querier: bool,
}

impl<O> NoisyOracle<O> {
    /// Wraps `inner`, adding uniform error of amplitude `error` that is
    /// re-drawn once per `staleness` period per `(querier, target)` pair
    /// — different queriers see *different* perturbed values, modelling
    /// divergent caches (the worst case for receiver-side verification).
    ///
    /// # Panics
    ///
    /// Panics if `error` is negative or `staleness` is zero.
    pub fn new(inner: O, error: f64, staleness: SimDuration, seed: u64) -> Self {
        Self::with_scope(inner, error, staleness, seed, true)
    }

    /// Like [`NoisyOracle::new`] but with noise *shared across queriers*:
    /// every querier in the same staleness epoch sees the same perturbed
    /// value for a target. This models AVMON's aggregated (median over
    /// monitors) answers, which all clients receive identically.
    ///
    /// # Panics
    ///
    /// Panics if `error` is negative or `staleness` is zero.
    pub fn shared(inner: O, error: f64, staleness: SimDuration, seed: u64) -> Self {
        Self::with_scope(inner, error, staleness, seed, false)
    }

    fn with_scope(
        inner: O,
        error: f64,
        staleness: SimDuration,
        seed: u64,
        per_querier: bool,
    ) -> Self {
        assert!(error >= 0.0, "error amplitude must be non-negative");
        assert!(
            staleness > SimDuration::ZERO,
            "staleness period must be positive"
        );
        NoisyOracle {
            inner,
            error,
            staleness,
            seed,
            per_querier,
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Whether noise is drawn per querier (vs shared across queriers).
    pub fn is_per_querier(&self) -> bool {
        self.per_querier
    }

    /// The staleness epoch containing `now`: the perturbation for a
    /// `(querier, target)` pair is constant within one epoch and re-drawn
    /// at each epoch boundary, so estimates can only change when this
    /// number advances.
    pub fn epoch_at(&self, now: SimTime) -> u64 {
        now.as_millis() / self.staleness.as_millis()
    }

    /// Applies the deterministic per `(seed, [querier,] target, epoch)`
    /// perturbation to a true value. Factored out so the batch path is
    /// bit-identical to N single estimates by construction.
    fn perturb(&self, querier_term: u64, target: NodeId, epoch: u64, true_value: Availability) -> Availability {
        let mut rng = SplitMix64::new(
            self.seed
                ^ querier_term
                ^ target.raw().rotate_left(43)
                ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        // Burn a draw to decorrelate from the seed structure.
        let _ = rng.next_u64();
        let delta = rng.range_f64(-self.error, self.error);
        Availability::saturating(true_value.value() + delta)
    }

    fn querier_term(&self, querier: NodeId) -> u64 {
        if self.per_querier {
            querier.raw().rotate_left(17)
        } else {
            0
        }
    }
}

impl<O: AvailabilityOracle> AvailabilityOracle for NoisyOracle<O> {
    fn estimate(&self, querier: NodeId, target: NodeId, now: SimTime) -> Option<Availability> {
        let true_value = self.inner.estimate(querier, target, now)?;
        if self.error == 0.0 {
            return Some(true_value);
        }
        let epoch = self.epoch_at(now);
        Some(self.perturb(self.querier_term(querier), target, epoch, true_value))
    }

    fn estimate_batch(
        &self,
        querier: NodeId,
        targets: &[NodeId],
        now: SimTime,
        out: &mut Vec<Option<Availability>>,
    ) {
        self.inner.estimate_batch(querier, targets, now, out);
        if self.error == 0.0 {
            return;
        }
        // Epoch and querier term are loop-invariant; only the per-target
        // keyed draw remains inside.
        let epoch = self.epoch_at(now);
        let querier_term = self.querier_term(querier);
        for (slot, &target) in out.iter_mut().zip(targets) {
            if let Some(true_value) = *slot {
                *slot = Some(self.perturb(querier_term, target, epoch, true_value));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_trace::OvernetModel;

    fn trace() -> ChurnTrace {
        OvernetModel::default().hosts(50).days(1).generate(7)
    }

    #[test]
    fn trace_oracle_returns_ground_truth() {
        let t = trace();
        let oracle = TraceOracle::new(&t);
        for i in 0..t.num_nodes() {
            let est = oracle
                .estimate(NodeId::new(0), t.node_id(i), SimTime::ZERO)
                .unwrap();
            assert_eq!(est, t.long_term_availability(i));
        }
    }

    #[test]
    fn trace_oracle_unknown_node_is_none() {
        let t = trace();
        let oracle = TraceOracle::new(&t);
        assert!(oracle
            .estimate(NodeId::new(0), NodeId::new(9999), SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn noisy_oracle_same_epoch_is_cached() {
        let t = trace();
        let oracle = NoisyOracle::new(
            TraceOracle::new(&t),
            0.1,
            SimDuration::from_mins(20),
            1,
        );
        let (q, x) = (NodeId::new(1), NodeId::new(2));
        let early = oracle.estimate(q, x, SimTime::from_millis(0)).unwrap();
        let later = oracle
            .estimate(q, x, SimTime::from_millis(19 * 60 * 1000))
            .unwrap();
        assert_eq!(early, later);
    }

    #[test]
    fn noisy_oracle_redraws_across_epochs() {
        let t = trace();
        let oracle = NoisyOracle::new(
            TraceOracle::new(&t),
            0.1,
            SimDuration::from_mins(20),
            1,
        );
        let (q, x) = (NodeId::new(1), NodeId::new(2));
        let mut values = std::collections::BTreeSet::new();
        for epoch in 0..10u64 {
            let at = SimTime::from_millis(epoch * 20 * 60 * 1000);
            let v = oracle.estimate(q, x, at).unwrap();
            values.insert(format!("{:.9}", v.value()));
        }
        assert!(values.len() > 1, "noise never re-drawn");
    }

    #[test]
    fn noisy_oracle_queriers_disagree() {
        let t = trace();
        let oracle = NoisyOracle::new(
            TraceOracle::new(&t),
            0.1,
            SimDuration::from_mins(20),
            1,
        );
        let x = NodeId::new(5);
        let a = oracle.estimate(NodeId::new(1), x, SimTime::ZERO).unwrap();
        let b = oracle.estimate(NodeId::new(2), x, SimTime::ZERO).unwrap();
        assert_ne!(a, b, "independent queriers should usually disagree");
    }

    #[test]
    fn noisy_oracle_error_is_bounded() {
        let t = trace();
        let truth = TraceOracle::new(&t);
        let oracle = NoisyOracle::new(TraceOracle::new(&t), 0.05, SimDuration::from_mins(20), 3);
        for i in 0..t.num_nodes() {
            let x = t.node_id(i);
            let true_v = truth.estimate(NodeId::new(0), x, SimTime::ZERO).unwrap();
            let noisy = oracle.estimate(NodeId::new(0), x, SimTime::ZERO).unwrap();
            let diff = (true_v.value() - noisy.value()).abs();
            assert!(diff <= 0.05 + 1e-12, "error {diff} exceeds amplitude");
        }
    }

    #[test]
    fn shared_noise_agrees_across_queriers() {
        let t = trace();
        let oracle = NoisyOracle::shared(
            TraceOracle::new(&t),
            0.1,
            SimDuration::from_mins(20),
            1,
        );
        let x = NodeId::new(5);
        let a = oracle.estimate(NodeId::new(1), x, SimTime::ZERO).unwrap();
        let b = oracle.estimate(NodeId::new(2), x, SimTime::ZERO).unwrap();
        assert_eq!(a, b, "shared noise must be querier-independent");
        assert!(!oracle.is_per_querier());
    }

    #[test]
    fn shared_noise_still_redraws_across_epochs() {
        let t = trace();
        let oracle = NoisyOracle::shared(
            TraceOracle::new(&t),
            0.1,
            SimDuration::from_mins(20),
            1,
        );
        let x = NodeId::new(5);
        let q = NodeId::new(1);
        let early = oracle.estimate(q, x, SimTime::ZERO).unwrap();
        let later = oracle
            .estimate(q, x, SimTime::from_millis(3 * 20 * 60 * 1000))
            .unwrap();
        assert_ne!(early, later, "different epochs should usually differ");
    }

    #[test]
    fn zero_error_passes_through() {
        let t = trace();
        let oracle = NoisyOracle::new(
            TraceOracle::new(&t),
            0.0,
            SimDuration::from_mins(20),
            3,
        );
        let x = NodeId::new(4);
        assert_eq!(
            oracle.estimate(NodeId::new(0), x, SimTime::ZERO).unwrap(),
            t.long_term_availability(4)
        );
    }

    #[test]
    fn oracle_trait_objects_work() {
        let t = trace();
        let concrete = TraceOracle::new(&t);
        let dyn_oracle: &dyn AvailabilityOracle = &concrete;
        assert!(dyn_oracle
            .estimate(NodeId::new(0), NodeId::new(1), SimTime::ZERO)
            .is_some());
    }
}
