//! Ping-based availability estimation.
//!
//! A monitor pings each of its targets once per probe period and records
//! hit/miss. The paper's availability-monitoring contract mentions "raw,
//! or aged" long-term availability; [`PingEstimator`] offers both:
//!
//! * **raw** — lifetime fraction of answered pings, the maximum-likelihood
//!   estimate of fraction uptime;
//! * **aged** — an exponentially weighted moving average that discounts
//!   old behaviour, tracking availability *changes* faster at the cost of
//!   higher variance.

use avmem_util::Availability;
use serde::{Deserialize, Serialize};

/// Accumulated ping statistics about one target.
///
/// # Examples
///
/// ```
/// use avmem_avmon::PingEstimator;
///
/// let mut est = PingEstimator::new();
/// for _ in 0..3 {
///     est.record(true, 0.05);
/// }
/// est.record(false, 0.05);
/// assert_eq!(est.raw().unwrap().value(), 0.75);
/// assert_eq!(est.samples(), 4);
/// ```
/// Counters are `u32`: one ping per probe slot means even a decade-long
/// trace stays far below 2³², and the estimator arena at 10⁶ hosts ×
/// `k` monitors is a hot columnar structure where the 8 bytes per edge
/// saved by the narrower counters are real memory. The EWMA smoothing
/// factor is *not* stored per slot — every estimator in an arena shares
/// the service's configured `alpha`, so callers pass it to
/// [`PingEstimator::record`] and each slot stays at 16 bytes instead
/// of 24.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PingEstimator {
    hits: u32,
    attempts: u32,
    aged: f64,
}

impl PingEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        PingEstimator::default()
    }

    /// Records one ping outcome, folding it into the EWMA with smoothing
    /// factor `alpha ∈ (0, 1]` (weight given to the newest observation).
    ///
    /// `alpha` is per-call because it is a service-wide constant, not
    /// per-target state; passing a different value per call mixes decay
    /// rates and is on the caller.
    pub fn record(&mut self, answered: bool, alpha: f64) {
        debug_assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1]"
        );
        let obs = if answered { 1.0 } else { 0.0 };
        if self.attempts == 0 {
            self.aged = obs;
        } else {
            self.aged = alpha * obs + (1.0 - alpha) * self.aged;
        }
        self.attempts += 1;
        if answered {
            self.hits += 1;
        }
    }

    /// Number of pings recorded.
    pub fn samples(&self) -> u64 {
        u64::from(self.attempts)
    }

    /// Raw estimate: lifetime fraction of answered pings. `None` before
    /// the first ping.
    pub fn raw(&self) -> Option<Availability> {
        if self.attempts == 0 {
            None
        } else {
            Some(Availability::saturating(
                self.hits as f64 / self.attempts as f64,
            ))
        }
    }

    /// Aged (EWMA) estimate. `None` before the first ping.
    pub fn aged(&self) -> Option<Availability> {
        if self.attempts == 0 {
            None
        } else {
            Some(Availability::saturating(self.aged))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_samples_means_no_estimate() {
        let est = PingEstimator::new();
        assert!(est.raw().is_none());
        assert!(est.aged().is_none());
    }

    #[test]
    fn raw_is_hit_fraction() {
        let mut est = PingEstimator::new();
        for i in 0..10 {
            est.record(i % 2 == 0, 0.1);
        }
        assert_eq!(est.raw().unwrap().value(), 0.5);
    }

    #[test]
    fn aged_tracks_recent_behaviour_faster_than_raw() {
        let mut est = PingEstimator::new();
        // Long up history, then a down streak.
        for _ in 0..100 {
            est.record(true, 0.3);
        }
        for _ in 0..10 {
            est.record(false, 0.3);
        }
        let raw = est.raw().unwrap().value();
        let aged = est.aged().unwrap().value();
        assert!(aged < raw, "aged {aged} should fall below raw {raw}");
        assert!(aged < 0.05, "aged {aged} should be near zero after streak");
        assert!(raw > 0.85, "raw {raw} still dominated by history");
    }

    #[test]
    fn first_observation_initializes_ewma() {
        let mut est = PingEstimator::new();
        est.record(true, 0.01);
        assert_eq!(est.aged().unwrap().value(), 1.0);
    }

    #[test]
    fn estimates_stay_in_unit_interval() {
        let mut est = PingEstimator::new();
        est.record(true, 1.0);
        est.record(false, 1.0);
        assert!((0.0..=1.0).contains(&est.raw().unwrap().value()));
        assert!((0.0..=1.0).contains(&est.aged().unwrap().value()));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_panics() {
        let mut est = PingEstimator::new();
        est.record(true, 0.0);
    }

    #[test]
    fn slot_footprint_is_sixteen_bytes() {
        // The arena layout the million-host budget counts on.
        assert_eq!(std::mem::size_of::<PingEstimator>(), 16);
    }
}
