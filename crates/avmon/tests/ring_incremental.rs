//! Pins the incrementally-maintained ring pipeline to a from-scratch
//! reference.
//!
//! The contract under test: an [`AvmonService`] in ring mode that tracks
//! churn through O(k) [`RingAssignment::join`] / [`RingAssignment::leave`]
//! deltas — repairing its fixed-width rows and recycling estimator slots
//! in place — produces **bit-identical** estimates to a reference that
//! rebuilds the ring assignment from scratch out of every slot's online
//! set, carrying estimator state per surviving `(monitor, target)` edge
//! and dropping it the moment an edge leaves the assignment. If a delta
//! window ever misses an affected target, or a recycled slot leaks a
//! stale estimator, the two diverge.
//!
//! Ping losses come from per-edge keyed streams, so the reference is
//! exact with and without loss; at `ping_loss = 0` no stream is drawn at
//! all. Cells sweep chunk fan-outs 1/2/8 as required by the layout's
//! order-independence claim.

use std::collections::HashMap;

use avmem_avmon::{
    AssignmentChoice, AvailabilityOracle, AvmonConfig, AvmonService, PingEstimator,
    RingAssignment,
};
use avmem_sim::{SimDuration, SimTime};
use avmem_trace::{ChurnTrace, OvernetModel};
use avmem_util::{Availability, NodeId, Rng, SplitMix64};

/// Must match `avmem_avmon::service::STREAM_PING_EDGE`.
const STREAM_PING_EDGE: u64 = 0x4156_4d4f_4e51;

const VNODES: u32 = 8;
const K: u32 = 4;

/// From-scratch reference: every slot rebuilds the ring assignment from
/// that slot's online set and keeps estimator state only for edges that
/// survived from the previous slot's assignment.
struct RebuildReference {
    config: AvmonConfig,
    seed: u64,
    n: usize,
    estimators: HashMap<(u32, u32), PingEstimator>,
    aggregate: Vec<Option<Availability>>,
    next_slot: usize,
}

impl RebuildReference {
    fn new(trace: &ChurnTrace, config: AvmonConfig, seed: u64) -> Self {
        RebuildReference {
            config,
            seed,
            n: trace.num_nodes(),
            estimators: HashMap::new(),
            aggregate: vec![None; trace.num_nodes()],
            next_slot: 0,
        }
    }

    fn step_to(&mut self, trace: &ChurnTrace, now: SimTime) {
        let slot_ms = trace.slot_duration().as_millis();
        let last_slot = ((now.as_millis() / slot_ms) as usize).min(trace.num_slots() - 1);
        while self.next_slot <= last_slot {
            self.process_slot(trace, self.next_slot);
            self.next_slot += 1;
        }
    }

    fn process_slot(&mut self, trace: &ChurnTrace, slot: usize) {
        let members = (0..self.n as u32).filter(|&i| trace.is_online_in_slot(i as usize, slot));
        let ring = RingAssignment::new(self.n, VNODES, K, members);
        let assignment: Vec<Vec<u32>> = (0..self.n as u32)
            .map(|t| ring.monitors_of_index(t))
            .collect();
        // Edge survival: keep state for edges still assigned, drop the
        // rest (a monitor that loses a target and later regains it
        // starts fresh — exactly the service's slot recycling).
        let mut surviving: HashMap<(u32, u32), PingEstimator> = HashMap::new();
        for (t, monitors) in assignment.iter().enumerate() {
            for &m in monitors {
                let edge = (m, t as u32);
                let est = self.estimators.remove(&edge).unwrap_or_default();
                surviving.insert(edge, est);
            }
        }
        self.estimators = surviving;
        // Ping phase: ring members are online by construction; the
        // target answers iff it is online and the edge's keyed loss
        // stream spares the ping.
        for (t, monitors) in assignment.iter().enumerate() {
            for &m in monitors {
                let answered = trace.is_online_in_slot(t, slot)
                    && (self.config.ping_loss <= 0.0 || {
                        let mut rng = SplitMix64::keyed(&[
                            self.seed,
                            STREAM_PING_EDGE,
                            u64::from(m),
                            t as u64,
                            slot as u64,
                        ]);
                        !rng.chance(self.config.ping_loss)
                    });
                self.estimators
                    .get_mut(&(m, t as u32))
                    .expect("edge was just installed")
                    .record(answered, self.config.alpha);
            }
        }
        // Aggregation: median of the assigned monitors' estimates.
        for (t, monitors) in assignment.iter().enumerate() {
            let mut values: Vec<f64> = Vec::new();
            for &m in monitors {
                let estimator = &self.estimators[&(m, t as u32)];
                let est = if self.config.use_aged {
                    estimator.aged()
                } else {
                    estimator.raw()
                };
                if let Some(av) = est {
                    values.push(av.value());
                }
            }
            if !values.is_empty() {
                values.sort_by(|a, b| a.partial_cmp(b).expect("estimates are never NaN"));
                self.aggregate[t] = Some(Availability::saturating(values[values.len() / 2]));
            }
        }
    }
}

fn ring_config() -> AvmonConfig {
    AvmonConfig {
        assignment: AssignmentChoice::Ring { vnodes: VNODES, k: K },
        ..AvmonConfig::default()
    }
}

fn trace(hosts: usize, seed: u64) -> ChurnTrace {
    OvernetModel::default().hosts(hosts).days(1).generate(seed)
}

fn aggregates(service: &AvmonService, n: usize) -> Vec<Option<f64>> {
    (0..n)
        .map(|i| {
            service
                .estimate(NodeId::new(0), NodeId::new(i as u64), SimTime::ZERO)
                .map(|av| av.value())
        })
        .collect()
}

/// One (config, chop pattern, thread count) cell against the reference.
fn check_cell(config: AvmonConfig, chop: &[u64], threads: usize, label: &str) {
    let trace = trace(90, 17);
    let n = trace.num_nodes();
    let mut reference = RebuildReference::new(&trace, config, 99);
    let mut service = AvmonService::new(&trace, config, 99);
    service.set_threads(threads);
    let mut now = SimTime::ZERO;
    for &mins in chop {
        now += SimDuration::from_mins(mins);
        reference.step_to(&trace, now);
        service.step_to(&trace, now);
        let expected: Vec<Option<f64>> = reference
            .aggregate
            .iter()
            .map(|a| a.map(|av| av.value()))
            .collect();
        assert_eq!(
            aggregates(&service, n),
            expected,
            "{label}: aggregates diverged at {now:?}"
        );
    }
    // Guard against vacuous equality.
    assert!(
        aggregates(&service, n).iter().filter(|a| a.is_some()).count() > n / 2,
        "{label}: reference run produced almost no estimates"
    );
}

#[test]
fn incremental_deltas_match_rebuild_without_ping_loss() {
    // ping_loss = 0 ⇒ no RNG anywhere: any divergence is a delta-window
    // or slot-recycling bug, bit for bit.
    for threads in [1, 2, 8] {
        check_cell(
            ring_config(),
            &[240, 240, 480],
            threads,
            &format!("no-loss/threads={threads}"),
        );
    }
}

#[test]
fn incremental_deltas_match_rebuild_with_ping_loss() {
    let config = AvmonConfig {
        ping_loss: 0.25,
        ..ring_config()
    };
    for threads in [1, 2, 8] {
        check_cell(
            config,
            &[360, 600],
            threads,
            &format!("lossy/threads={threads}"),
        );
    }
}

#[test]
fn incremental_deltas_match_rebuild_in_aged_mode() {
    let config = AvmonConfig {
        ping_loss: 0.1,
        use_aged: true,
        ..ring_config()
    };
    check_cell(config, &[720], 4, "aged");
}

#[test]
fn ring_thread_counts_agree_with_each_other() {
    // Service-vs-service sweep over a lossy config: the fixed-width
    // layout must be chunk-order independent.
    let config = AvmonConfig {
        ping_loss: 0.4,
        ..ring_config()
    };
    let trace = trace(120, 31);
    let n = trace.num_nodes();
    let end = SimTime::ZERO + trace.duration();
    let mut base = AvmonService::new(&trace, config, 7);
    base.set_threads(1);
    base.step_to(&trace, end);
    let base_aggregates = aggregates(&base, n);
    assert!(base_aggregates.iter().any(Option::is_some));
    for threads in [2, 3, 8] {
        let mut other = AvmonService::new(&trace, config, 7);
        other.set_threads(threads);
        other.step_to(&trace, end);
        assert_eq!(
            aggregates(&other, n),
            base_aggregates,
            "threads={threads} diverged"
        );
    }
}
