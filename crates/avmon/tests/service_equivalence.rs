//! Pins the batched, parallel [`AvmonService`] to a seed-style serial
//! reference implementation.
//!
//! The contract under test: the service's per-target aggregates (and
//! error summary) are a pure function of `(trace, config, seed)` —
//! independent of the worker-thread fan-out, of how `step_to` calls chop
//! the timeline, and of the CSR/inverted-index layout. The reference
//! below mirrors the original per-node pipeline: nested per-monitor
//! target `Vec`s, an `O(N)` `position()` scan per (target, monitor) pair
//! during aggregation, and a serial monitor loop — with ping-loss draws
//! taken from the same counter-keyed `(seed, STREAM_PING, monitor,
//! slot)` streams the service uses. With `ping_loss = 0` no stream is
//! ever drawn, so the reference is *exactly* the seed implementation.

use avmem_avmon::{AvailabilityOracle, AvmonConfig, AvmonService, MonitorAssignment, PingEstimator};
use avmem_sim::{SimDuration, SimTime};
use avmem_trace::{ChurnTrace, OvernetModel};
use avmem_util::{Availability, NodeId, Rng, SplitMix64};

/// Must match `avmem_avmon::service::STREAM_PING`.
const STREAM_PING: u64 = 0x4156_4d4f_4e50;

/// The seed-style serial monitoring pipeline: nested Vecs, per-target
/// monitor scans, one monitor at a time.
struct SerialReference {
    config: AvmonConfig,
    seed: u64,
    /// `targets[m]` = indices of the nodes monitor `m` observes.
    targets: Vec<Vec<usize>>,
    /// `estimators[m][k]` = estimator of monitor `m` for `targets[m][k]`.
    estimators: Vec<Vec<PingEstimator>>,
    aggregate: Vec<Option<Availability>>,
    next_slot: usize,
}

impl SerialReference {
    fn new(trace: &ChurnTrace, config: AvmonConfig, seed: u64) -> Self {
        let n = trace.num_nodes();
        let assignment = MonitorAssignment::new(config.cms, n as f64);
        let mut targets = vec![Vec::new(); n];
        for (m, monitor_targets) in targets.iter_mut().enumerate() {
            let m_id = trace.node_id(m);
            for x in 0..n {
                if assignment.is_monitor(m_id, trace.node_id(x)) {
                    monitor_targets.push(x);
                }
            }
        }
        let estimators = targets
            .iter()
            .map(|ts| ts.iter().map(|_| PingEstimator::new()).collect())
            .collect();
        SerialReference {
            config,
            seed,
            targets,
            estimators,
            aggregate: vec![None; n],
            next_slot: 0,
        }
    }

    fn step_to(&mut self, trace: &ChurnTrace, now: SimTime) {
        let slot_ms = trace.slot_duration().as_millis();
        let last_slot = ((now.as_millis() / slot_ms) as usize).min(trace.num_slots() - 1);
        while self.next_slot <= last_slot {
            self.process_slot(trace, self.next_slot);
            self.next_slot += 1;
        }
    }

    fn process_slot(&mut self, trace: &ChurnTrace, slot: usize) {
        let n = trace.num_nodes();
        // Ping phase: one monitor at a time, targets in list order.
        for m in 0..n {
            if !trace.is_online_in_slot(m, slot) {
                continue;
            }
            let mut loss = (self.config.ping_loss > 0.0).then(|| {
                SplitMix64::keyed(&[self.seed, STREAM_PING, m as u64, slot as u64])
            });
            for (k, &t) in self.targets[m].clone().iter().enumerate() {
                let answered = trace.is_online_in_slot(t, slot)
                    && loss
                        .as_mut()
                        .map_or(true, |rng| !rng.chance(self.config.ping_loss));
                self.estimators[m][k].record(answered, self.config.alpha);
            }
        }
        // Aggregation phase: median over online monitors' estimates,
        // found by scanning every monitor's target list.
        for target in 0..n {
            let mut values: Vec<f64> = Vec::new();
            for m in 0..n {
                if !trace.is_online_in_slot(m, slot) {
                    continue;
                }
                if let Some(k) = self.targets[m].iter().position(|&t| t == target) {
                    let est = if self.config.use_aged {
                        self.estimators[m][k].aged()
                    } else {
                        self.estimators[m][k].raw()
                    };
                    if let Some(av) = est {
                        values.push(av.value());
                    }
                }
            }
            if !values.is_empty() {
                values.sort_by(|a, b| a.partial_cmp(b).expect("estimates are never NaN"));
                self.aggregate[target] = Some(Availability::saturating(values[values.len() / 2]));
            }
        }
    }
}

fn trace(hosts: usize, seed: u64) -> ChurnTrace {
    OvernetModel::default().hosts(hosts).days(1).generate(seed)
}

/// All aggregates of the service, queried through the oracle interface.
fn aggregates(service: &AvmonService, n: usize) -> Vec<Option<f64>> {
    (0..n)
        .map(|i| {
            service
                .estimate(NodeId::new(0), NodeId::new(i as u64), SimTime::ZERO)
                .map(|av| av.value())
        })
        .collect()
}

/// One (config, chop pattern, thread count) cell against the reference.
fn check_cell(config: AvmonConfig, chop: &[u64], threads: usize, label: &str) {
    let trace = trace(90, 17);
    let n = trace.num_nodes();
    let mut reference = SerialReference::new(&trace, config, 99);
    let mut service = AvmonService::new(&trace, config, 99);
    service.set_threads(threads);
    let mut now = SimTime::ZERO;
    for &mins in chop {
        now += SimDuration::from_mins(mins);
        reference.step_to(&trace, now);
        service.step_to(&trace, now);
        let expected: Vec<Option<f64>> =
            reference.aggregate.iter().map(|a| a.map(|av| av.value())).collect();
        assert_eq!(
            aggregates(&service, n),
            expected,
            "{label}: aggregates diverged at {now:?}"
        );
    }
    // Guard against vacuous equality.
    assert!(
        aggregates(&service, n).iter().filter(|a| a.is_some()).count() > n / 2,
        "{label}: reference run produced almost no estimates"
    );
    assert!(
        service.mean_absolute_error(&trace).is_some(),
        "{label}: no error summary"
    );
}

#[test]
fn matches_seed_reference_exactly_without_ping_loss() {
    // ping_loss = 0 ⇒ no RNG anywhere: the reference is bit-for-bit the
    // seed implementation, and the batched service must match it.
    for threads in [1, 2, 8] {
        check_cell(
            AvmonConfig::default(),
            &[240, 240, 480],
            threads,
            &format!("no-loss/threads={threads}"),
        );
    }
}

#[test]
fn matches_keyed_reference_with_ping_loss() {
    let config = AvmonConfig {
        ping_loss: 0.25,
        ..AvmonConfig::default()
    };
    for threads in [1, 2, 8] {
        check_cell(
            config,
            &[360, 600],
            threads,
            &format!("lossy/threads={threads}"),
        );
    }
}

#[test]
fn matches_keyed_reference_in_aged_mode() {
    let config = AvmonConfig {
        ping_loss: 0.1,
        use_aged: true,
        ..AvmonConfig::default()
    };
    check_cell(config, &[720], 4, "aged");
}

#[test]
fn chopped_advances_equal_one_shot() {
    // step_to(a); step_to(b) must equal step_to(b): slot processing is a
    // function of the slot index alone.
    let config = AvmonConfig {
        ping_loss: 0.3,
        ..AvmonConfig::default()
    };
    let trace = trace(70, 23);
    let n = trace.num_nodes();
    let end = SimTime::ZERO + SimDuration::from_hours(20);
    let mut one_shot = AvmonService::new(&trace, config, 5);
    one_shot.step_to(&trace, end);
    let mut chopped = AvmonService::new(&trace, config, 5);
    let mut now = SimTime::ZERO;
    while now < end {
        now += SimDuration::from_mins(35);
        chopped.step_to(&trace, now.min(end));
    }
    assert_eq!(one_shot.slots_processed(), chopped.slots_processed());
    assert_eq!(aggregates(&one_shot, n), aggregates(&chopped, n));
}

#[test]
fn thread_counts_agree_with_each_other() {
    // Direct service-vs-service sweep (no reference in the loop), over a
    // lossy config where any ordering bug in the keyed streams shows.
    let config = AvmonConfig {
        ping_loss: 0.4,
        ..AvmonConfig::default()
    };
    let trace = trace(120, 31);
    let n = trace.num_nodes();
    let end = SimTime::ZERO + trace.duration();
    let mut base = AvmonService::new(&trace, config, 7);
    base.set_threads(1);
    base.step_to(&trace, end);
    let base_aggregates = aggregates(&base, n);
    assert!(base_aggregates.iter().any(Option::is_some));
    for threads in [2, 3, 8] {
        let mut other = AvmonService::new(&trace, config, 7);
        other.set_threads(threads);
        other.step_to(&trace, end);
        assert_eq!(
            aggregates(&other, n),
            base_aggregates,
            "threads={threads} diverged"
        );
        assert_eq!(other.mean_absolute_error(&trace), base.mean_absolute_error(&trace));
    }
}

#[test]
fn monitors_of_index_matches_the_assignment_rule() {
    let trace = trace(60, 41);
    let service = AvmonService::new(&trace, AvmonConfig::default(), 1);
    for target in 0..trace.num_nodes() {
        let monitors = service.monitors_of_index(target);
        let expected: Vec<usize> = (0..trace.num_nodes())
            .filter(|&m| {
                service
                    .assignment()
                    .is_monitor(trace.node_id(m), trace.node_id(target))
            })
            .collect();
        assert_eq!(monitors, expected, "target {target}");
    }
}
