//! Property-based tests for the monitoring substrate.

use proptest::prelude::*;

use avmem_avmon::{
    AvailabilityOracle, MonitorAssignment, NoisyOracle, PingEstimator, TraceOracle,
};
use avmem_sim::{SimDuration, SimTime};
use avmem_trace::OvernetModel;
use avmem_util::NodeId;

proptest! {
    #[test]
    fn assignment_is_symmetric_between_views(
        cms in 1.0f64..20.0,
        n in 10.0f64..1000.0,
        m in any::<u64>(),
        x in any::<u64>(),
    ) {
        let assignment = MonitorAssignment::new(cms, n);
        // is_monitor is a pure function: same answer on re-evaluation.
        prop_assert_eq!(
            assignment.is_monitor(NodeId::new(m), NodeId::new(x)),
            assignment.is_monitor(NodeId::new(m), NodeId::new(x))
        );
        // Never self-monitoring.
        prop_assert!(!assignment.is_monitor(NodeId::new(m), NodeId::new(m)));
    }

    #[test]
    fn assignment_threshold_monotone_in_cms(
        cms1 in 0.5f64..10.0,
        cms2 in 0.5f64..10.0,
        n in 20.0f64..500.0,
        m in any::<u64>(),
        x in any::<u64>(),
    ) {
        prop_assume!(m != x);
        let (lo, hi) = if cms1 <= cms2 { (cms1, cms2) } else { (cms2, cms1) };
        let tight = MonitorAssignment::new(lo, n);
        let loose = MonitorAssignment::new(hi, n);
        // A monitor under the tighter rule is also one under the looser.
        if tight.is_monitor(NodeId::new(m), NodeId::new(x)) {
            prop_assert!(loose.is_monitor(NodeId::new(m), NodeId::new(x)));
        }
    }

    #[test]
    fn estimator_raw_matches_counts(outcomes in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut est = PingEstimator::new(0.1);
        for &answered in &outcomes {
            est.record(answered);
        }
        let hits = outcomes.iter().filter(|&&b| b).count();
        let expected = hits as f64 / outcomes.len() as f64;
        prop_assert!((est.raw().unwrap().value() - expected).abs() < 1e-12);
        prop_assert_eq!(est.samples(), outcomes.len() as u64);
    }

    #[test]
    fn estimator_aged_stays_in_unit_interval(
        alpha in 0.01f64..=1.0,
        outcomes in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut est = PingEstimator::new(alpha);
        for &answered in &outcomes {
            est.record(answered);
            let aged = est.aged().unwrap().value();
            prop_assert!((0.0..=1.0).contains(&aged));
        }
    }

    #[test]
    fn noisy_oracle_error_is_bounded(
        error in 0.0f64..0.3,
        seed in any::<u64>(),
        target in 0u64..30,
        querier in 0u64..30,
        at in 0u64..100_000_000,
    ) {
        let trace = OvernetModel::default().hosts(30).days(1).generate(3);
        let truth = TraceOracle::new(&trace);
        let noisy = NoisyOracle::new(
            TraceOracle::new(&trace),
            error,
            SimDuration::from_mins(20),
            seed,
        );
        let t = SimTime::from_millis(at);
        let q = NodeId::new(querier);
        let x = NodeId::new(target);
        let true_v = truth.estimate(q, x, t).unwrap().value();
        let noisy_v = noisy.estimate(q, x, t).unwrap().value();
        // Error bounded by amplitude, modulo the [0,1] clamp.
        prop_assert!((noisy_v - true_v).abs() <= error + 1e-12);
        prop_assert!((0.0..=1.0).contains(&noisy_v));
    }

    #[test]
    fn shared_noise_is_querier_invariant(
        error in 0.0f64..0.3,
        seed in any::<u64>(),
        target in 0u64..30,
        q1 in 0u64..30,
        q2 in 0u64..30,
        at in 0u64..100_000_000,
    ) {
        let trace = OvernetModel::default().hosts(30).days(1).generate(3);
        let oracle = NoisyOracle::shared(
            TraceOracle::new(&trace),
            error,
            SimDuration::from_mins(20),
            seed,
        );
        let t = SimTime::from_millis(at);
        let x = NodeId::new(target);
        prop_assert_eq!(
            oracle.estimate(NodeId::new(q1), x, t),
            oracle.estimate(NodeId::new(q2), x, t)
        );
    }
}
