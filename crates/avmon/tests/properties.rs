//! Property-based tests for the monitoring substrate.

use proptest::prelude::*;

use avmem_avmon::{
    AvailabilityOracle, MonitorAssignment, NoisyOracle, PingEstimator, RingAssignment,
    TraceOracle,
};
use avmem_sim::{SimDuration, SimTime};
use avmem_trace::OvernetModel;
use avmem_util::NodeId;

proptest! {
    #[test]
    fn assignment_is_symmetric_between_views(
        cms in 1.0f64..20.0,
        n in 10.0f64..1000.0,
        m in any::<u64>(),
        x in any::<u64>(),
    ) {
        let assignment = MonitorAssignment::new(cms, n);
        // is_monitor is a pure function: same answer on re-evaluation.
        prop_assert_eq!(
            assignment.is_monitor(NodeId::new(m), NodeId::new(x)),
            assignment.is_monitor(NodeId::new(m), NodeId::new(x))
        );
        // Never self-monitoring.
        prop_assert!(!assignment.is_monitor(NodeId::new(m), NodeId::new(m)));
    }

    #[test]
    fn assignment_threshold_monotone_in_cms(
        cms1 in 0.5f64..10.0,
        cms2 in 0.5f64..10.0,
        n in 20.0f64..500.0,
        m in any::<u64>(),
        x in any::<u64>(),
    ) {
        prop_assume!(m != x);
        let (lo, hi) = if cms1 <= cms2 { (cms1, cms2) } else { (cms2, cms1) };
        let tight = MonitorAssignment::new(lo, n);
        let loose = MonitorAssignment::new(hi, n);
        // A monitor under the tighter rule is also one under the looser.
        if tight.is_monitor(NodeId::new(m), NodeId::new(x)) {
            prop_assert!(loose.is_monitor(NodeId::new(m), NodeId::new(x)));
        }
    }

    #[test]
    fn estimator_raw_matches_counts(outcomes in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut est = PingEstimator::new();
        for &answered in &outcomes {
            est.record(answered, 0.1);
        }
        let hits = outcomes.iter().filter(|&&b| b).count();
        let expected = hits as f64 / outcomes.len() as f64;
        prop_assert!((est.raw().unwrap().value() - expected).abs() < 1e-12);
        prop_assert_eq!(est.samples(), outcomes.len() as u64);
    }

    #[test]
    fn estimator_aged_stays_in_unit_interval(
        alpha in 0.01f64..=1.0,
        outcomes in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut est = PingEstimator::new();
        for &answered in &outcomes {
            est.record(answered, alpha);
            let aged = est.aged().unwrap().value();
            prop_assert!((0.0..=1.0).contains(&aged));
        }
    }

    #[test]
    fn noisy_oracle_error_is_bounded(
        error in 0.0f64..0.3,
        seed in any::<u64>(),
        target in 0u64..30,
        querier in 0u64..30,
        at in 0u64..100_000_000,
    ) {
        let trace = OvernetModel::default().hosts(30).days(1).generate(3);
        let truth = TraceOracle::new(&trace);
        let noisy = NoisyOracle::new(
            TraceOracle::new(&trace),
            error,
            SimDuration::from_mins(20),
            seed,
        );
        let t = SimTime::from_millis(at);
        let q = NodeId::new(querier);
        let x = NodeId::new(target);
        let true_v = truth.estimate(q, x, t).unwrap().value();
        let noisy_v = noisy.estimate(q, x, t).unwrap().value();
        // Error bounded by amplitude, modulo the [0,1] clamp.
        prop_assert!((noisy_v - true_v).abs() <= error + 1e-12);
        prop_assert!((0.0..=1.0).contains(&noisy_v));
    }

    #[test]
    fn ring_assigns_exactly_k_distinct_monitors(
        n in 20usize..200,
        vnodes in 1u32..8,
        k in 1u32..8,
    ) {
        // With every node a member and n ≫ k, each target must get
        // exactly k distinct monitors, never including itself.
        let ring = RingAssignment::new(n, vnodes, k, 0..n as u32);
        for t in 0..n as u32 {
            let monitors = ring.monitors_of_index(t);
            prop_assert_eq!(monitors.len(), k as usize, "target {} got {:?}", t, &monitors);
            let mut deduped = monitors.clone();
            deduped.sort_unstable();
            deduped.dedup();
            prop_assert_eq!(deduped.len(), k as usize, "duplicate monitor for target {}", t);
            prop_assert!(!monitors.contains(&t), "target {} monitors itself", t);
            prop_assert!(monitors.iter().all(|&m| m < n as u32));
        }
    }

    #[test]
    fn ring_assignment_is_consistent(
        n in 20usize..150,
        vnodes in 1u32..6,
        k in 1u32..6,
    ) {
        // Consistency (the AVMON property AVMEM relies on): the same
        // membership always yields the same monitors, regardless of how
        // the ring was reached.
        let a = RingAssignment::new(n, vnodes, k, 0..n as u32);
        let b = RingAssignment::new(n, vnodes, k, 0..n as u32);
        for t in 0..n as u32 {
            prop_assert_eq!(a.monitors_of_index(t), b.monitors_of_index(t));
        }
    }

    #[test]
    fn shared_noise_is_querier_invariant(
        error in 0.0f64..0.3,
        seed in any::<u64>(),
        target in 0u64..30,
        q1 in 0u64..30,
        q2 in 0u64..30,
        at in 0u64..100_000_000,
    ) {
        let trace = OvernetModel::default().hosts(30).days(1).generate(3);
        let oracle = NoisyOracle::shared(
            TraceOracle::new(&trace),
            error,
            SimDuration::from_mins(20),
            seed,
        );
        let t = SimTime::from_millis(at);
        let x = NodeId::new(target);
        prop_assert_eq!(
            oracle.estimate(NodeId::new(q1), x, t),
            oracle.estimate(NodeId::new(q2), x, t)
        );
    }
}

/// Targets-per-monitor load for every member of a full ring.
fn monitor_loads(n: usize, vnodes: u32, k: u32) -> Vec<usize> {
    let ring = RingAssignment::new(n, vnodes, k, 0..n as u32);
    let mut loads = vec![0usize; n];
    for t in 0..n as u32 {
        for m in ring.monitors_of_index(t) {
            loads[m as usize] += 1;
        }
    }
    loads
}

#[test]
fn ring_load_evens_out_as_vnodes_grow() {
    // Each target has k monitors, so mean load is exactly k; virtual
    // points shrink the spread around it. Deterministic (keyed hashes),
    // so the bounds are exact, not statistical.
    let (n, k) = (400, 4);
    let spread = |vnodes: u32| {
        let loads = monitor_loads(n, vnodes, k);
        let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
        assert!((mean - k as f64).abs() < 1e-9, "mean load must be k");
        let var = loads
            .iter()
            .map(|&l| (l as f64 - mean).powi(2))
            .sum::<f64>()
            / loads.len() as f64;
        let max = *loads.iter().max().unwrap();
        (var, max)
    };
    let (var_1, max_1) = spread(1);
    let (var_32, max_32) = spread(32);
    assert!(
        var_32 < var_1 / 2.0,
        "32 vnodes should at least halve load variance: {var_32} vs {var_1}"
    );
    assert!(max_32 <= max_1, "max load should not grow: {max_32} vs {max_1}");
    assert!(
        (max_32 as f64) < 3.0 * k as f64,
        "max load {max_32} should stay within 3x the mean {k}"
    );
}

#[test]
fn join_and_leave_deltas_do_not_scale_with_n() {
    // The O(k) claim: the number of targets touched by one membership
    // change depends on k and vnodes, never on N. Sample many members at
    // two ring sizes an order of magnitude apart and compare worst cases.
    let (vnodes, k) = (8, 4);
    let max_delta = |n: usize| {
        let mut ring = RingAssignment::new(n, vnodes, k, 0..n as u32);
        let mut worst = 0usize;
        for m in (0..n as u32).step_by(n / 40) {
            let left = ring.leave(m);
            let rejoined = ring.join(m);
            worst = worst.max(left.len()).max(rejoined.len());
        }
        worst
    };
    let small = max_delta(2_000);
    let large = max_delta(20_000);
    // Worst case over the sample must not grow with N (generous slack:
    // arc occupancy is hash-random, so allow 2x wiggle either way).
    assert!(
        (large as f64) < 2.0 * small as f64 + 16.0,
        "delta grew with N: {small} targets at 2k hosts, {large} at 20k"
    );
    // And both are tiny against N — far below any linear term.
    assert!(small < 2_000 / 10, "delta {small} not sublinear at 2k hosts");
    assert!(large < 20_000 / 100, "delta {large} not sublinear at 20k hosts");
}
