//! Property-based tests for the utility layer: hashing, RNG, statistics.

use proptest::prelude::*;

use avmem_util::stats::{Ecdf, Histogram, Summary};
use avmem_util::{
    consistent_hash, consistent_hash_keyed, normalized_hash, sha256, Availability, NodeId, Rng,
    SplitMix64, Xoshiro256,
};

proptest! {
    #[test]
    fn sha256_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(sha256(&data), sha256(&data));
    }

    #[test]
    fn sha256_appending_changes_digest(data in proptest::collection::vec(any::<u8>(), 0..256), extra in any::<u8>()) {
        let mut longer = data.clone();
        longer.push(extra);
        prop_assert_ne!(sha256(&data), sha256(&longer));
    }

    #[test]
    fn normalized_hash_in_unit_interval(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let h = normalized_hash(&data);
        prop_assert!((0.0..1.0).contains(&h));
    }

    #[test]
    fn consistent_hash_is_pure(x in any::<u64>(), y in any::<u64>()) {
        let a = consistent_hash(NodeId::new(x), NodeId::new(y));
        let b = consistent_hash(NodeId::new(x), NodeId::new(y));
        prop_assert_eq!(a, b);
        prop_assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn keyed_hashes_differ_across_domains(x in any::<u64>(), y in any::<u64>()) {
        let a = consistent_hash_keyed(b"domain-a", NodeId::new(x), NodeId::new(y));
        let b = consistent_hash_keyed(b"domain-b", NodeId::new(x), NodeId::new(y));
        // Equality would be a 2^-53 coincidence; treat as failure.
        prop_assert_ne!(a, b);
    }

    #[test]
    fn rng_range_respects_bound(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.range_u64(bound) < bound);
        }
    }

    #[test]
    fn rng_f64_in_unit_interval(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            let v = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), len in 0usize..64) {
        let mut rng = Xoshiro256::new(seed);
        let mut values: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn sample_is_distinct_subset(seed in any::<u64>(), n in 1usize..100, k in 0usize..32) {
        let mut rng = Xoshiro256::new(seed);
        let picked = rng.sample(0..n, k);
        prop_assert_eq!(picked.len(), k.min(n));
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), picked.len());
        prop_assert!(picked.iter().all(|&v| v < n));
    }

    #[test]
    fn availability_new_accepts_exactly_unit_interval(v in -2.0f64..3.0) {
        let result = Availability::new(v);
        prop_assert_eq!(result.is_ok(), (0.0..=1.0).contains(&v));
        if let Ok(av) = result {
            prop_assert_eq!(av.value(), v);
        }
    }

    #[test]
    fn availability_saturating_always_valid(v in any::<f64>()) {
        let av = Availability::saturating(v);
        prop_assert!((0.0..=1.0).contains(&av.value()));
    }

    #[test]
    fn summary_orders_min_median_max(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_values(values);
        prop_assert!(s.min() <= s.median());
        prop_assert!(s.median() <= s.max());
        prop_assert!(s.min() <= s.mean() && s.mean() <= s.max());
    }

    #[test]
    fn summary_quantiles_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let s = Summary::from_values(values);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(s.quantile(lo) <= s.quantile(hi));
    }

    #[test]
    fn histogram_total_matches_inserts(values in proptest::collection::vec(0.0f64..=1.0, 0..200), buckets in 1usize..32) {
        let mut h = Histogram::new(buckets);
        for &v in &values {
            h.add(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        let sum: u64 = (0..buckets).map(|i| h.count(i)).sum();
        prop_assert_eq!(sum, values.len() as u64);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(values in proptest::collection::vec(-1e3f64..1e3, 1..100), x1 in -1e3f64..1e3, x2 in -1e3f64..1e3) {
        let cdf = Ecdf::from_values(values);
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let f_lo = cdf.fraction_at_or_below(lo);
        let f_hi = cdf.fraction_at_or_below(hi);
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!(f_lo <= f_hi);
    }

    #[test]
    fn ecdf_quantile_inverts(values in proptest::collection::vec(-1e3f64..1e3, 1..100), q in 0.01f64..1.0) {
        let cdf = Ecdf::from_values(values);
        let x = cdf.quantile(q);
        // At least fraction q of samples are ≤ the q-quantile.
        prop_assert!(cdf.fraction_at_or_below(x) + 1e-12 >= q);
    }
}

mod shard_partition {
    use super::*;
    use avmem_util::ShardPartition;

    proptest! {
        #[test]
        fn every_node_is_owned_exactly_once(n in 0usize..5000, shards in 0usize..64) {
            let part = ShardPartition::new(n, shards);
            // Every node has exactly one owner, and the owner's range
            // contains it — i.e. the shard ranges tile 0..n.
            let mut covered = 0usize;
            for s in 0..part.shards() {
                let range = part.range(s);
                prop_assert_eq!(range.start, covered, "gap or overlap before shard {}", s);
                for i in range.clone() {
                    prop_assert_eq!(part.owner(i), s);
                }
                covered = range.end;
            }
            prop_assert_eq!(covered, n);
        }

        #[test]
        fn shard_sizes_are_balanced(n in 1usize..5000, shards in 1usize..64) {
            let part = ShardPartition::new(n, shards);
            let sizes: Vec<usize> = (0..part.shards()).map(|s| part.range(s).len()).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1, "unbalanced: {:?}", sizes);
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        }

        #[test]
        fn split_mut_covers_the_slice(n in 0usize..2000, shards in 1usize..32) {
            let part = ShardPartition::new(n, shards);
            let mut items: Vec<u32> = vec![0; n];
            for (s, slice) in part.split_mut(&mut items).into_iter().enumerate() {
                for x in slice.iter_mut() {
                    *x += 1 + s as u32;
                }
            }
            for (i, &x) in items.iter().enumerate() {
                prop_assert_eq!(x as usize, 1 + part.owner(i));
            }
        }
    }
}
