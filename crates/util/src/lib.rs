#![warn(missing_docs)]

//! Shared utilities for the AVMEM reproduction.
//!
//! This crate hosts the small, dependency-free building blocks every other
//! crate in the workspace leans on:
//!
//! * [`NodeId`] — opaque node identifiers (the paper's `id(x)`, an IP:port
//!   or hash-based identity);
//! * [`Availability`] — a validated `[0, 1]` availability value (the
//!   paper's `av(x)`);
//! * [`sha256`] — a from-scratch SHA-256 used to build the *normalized
//!   consistent hash* `H(id(x), id(y)) ∈ [0, 1]` of the AVMEM predicate
//!   framework (Eq. 1 of the paper);
//! * [`ring`] — a keyed consistent-hash ring with virtual points, the
//!   `O(log N)` backbone of the AVMON ring assignment strategy;
//! * [`rng`] — deterministic, seedable random number generators
//!   (SplitMix64 and xoshiro256**) so that whole-system simulations are
//!   bit-reproducible;
//! * [`stats`] — summary statistics, histograms and empirical CDFs used by
//!   the experiment harness;
//! * [`parallel`] — chunk-parallelism for the simulator's hot loops on a
//!   persistent, lazily started worker pool (no external thread-pool
//!   dependency; `AVMEM_THREADS` caps it);
//! * [`shard`] — contiguous shard partitioning of the node population,
//!   the ownership map of the sharded maintenance harness.
//!
//! # Examples
//!
//! ```
//! use avmem_util::{consistent_hash, Availability, NodeId};
//!
//! let x = NodeId::new(42);
//! let y = NodeId::new(7);
//! let h = consistent_hash(x, y);
//! assert!((0.0..=1.0).contains(&h));
//! // Consistency: any party evaluating the hash gets the same value.
//! assert_eq!(h, consistent_hash(x, y));
//!
//! let av = Availability::new(0.73).unwrap();
//! assert_eq!(av.value(), 0.73);
//! ```

pub mod availability;
pub mod hash;
pub mod heap;
pub mod id;
pub mod parallel;
pub mod ring;
pub mod rng;
pub mod shard;
pub mod stats;

pub use availability::{Availability, AvailabilityError};
pub use hash::{
    consistent_hash, consistent_hash_keyed, consistent_point_keyed, normalized_hash, sha256,
    Digest,
};
pub use heap::{heap_stats, heap_tracking_installed, peak_rss_bytes, HeapStats};
pub use id::NodeId;
pub use ring::HashRing;
pub use rng::{Rng, SplitMix64, Xoshiro256};
pub use shard::ShardPartition;
