//! Availability values.
//!
//! Availability in the paper is "fraction uptime" — a real number in
//! `[0, 1]` reported by the availability monitoring service. [`Availability`]
//! is a validated newtype so that predicate code can rely on the range
//! invariant instead of re-checking it everywhere.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A node availability: fraction of time the node is up, in `[0, 1]`.
///
/// The type upholds the invariant that the wrapped value is a finite float
/// inside the unit interval, which lets predicate evaluation (Eq. 1) and
/// range queries (`[b, b+δ] ⊆ [0,1]`) avoid defensive checks.
///
/// # Examples
///
/// ```
/// use avmem_util::Availability;
///
/// let a = Availability::new(0.25)?;
/// let b = Availability::new(0.75)?;
/// assert!(a < b);
/// assert_eq!(a.distance(b), 0.5);
/// # Ok::<(), avmem_util::AvailabilityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Availability(f64);

/// Error returned when constructing an [`Availability`] outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityError {
    value: f64,
}

impl fmt::Display for AvailabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "availability must be a finite value in [0, 1], got {}",
            self.value
        )
    }
}

impl std::error::Error for AvailabilityError {}

impl Availability {
    /// The lowest possible availability (never up).
    pub const ZERO: Availability = Availability(0.0);
    /// The highest possible availability (always up).
    pub const ONE: Availability = Availability(1.0);

    /// Creates an availability, validating that `value ∈ [0, 1]` and is
    /// finite.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError`] if `value` is NaN, infinite, negative
    /// or greater than one.
    pub fn new(value: f64) -> Result<Self, AvailabilityError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Availability(value))
        } else {
            Err(AvailabilityError { value })
        }
    }

    /// Creates an availability, clamping out-of-range finite values into
    /// `[0, 1]`. NaN becomes `0`.
    ///
    /// Useful when deriving availabilities from noisy estimators (e.g. the
    /// monitoring service adding error to a true value).
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Availability(0.0)
        } else {
            Availability(value.clamp(0.0, 1.0))
        }
    }

    /// Returns the wrapped fraction-uptime value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Absolute distance in availability space, `|av(x) − av(y)|`.
    ///
    /// This is the metric the horizontal-sliver band `±ε` and the
    /// simulated-annealing forwarding rule use.
    pub fn distance(self, other: Availability) -> f64 {
        (self.0 - other.0).abs()
    }
}

impl Default for Availability {
    fn default() -> Self {
        Availability::ZERO
    }
}

impl fmt::Display for Availability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl TryFrom<f64> for Availability {
    type Error = AvailabilityError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Availability::new(value)
    }
}

impl From<Availability> for f64 {
    fn from(av: Availability) -> Self {
        av.0
    }
}

impl Eq for Availability {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Availability {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: the invariant forbids NaN.
        self.0.partial_cmp(&other.0).expect("availability is never NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_unit_interval() {
        assert!(Availability::new(0.0).is_ok());
        assert!(Availability::new(1.0).is_ok());
        assert!(Availability::new(0.5).is_ok());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Availability::new(-0.01).is_err());
        assert!(Availability::new(1.01).is_err());
        assert!(Availability::new(f64::NAN).is_err());
        assert!(Availability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Availability::saturating(-2.0), Availability::ZERO);
        assert_eq!(Availability::saturating(7.0), Availability::ONE);
        assert_eq!(Availability::saturating(f64::NAN), Availability::ZERO);
        assert_eq!(Availability::saturating(0.4).value(), 0.4);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Availability::new(0.2).unwrap();
        let b = Availability::new(0.9).unwrap();
        assert!((a.distance(b) - 0.7).abs() < 1e-12);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn total_order_matches_value_order() {
        let mut avs = vec![
            Availability::new(0.9).unwrap(),
            Availability::new(0.1).unwrap(),
            Availability::new(0.5).unwrap(),
        ];
        avs.sort();
        let values: Vec<f64> = avs.into_iter().map(Availability::value).collect();
        assert_eq!(values, vec![0.1, 0.5, 0.9]);
    }

    #[test]
    fn error_message_names_the_offender() {
        let err = Availability::new(1.5).unwrap_err();
        assert!(err.to_string().contains("1.5"));
    }
}
