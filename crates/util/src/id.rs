//! Node identifiers.
//!
//! The paper identifies a node `x` by `id(x)`, "the identifier (hash-based
//! or IP-port) of node x". For the simulator we use a compact 64-bit
//! identity; a real deployment would derive it from the IP:port pair. All
//! the consistency arguments of the paper only require that identifiers are
//! stable and globally agreed upon, which a newtype over `u64` provides.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Opaque, stable identifier of a node (the paper's `id(x)`).
///
/// `NodeId` is deliberately small and `Copy`: overlay state at every node
/// stores many of them, and the discrete-event simulator shuttles them
/// around in messages.
///
/// # Examples
///
/// ```
/// use avmem_util::NodeId;
///
/// let a = NodeId::new(3);
/// let b = NodeId::new(4);
/// assert!(a < b);
/// assert_eq!(a.raw(), 3);
/// assert_eq!(format!("{a}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates an identifier from its raw 64-bit representation.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Returns the raw 64-bit representation.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the identifier as a canonical byte string, used as hash
    /// input by the consistent predicate (Eq. 1 of the paper).
    pub const fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Derives an identifier from an IPv4 address and port, mirroring the
    /// paper's "IP and port" identity option.
    ///
    /// # Examples
    ///
    /// ```
    /// use avmem_util::NodeId;
    ///
    /// let id = NodeId::from_ip_port([10, 0, 0, 1], 9000);
    /// assert_eq!(id, NodeId::from_ip_port([10, 0, 0, 1], 9000));
    /// assert_ne!(id, NodeId::from_ip_port([10, 0, 0, 2], 9000));
    /// ```
    pub const fn from_ip_port(ip: [u8; 4], port: u16) -> Self {
        let raw = ((ip[0] as u64) << 40)
            | ((ip[1] as u64) << 32)
            | ((ip[2] as u64) << 24)
            | ((ip[3] as u64) << 16)
            | (port as u64);
        NodeId(raw)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn byte_encoding_is_big_endian() {
        assert_eq!(NodeId::new(1).to_bytes(), [0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn ip_port_identity_is_injective_for_distinct_hosts() {
        let a = NodeId::from_ip_port([192, 168, 0, 1], 80);
        let b = NodeId::from_ip_port([192, 168, 0, 1], 81);
        let c = NodeId::from_ip_port([192, 168, 1, 1], 80);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(17).to_string(), "n17");
    }

    #[test]
    fn round_trips_through_u64() {
        let id = NodeId::new(0xdead_beef);
        assert_eq!(NodeId::from(u64::from(id)), id);
    }
}
