//! Minimal data-parallelism helpers on a persistent worker pool.
//!
//! The workspace is offline (no rayon); the hot loops that benefit from
//! threads — pair-hash row computation, the converged overlay rebuild,
//! the batched event-driven maintenance phases, and the AVMON ping/
//! aggregate sweeps — all reduce to "run independent work over
//! contiguous chunks of a slice". [`par_chunks_mut`] provides exactly
//! that; since the maintenance loop dispatches one such section *per
//! timestamp cohort* (thousands per simulated hour), the chunks execute
//! on a lazily started, process-wide [`WorkerPool`] whose threads park
//! between jobs instead of being respawned per section.
//!
//! Work items must be *independent*: results may not depend on how the
//! slice is split, which keeps every caller deterministic regardless of
//! the machine's core count or the pool's size. The `AVMEM_THREADS`
//! environment variable caps the global pool (and the default chunk
//! fan-out) when set.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Number of worker threads worth using on this machine: the
/// `AVMEM_THREADS` environment variable when set to a positive integer,
/// otherwise the available hardware parallelism capped by the cgroup CPU
/// quota (if any).
///
/// Containerized runs routinely see every host core through
/// `available_parallelism` while their cgroup caps them to a fraction of
/// one — an oversubscribed pool then pays context-switch and throttling
/// overhead for parallelism that does not exist. The quota (cgroup v2
/// `cpu.max`, v1 `cpu.cfs_quota_us`/`cpu.cfs_period_us`) is the real
/// ceiling, so it wins when it is lower.
pub fn default_threads() -> usize {
    match std::env::var("AVMEM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => {
            let hardware = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            match cgroup_quota_threads() {
                Some(quota) => hardware.min(quota),
                None => hardware,
            }
        }
    }
}

/// The effective CPU count allowed by the process's cgroup quota, or
/// `None` when unlimited/unreadable. Reads cgroup v2 first (`cpu.max`),
/// then falls back to v1 (`cpu.cfs_quota_us` + `cpu.cfs_period_us`).
fn cgroup_quota_threads() -> Option<usize> {
    let read = |path: &str| std::fs::read_to_string(path).ok();
    if let Some(text) = read("/sys/fs/cgroup/cpu.max") {
        return parse_cpu_max(&text);
    }
    let quota = read("/sys/fs/cgroup/cpu/cpu.cfs_quota_us")?;
    let period = read("/sys/fs/cgroup/cpu/cpu.cfs_period_us")?;
    quota_to_threads(quota.trim().parse().ok()?, period.trim().parse().ok()?)
}

/// Parses cgroup v2 `cpu.max` ("`max 100000`" = unlimited, or
/// "`<quota> <period>`" in microseconds) into an effective CPU count.
fn parse_cpu_max(text: &str) -> Option<usize> {
    let mut fields = text.split_whitespace();
    let quota = fields.next()?;
    if quota == "max" {
        return None;
    }
    quota_to_threads(quota.parse().ok()?, fields.next()?.parse().ok()?)
}

/// `ceil(quota / period)` CPUs: a 150 ms-per-100 ms quota is "2 cores
/// worth of headroom" for sizing purposes. Non-positive quotas mean
/// unlimited (cgroup v1 uses `-1`).
fn quota_to_threads(quota: i64, period: i64) -> Option<usize> {
    if quota <= 0 || period <= 0 {
        return None;
    }
    Some((quota as usize).div_ceil(period as usize).max(1))
}

/// A job as the pool stores it: lifetime-erased (see
/// [`WorkerPool::run_boxed`] for why that is sound).
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between the submitting threads and the pool workers.
struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here while the queue is empty.
    work: Condvar,
}

struct PoolState {
    /// Pending jobs, each tagged with its batch — concurrent batches
    /// interleave in the queue but complete independently.
    queue: Vec<(Task, Arc<BatchCtl>)>,
    shutdown: bool,
}

/// Per-batch completion accounting: each [`WorkerPool::run_boxed`] call
/// owns one, so concurrent batches on the shared pool cannot observe
/// each other's completion or steal each other's panics.
struct BatchCtl {
    progress: Mutex<BatchProgress>,
    /// The batch's submitter parks here until `pending` reaches zero.
    done: Condvar,
}

struct BatchProgress {
    /// Jobs of this batch not yet finished (queued or running).
    pending: usize,
    /// First panic payload observed in a job of this batch.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

thread_local! {
    /// Whether the current thread is executing a pool job. Nested
    /// [`WorkerPool::run_boxed`] calls from inside a job run inline —
    /// a worker blocking on its own batch would deadlock the pool.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// A persistent pool of parked worker threads for scoped, blocking
/// data-parallel sections.
///
/// Unlike `std::thread::scope`, which spawns and joins OS threads per
/// section, the pool's workers are spawned once and park on a condvar
/// between jobs — per-section overhead is one lock round-trip and an
/// unpark, which is what makes per-cohort parallelism in the maintenance
/// loop affordable. A section ([`WorkerPool::run_boxed`]) blocks the
/// submitting thread until every job of the batch has finished, so jobs
/// may borrow from the submitting stack frame.
///
/// The process-wide pool used by [`par_chunks_mut`] is [`global_pool`];
/// explicitly sized pools are mainly for tests.
///
/// # Examples
///
/// ```
/// use avmem_util::parallel::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let mut halves = vec![0u64; 2];
/// let (lo, hi) = halves.split_at_mut(1);
/// pool.run_boxed(vec![
///     Box::new(|| lo[0] = 1),
///     Box::new(|| hi[0] = 2),
/// ]);
/// assert_eq!(halves, vec![1, 2]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Cumulative submission counters, for observability surfaces (see
    /// [`WorkerPool::pool_stats`]).
    batches: AtomicU64,
    jobs: AtomicU64,
    inline_batches: AtomicU64,
}

/// A point-in-time view of a [`WorkerPool`]'s cumulative submission
/// counters; see [`WorkerPool::pool_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Sections submitted via [`WorkerPool::run_boxed`].
    pub batches: u64,
    /// Individual jobs across all submitted batches.
    pub jobs: u64,
    /// Batches that degraded to inline execution (single job, no
    /// background workers, or nested submission from inside a job).
    pub inline_batches: u64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` total parallelism: `threads - 1`
    /// parked worker threads plus the submitting thread, which always
    /// participates in its own batches.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("avmem-pool-{k}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
            batches: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            inline_batches: AtomicU64::new(0),
        }
    }

    /// Total parallelism of the pool (background workers + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cumulative submission counters since construction. Observation
    /// only; the counters are updated with relaxed atomics at batch
    /// granularity, so reading them costs nothing on the job hot path.
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            batches: self.batches.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            inline_batches: self.inline_batches.load(Ordering::Relaxed),
        }
    }

    /// Runs a batch of independent jobs to completion, in parallel when
    /// the pool has background workers, and returns once every job has
    /// finished. Jobs may borrow data from the caller's stack frame: the
    /// blocking-until-done contract is exactly what makes the internal
    /// lifetime erasure sound (no job can outlive this call).
    ///
    /// Jobs must be independent — execution order and thread placement
    /// are unspecified. Single-job batches, pools without background
    /// workers, and nested calls from inside a pool job all degrade to
    /// running inline on the caller's thread.
    ///
    /// # Panics
    ///
    /// If a job panics, the batch still runs to completion and the first
    /// panic payload of *this batch* is resumed on the caller (matching
    /// `std::thread::scope`). Batches are accounted independently, so
    /// concurrent submitters on the shared pool neither wait on each
    /// other's jobs nor observe each other's panics — though a submitter
    /// may execute another batch's queued jobs while its own are in
    /// flight.
    pub fn run_boxed<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        if jobs.len() <= 1 || self.workers.is_empty() || IN_POOL_JOB.with(Cell::get) {
            self.inline_batches.fetch_add(1, Ordering::Relaxed);
            for job in jobs {
                job();
            }
            return;
        }
        // SAFETY: only the lifetime bound is erased; the layout of
        // `Vec<Box<dyn FnOnce() + Send>>` does not depend on it. Every
        // erased job is executed (or dropped) before this function
        // returns — the wait loop below blocks until the batch's
        // `pending` count reaches zero — so no job or its borrows
        // outlive `'scope`.
        let erased: Vec<Task> = unsafe {
            std::mem::transmute::<
                Vec<Box<dyn FnOnce() + Send + 'scope>>,
                Vec<Box<dyn FnOnce() + Send + 'static>>,
            >(jobs)
        };
        let ctl = Arc::new(BatchCtl {
            progress: Mutex::new(BatchProgress {
                pending: erased.len(),
                panic: None,
            }),
            done: Condvar::new(),
        });
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state
                .queue
                .extend(erased.into_iter().map(|task| (task, Arc::clone(&ctl))));
        }
        self.shared.work.notify_all();
        // The submitter works through the queue alongside the workers
        // (possibly including other batches' jobs — helping global
        // progress is never wrong, and its own jobs may be behind them).
        loop {
            let popped = {
                let mut state = self.shared.state.lock().expect("pool lock poisoned");
                state.queue.pop()
            };
            match popped {
                Some((task, batch)) => run_task(task, &batch),
                None => break,
            }
        }
        let mut progress = ctl.progress.lock().expect("batch lock poisoned");
        while progress.pending > 0 {
            progress = ctl.done.wait(progress).expect("batch lock poisoned");
        }
        if let Some(payload) = progress.panic.take() {
            drop(progress);
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs one popped task, recording a panic into its batch and
/// signalling the batch's submitter when the batch completes.
fn run_task(task: Task, batch: &BatchCtl) {
    let result = IN_POOL_JOB.with(|flag| {
        let prev = flag.replace(true);
        let result = catch_unwind(AssertUnwindSafe(task));
        flag.set(prev);
        result
    });
    let mut progress = batch.progress.lock().expect("batch lock poisoned");
    if let Err(payload) = result {
        progress.panic.get_or_insert(payload);
    }
    progress.pending -= 1;
    if progress.pending == 0 {
        batch.done.notify_all();
    }
}

/// The body of one background worker: park on the condvar until a job
/// (or shutdown) arrives, run it, repeat.
fn worker_loop(shared: &Shared) {
    loop {
        let (task, batch) = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(popped) = state.queue.pop() {
                    break popped;
                }
                state = shared.work.wait(state).expect("pool lock poisoned");
            }
        };
        run_task(task, &batch);
    }
}

/// The process-wide pool every [`par_chunks_mut`] section runs on,
/// started on first use and sized by [`default_threads`] (so
/// `AVMEM_THREADS` caps it). Its workers live for the rest of the
/// process, parked whenever no section is in flight.
pub fn global_pool() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkerPool::new(default_threads()))
}

/// Splits `items` into up to `threads` contiguous chunks (each a multiple
/// of `align` items, except possibly the last) and runs `f(offset, chunk)`
/// on each, in parallel on the global [`WorkerPool`].
///
/// `offset` is the index of the chunk's first element in `items`, so
/// workers can recover global positions. With `threads <= 1`, or when the
/// slice holds at most one `align`-unit, `f` runs inline on the caller's
/// thread with no dispatch. `threads` controls only the chunk fan-out —
/// execution parallelism is capped by the pool — and since work items
/// must be independent, results never depend on either.
///
/// # Examples
///
/// ```
/// use avmem_util::parallel::par_chunks_mut;
///
/// let mut squares = vec![0u64; 1000];
/// par_chunks_mut(&mut squares, 1, 4, |offset, chunk| {
///     for (k, slot) in chunk.iter_mut().enumerate() {
///         let i = (offset + k) as u64;
///         *slot = i * i;
///     }
/// });
/// assert_eq!(squares[31], 961);
/// ```
///
/// # Panics
///
/// Panics if `align == 0`.
pub fn par_chunks_mut<T, F>(items: &mut [T], align: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(align > 0, "chunk alignment must be positive");
    if items.is_empty() {
        return;
    }
    let units = items.len().div_ceil(align);
    let threads = threads.clamp(1, units);
    if threads == 1 {
        f(0, items);
        return;
    }
    let chunk_len = units.div_ceil(threads) * align;
    let f = &f;
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(threads);
    let mut rest = items;
    let mut offset = 0;
    while !rest.is_empty() {
        let take = chunk_len.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        jobs.push(Box::new(move || f(offset, head)));
        offset += take;
        rest = tail;
    }
    global_pool().run_boxed(jobs);
}

/// Runs `f(index, &mut items[index])` for every element of `items`, one
/// pool job per element — the shard executor of the sharded maintenance
/// harness, where each element is a whole shard's worth of state and
/// per-element work is coarse enough to be its own job.
///
/// Contrast with [`par_chunks_mut`], which carves a long slice of small
/// items into `threads` chunks: here every element *is* the unit of
/// work, so the fan-out equals `items.len()` and `threads` only gates
/// whether dispatch happens at all (`threads <= 1` runs inline, in
/// index order). Work items must be independent — results never depend
/// on `threads` or on which worker runs which element.
///
/// # Examples
///
/// ```
/// use avmem_util::parallel::par_each_mut;
///
/// let mut shards = vec![vec![0u32; 4], vec![0u32; 3]];
/// par_each_mut(&mut shards, 4, |s, shard| {
///     for slot in shard.iter_mut() {
///         *slot = s as u32 + 1;
///     }
/// });
/// assert_eq!(shards[1], vec![2, 2, 2]);
/// ```
pub fn par_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let f = &f;
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = items
        .iter_mut()
        .enumerate()
        .map(|(i, item)| Box::new(move || f(i, item)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    global_pool().run_boxed(jobs);
}

/// Collects mutable references to the elements of `items` at
/// `sorted_indices`, which must be strictly increasing and in bounds.
///
/// This is the safe building block for *sparse* parallel phases: a batch
/// of events touches a subset of nodes (at most once each), and the
/// returned references can be chunked across worker threads with
/// [`par_chunks_mut`] while the untouched elements stay borrowed by
/// nobody.
///
/// # Examples
///
/// ```
/// use avmem_util::parallel::gather_mut;
///
/// let mut v = vec![0u32; 8];
/// for slot in gather_mut(&mut v, &[1, 4, 6]) {
///     *slot = 9;
/// }
/// assert_eq!(v, vec![0, 9, 0, 0, 9, 0, 9, 0]);
/// ```
///
/// # Panics
///
/// Panics if the indices are not strictly increasing or any is out of
/// bounds.
pub fn gather_mut<'a, T>(items: &'a mut [T], sorted_indices: &[usize]) -> Vec<&'a mut T> {
    let mut picked = Vec::with_capacity(sorted_indices.len());
    let mut rest = items;
    let mut base = 0usize;
    let mut prev: Option<usize> = None;
    for &i in sorted_indices {
        if let Some(p) = prev {
            assert!(i > p, "indices must be strictly increasing (saw {i} after {p})");
        }
        prev = Some(i);
        let (skipped, tail) = rest.split_at_mut(i - base);
        let _ = skipped;
        let (item, tail) = tail
            .split_first_mut()
            .expect("gather_mut index out of bounds");
        picked.push(item);
        rest = tail;
        base = i + 1;
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_element_exactly_once() {
        for threads in [1, 2, 3, 7, 64] {
            let mut hits = vec![0u32; 103];
            par_chunks_mut(&mut hits, 1, threads, |_, chunk| {
                for h in chunk {
                    *h += 1;
                }
            });
            assert!(hits.iter().all(|&h| h == 1), "threads={threads}");
        }
    }

    #[test]
    fn offsets_recover_global_indices() {
        let mut v = vec![0usize; 50];
        par_chunks_mut(&mut v, 1, 4, |offset, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = offset + k;
            }
        });
        assert_eq!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn respects_alignment() {
        // align 10 → chunk boundaries only at multiples of 10.
        let mut v = vec![0u8; 95];
        par_chunks_mut(&mut v, 10, 4, |offset, chunk| {
            assert_eq!(offset % 10, 0);
            assert!(chunk.len() % 10 == 0 || offset + chunk.len() == 95);
            for b in chunk {
                *b = 1;
            }
        });
        assert!(v.iter().all(|&b| b == 1));
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let run = |threads: usize| {
            let mut v = vec![0u64; 64];
            par_chunks_mut(&mut v, 1, threads, |offset, chunk| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = ((offset + k) as u64).wrapping_mul(0x9e37_79b9);
                }
            });
            v
        };
        let base = run(1);
        for threads in [2, 5, 16] {
            assert_eq!(run(threads), base);
        }
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        let mut v: Vec<u8> = Vec::new();
        par_chunks_mut(&mut v, 4, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn cpu_max_parsing_handles_the_cgroup_formats() {
        // v2 unlimited.
        assert_eq!(parse_cpu_max("max 100000\n"), None);
        // v2 limited: 150% of a core rounds up to 2 effective CPUs.
        assert_eq!(parse_cpu_max("150000 100000\n"), Some(2));
        assert_eq!(parse_cpu_max("100000 100000"), Some(1));
        assert_eq!(parse_cpu_max("50000 100000"), Some(1));
        assert_eq!(parse_cpu_max("800000 100000"), Some(8));
        // Garbage must never produce a cap.
        assert_eq!(parse_cpu_max(""), None);
        assert_eq!(parse_cpu_max("banana"), None);
        assert_eq!(parse_cpu_max("100000"), None);
        // v1 semantics: -1 quota means unlimited.
        assert_eq!(quota_to_threads(-1, 100_000), None);
        assert_eq!(quota_to_threads(250_000, 100_000), Some(3));
        assert_eq!(quota_to_threads(100_000, 0), None);
    }

    #[test]
    fn par_each_mut_visits_every_element_once_for_any_fanout() {
        for threads in [1usize, 2, 4, 16] {
            let mut items: Vec<u64> = vec![0; 9];
            par_each_mut(&mut items, threads, |i, item| {
                *item += i as u64 * 10 + 1;
            });
            let expected: Vec<u64> = (0..9).map(|i| i * 10 + 1).collect();
            assert_eq!(items, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_each_mut_handles_empty_and_single() {
        let mut empty: Vec<u8> = Vec::new();
        par_each_mut(&mut empty, 4, |_, _| panic!("must not run"));
        let mut one = vec![5u8];
        par_each_mut(&mut one, 4, |_, x| *x = 7);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn pool_runs_every_job_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let pool = WorkerPool::new(4);
        for batch in [0usize, 1, 2, 7, 33] {
            let counters: Vec<AtomicU32> = (0..batch).map(|_| AtomicU32::new(0)).collect();
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = counters
                .iter()
                .map(|c| {
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_boxed(jobs);
            assert!(
                counters.iter().all(|c| c.load(Ordering::SeqCst) == 1),
                "batch={batch}"
            );
        }
    }

    #[test]
    fn pool_spreads_jobs_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        use std::thread::ThreadId;
        // Many slow-ish jobs on a wide pool: with workers parked and
        // ready, at least one job should land off the submitting thread.
        // (On a 1-core machine the workers still exist — parallelism is
        // about threads, not cores.)
        let pool = WorkerPool::new(4);
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    std::thread::yield_now();
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_boxed(jobs);
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn pool_blocks_until_borrowed_jobs_finish() {
        // The scoped contract: jobs borrow the caller's stack data and
        // every write is visible after run_boxed returns.
        let pool = WorkerPool::new(3);
        for _ in 0..50 {
            let mut data = [0u64; 24];
            let chunks: Vec<Box<dyn FnOnce() + Send + '_>> = data
                .chunks_mut(3)
                .enumerate()
                .map(|(i, chunk)| {
                    Box::new(move || {
                        for slot in chunk {
                            *slot = i as u64 + 1;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_boxed(chunks);
            assert!(data.iter().all(|&x| x != 0));
        }
    }

    #[test]
    fn pool_propagates_job_panics() {
        let pool = WorkerPool::new(3);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..8)
                .map(|i| {
                    Box::new(move || {
                        if i == 5 {
                            panic!("job 5 exploded");
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool.run_boxed(jobs);
        }));
        let payload = result.expect_err("panic must propagate to the submitter");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("(non-str payload)");
        assert!(msg.contains("exploded"), "unexpected payload {msg}");
        // The pool must stay usable after a panicked batch.
        let mut v = [0u8; 4];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = v
            .chunks_mut(1)
            .map(|c| {
                Box::new(move || c[0] = 1) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_boxed(jobs);
        assert_eq!(v, [1, 1, 1, 1]);
    }

    #[test]
    fn concurrent_batches_are_accounted_independently() {
        use std::sync::atomic::{AtomicU32, Ordering};
        // Two submitters share one pool; one batch panics. The panic
        // must surface on its own submitter only, and the clean batch
        // must run every job and return normally.
        let pool = WorkerPool::new(4);
        for _ in 0..20 {
            let clean_runs = AtomicU32::new(0);
            std::thread::scope(|scope| {
                let pool = &pool;
                let clean_runs = &clean_runs;
                let panicky = scope.spawn(move || {
                    std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..8)
                            .map(|i| {
                                Box::new(move || {
                                    if i % 2 == 0 {
                                        panic!("poison batch");
                                    }
                                }) as Box<dyn FnOnce() + Send>
                            })
                            .collect();
                        pool.run_boxed(jobs);
                    }))
                });
                let clean = scope.spawn(move || {
                    std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                            .map(|_| {
                                Box::new(|| {
                                    clean_runs.fetch_add(1, Ordering::SeqCst);
                                }) as Box<dyn FnOnce() + Send + '_>
                            })
                            .collect();
                        pool.run_boxed(jobs);
                    }))
                });
                assert!(
                    panicky.join().expect("thread itself must not die").is_err(),
                    "the poisoned batch must panic on its own submitter"
                );
                assert!(
                    clean.join().expect("thread itself must not die").is_ok(),
                    "the clean batch must not inherit a foreign panic"
                );
            });
            assert_eq!(clean_runs.load(Ordering::SeqCst), 8);
        }
    }

    #[test]
    fn nested_sections_run_inline_without_deadlock() {
        // par_chunks_mut from inside a pool job must not block on the
        // pool it is running on.
        let mut outer = vec![0u64; 8];
        par_chunks_mut(&mut outer, 1, 4, |offset, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                let mut inner = vec![0u64; 16];
                par_chunks_mut(&mut inner, 1, 4, |o, c| {
                    for (j, s) in c.iter_mut().enumerate() {
                        *s = (o + j) as u64;
                    }
                });
                *slot = inner.iter().sum::<u64>() + (offset + k) as u64;
            }
        });
        for (i, &x) in outer.iter().enumerate() {
            assert_eq!(x, 120 + i as u64);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut hit = false;
        pool.run_boxed(vec![Box::new(|| hit = true)]);
        assert!(hit);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = global_pool() as *const WorkerPool;
        let b = global_pool() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(global_pool().threads() >= 1);
    }

    #[test]
    fn gather_mut_picks_exactly_the_requested_slots() {
        let mut v: Vec<u32> = (0..10).collect();
        let picked = gather_mut(&mut v, &[0, 3, 9]);
        assert_eq!(picked.len(), 3);
        for p in picked {
            *p += 100;
        }
        assert_eq!(v, vec![100, 1, 2, 103, 4, 5, 6, 7, 8, 109]);
    }

    #[test]
    fn gather_mut_chunks_across_threads() {
        let mut v = vec![0u64; 64];
        let idx: Vec<usize> = (0..64).step_by(3).collect();
        let mut picked = gather_mut(&mut v, &idx);
        par_chunks_mut(&mut picked, 1, 4, |offset, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                **slot = (offset + k) as u64 + 1;
            }
        });
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(v[i], k as u64 + 1);
        }
        assert!(v.iter().filter(|&&x| x == 0).count() == 64 - idx.len());
    }

    #[test]
    fn gather_mut_empty_indices() {
        let mut v = vec![1u8; 4];
        assert!(gather_mut(&mut v, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn gather_mut_rejects_duplicates() {
        let mut v = vec![0u8; 4];
        let _ = gather_mut(&mut v, &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_mut_rejects_out_of_bounds() {
        let mut v = vec![0u8; 4];
        let _ = gather_mut(&mut v, &[1, 4]);
    }
}
