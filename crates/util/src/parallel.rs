//! Minimal scoped data-parallelism helpers.
//!
//! The workspace is offline (no rayon); the few hot loops that benefit
//! from threads — pair-hash row computation and the converged overlay
//! rebuild — all reduce to "run independent work over contiguous chunks
//! of a slice". [`par_chunks_mut`] provides exactly that on top of
//! `std::thread::scope`, degrading to an inline call when only one
//! thread (or one chunk) is useful so single-core machines pay no
//! spawning overhead.
//!
//! Work items must be *independent*: results may not depend on how the
//! slice is split, which keeps every caller deterministic regardless of
//! the machine's core count.

/// Number of worker threads worth spawning on this machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `items` into up to `threads` contiguous chunks (each a multiple
/// of `align` items, except possibly the last) and runs `f(offset, chunk)`
/// on each, in parallel via `std::thread::scope`.
///
/// `offset` is the index of the chunk's first element in `items`, so
/// workers can recover global positions. With `threads <= 1`, or when the
/// slice holds at most one `align`-unit, `f` runs inline on the caller's
/// thread with no spawning.
///
/// # Examples
///
/// ```
/// use avmem_util::parallel::par_chunks_mut;
///
/// let mut squares = vec![0u64; 1000];
/// par_chunks_mut(&mut squares, 1, 4, |offset, chunk| {
///     for (k, slot) in chunk.iter_mut().enumerate() {
///         let i = (offset + k) as u64;
///         *slot = i * i;
///     }
/// });
/// assert_eq!(squares[31], 961);
/// ```
///
/// # Panics
///
/// Panics if `align == 0`.
pub fn par_chunks_mut<T, F>(items: &mut [T], align: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(align > 0, "chunk alignment must be positive");
    if items.is_empty() {
        return;
    }
    let units = items.len().div_ceil(align);
    let threads = threads.clamp(1, units);
    if threads == 1 {
        f(0, items);
        return;
    }
    let chunk_len = units.div_ceil(threads) * align;
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = items;
        let mut offset = 0;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            scope.spawn(move || f(offset, head));
            offset += take;
            rest = tail;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_element_exactly_once() {
        for threads in [1, 2, 3, 7, 64] {
            let mut hits = vec![0u32; 103];
            par_chunks_mut(&mut hits, 1, threads, |_, chunk| {
                for h in chunk {
                    *h += 1;
                }
            });
            assert!(hits.iter().all(|&h| h == 1), "threads={threads}");
        }
    }

    #[test]
    fn offsets_recover_global_indices() {
        let mut v = vec![0usize; 50];
        par_chunks_mut(&mut v, 1, 4, |offset, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = offset + k;
            }
        });
        assert_eq!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn respects_alignment() {
        // align 10 → chunk boundaries only at multiples of 10.
        let mut v = vec![0u8; 95];
        par_chunks_mut(&mut v, 10, 4, |offset, chunk| {
            assert_eq!(offset % 10, 0);
            assert!(chunk.len() % 10 == 0 || offset + chunk.len() == 95);
            for b in chunk {
                *b = 1;
            }
        });
        assert!(v.iter().all(|&b| b == 1));
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let run = |threads: usize| {
            let mut v = vec![0u64; 64];
            par_chunks_mut(&mut v, 1, threads, |offset, chunk| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = ((offset + k) as u64).wrapping_mul(0x9e37_79b9);
                }
            });
            v
        };
        let base = run(1);
        for threads in [2, 5, 16] {
            assert_eq!(run(threads), base);
        }
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        let mut v: Vec<u8> = Vec::new();
        par_chunks_mut(&mut v, 4, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
