//! Minimal scoped data-parallelism helpers.
//!
//! The workspace is offline (no rayon); the few hot loops that benefit
//! from threads — pair-hash row computation and the converged overlay
//! rebuild — all reduce to "run independent work over contiguous chunks
//! of a slice". [`par_chunks_mut`] provides exactly that on top of
//! `std::thread::scope`, degrading to an inline call when only one
//! thread (or one chunk) is useful so single-core machines pay no
//! spawning overhead.
//!
//! Work items must be *independent*: results may not depend on how the
//! slice is split, which keeps every caller deterministic regardless of
//! the machine's core count.

/// Number of worker threads worth spawning on this machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `items` into up to `threads` contiguous chunks (each a multiple
/// of `align` items, except possibly the last) and runs `f(offset, chunk)`
/// on each, in parallel via `std::thread::scope`.
///
/// `offset` is the index of the chunk's first element in `items`, so
/// workers can recover global positions. With `threads <= 1`, or when the
/// slice holds at most one `align`-unit, `f` runs inline on the caller's
/// thread with no spawning.
///
/// # Examples
///
/// ```
/// use avmem_util::parallel::par_chunks_mut;
///
/// let mut squares = vec![0u64; 1000];
/// par_chunks_mut(&mut squares, 1, 4, |offset, chunk| {
///     for (k, slot) in chunk.iter_mut().enumerate() {
///         let i = (offset + k) as u64;
///         *slot = i * i;
///     }
/// });
/// assert_eq!(squares[31], 961);
/// ```
///
/// # Panics
///
/// Panics if `align == 0`.
pub fn par_chunks_mut<T, F>(items: &mut [T], align: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(align > 0, "chunk alignment must be positive");
    if items.is_empty() {
        return;
    }
    let units = items.len().div_ceil(align);
    let threads = threads.clamp(1, units);
    if threads == 1 {
        f(0, items);
        return;
    }
    let chunk_len = units.div_ceil(threads) * align;
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = items;
        let mut offset = 0;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            scope.spawn(move || f(offset, head));
            offset += take;
            rest = tail;
        }
    });
}

/// Collects mutable references to the elements of `items` at
/// `sorted_indices`, which must be strictly increasing and in bounds.
///
/// This is the safe building block for *sparse* parallel phases: a batch
/// of events touches a subset of nodes (at most once each), and the
/// returned references can be chunked across worker threads with
/// [`par_chunks_mut`] while the untouched elements stay borrowed by
/// nobody.
///
/// # Examples
///
/// ```
/// use avmem_util::parallel::gather_mut;
///
/// let mut v = vec![0u32; 8];
/// for slot in gather_mut(&mut v, &[1, 4, 6]) {
///     *slot = 9;
/// }
/// assert_eq!(v, vec![0, 9, 0, 0, 9, 0, 9, 0]);
/// ```
///
/// # Panics
///
/// Panics if the indices are not strictly increasing or any is out of
/// bounds.
pub fn gather_mut<'a, T>(items: &'a mut [T], sorted_indices: &[usize]) -> Vec<&'a mut T> {
    let mut picked = Vec::with_capacity(sorted_indices.len());
    let mut rest = items;
    let mut base = 0usize;
    let mut prev: Option<usize> = None;
    for &i in sorted_indices {
        if let Some(p) = prev {
            assert!(i > p, "indices must be strictly increasing (saw {i} after {p})");
        }
        prev = Some(i);
        let (skipped, tail) = rest.split_at_mut(i - base);
        let _ = skipped;
        let (item, tail) = tail
            .split_first_mut()
            .expect("gather_mut index out of bounds");
        picked.push(item);
        rest = tail;
        base = i + 1;
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_element_exactly_once() {
        for threads in [1, 2, 3, 7, 64] {
            let mut hits = vec![0u32; 103];
            par_chunks_mut(&mut hits, 1, threads, |_, chunk| {
                for h in chunk {
                    *h += 1;
                }
            });
            assert!(hits.iter().all(|&h| h == 1), "threads={threads}");
        }
    }

    #[test]
    fn offsets_recover_global_indices() {
        let mut v = vec![0usize; 50];
        par_chunks_mut(&mut v, 1, 4, |offset, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = offset + k;
            }
        });
        assert_eq!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn respects_alignment() {
        // align 10 → chunk boundaries only at multiples of 10.
        let mut v = vec![0u8; 95];
        par_chunks_mut(&mut v, 10, 4, |offset, chunk| {
            assert_eq!(offset % 10, 0);
            assert!(chunk.len() % 10 == 0 || offset + chunk.len() == 95);
            for b in chunk {
                *b = 1;
            }
        });
        assert!(v.iter().all(|&b| b == 1));
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let run = |threads: usize| {
            let mut v = vec![0u64; 64];
            par_chunks_mut(&mut v, 1, threads, |offset, chunk| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = ((offset + k) as u64).wrapping_mul(0x9e37_79b9);
                }
            });
            v
        };
        let base = run(1);
        for threads in [2, 5, 16] {
            assert_eq!(run(threads), base);
        }
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        let mut v: Vec<u8> = Vec::new();
        par_chunks_mut(&mut v, 4, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn gather_mut_picks_exactly_the_requested_slots() {
        let mut v: Vec<u32> = (0..10).collect();
        let picked = gather_mut(&mut v, &[0, 3, 9]);
        assert_eq!(picked.len(), 3);
        for p in picked {
            *p += 100;
        }
        assert_eq!(v, vec![100, 1, 2, 103, 4, 5, 6, 7, 8, 109]);
    }

    #[test]
    fn gather_mut_chunks_across_threads() {
        let mut v = vec![0u64; 64];
        let idx: Vec<usize> = (0..64).step_by(3).collect();
        let mut picked = gather_mut(&mut v, &idx);
        par_chunks_mut(&mut picked, 1, 4, |offset, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                **slot = (offset + k) as u64 + 1;
            }
        });
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(v[i], k as u64 + 1);
        }
        assert!(v.iter().filter(|&&x| x == 0).count() == 64 - idx.len());
    }

    #[test]
    fn gather_mut_empty_indices() {
        let mut v = vec![1u8; 4];
        assert!(gather_mut(&mut v, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn gather_mut_rejects_duplicates() {
        let mut v = vec![0u8; 4];
        let _ = gather_mut(&mut v, &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_mut_rejects_out_of_bounds() {
        let mut v = vec![0u8; 4];
        let _ = gather_mut(&mut v, &[1, 4]);
    }
}
