//! Statistics helpers for the experiment harness.
//!
//! The paper reports figures as histograms, scatter plots and CDFs. This
//! module provides the small, allocation-friendly summaries the bench
//! harness uses to regenerate those series: [`Summary`] (mean / min / max /
//! percentiles), [`Histogram`] (fixed-width bucketing over `[0, 1]`, e.g.
//! per-0.1 availability bands), and [`Ecdf`] (empirical CDFs like Figs.
//! 11–13).

use serde::{Deserialize, Serialize};

/// Summary statistics over a sample of `f64` values.
///
/// # Examples
///
/// ```
/// use avmem_util::stats::Summary;
///
/// let s = Summary::from_values([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    sorted: Vec<f64>,
    sum: f64,
}

impl Summary {
    /// Builds a summary from any collection of values.
    ///
    /// NaN values are dropped (they carry no ordering information).
    pub fn from_values<I>(values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let mut sorted: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered out"));
        let sum = sorted.iter().sum();
        Summary { sorted, sum }
    }

    /// Number of (non-NaN) samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the summary holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean; `0.0` for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sum / self.sorted.len() as f64
        }
    }

    /// Smallest sample; `0.0` for an empty summary.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest sample; `0.0` for an empty summary.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Returns the `q`-quantile (nearest-rank), `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.sorted.is_empty() {
            return 0.0;
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[rank.min(self.sorted.len() - 1)]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Sample standard deviation; `0.0` for fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        let n = self.sorted.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var: f64 = self.sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }
}

/// Fixed-width histogram over `[0, 1]`, e.g. one bucket per 0.1-wide
/// availability band (the granularity of Figs. 2a, 4, 5, 6).
///
/// # Examples
///
/// ```
/// use avmem_util::stats::Histogram;
///
/// let mut h = Histogram::new(10);
/// h.add(0.05);
/// h.add(0.07);
/// h.add(0.95);
/// assert_eq!(h.count(0), 2);
/// assert_eq!(h.count(9), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width buckets over `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            counts: vec![0; buckets],
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Maps a value in `[0, 1]` to its bucket index (1.0 lands in the last
    /// bucket).
    pub fn bucket_of(&self, value: f64) -> usize {
        let b = (value * self.counts.len() as f64).floor() as usize;
        b.min(self.counts.len() - 1)
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        let b = self.bucket_of(value.clamp(0.0, 1.0));
        self.counts[b] += 1;
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(bucket_low_edge, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = 1.0 / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * width, c))
    }

    /// Fraction of observations in bucket `i`; `0.0` when empty.
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(i) as f64 / total as f64
        }
    }
}

/// Empirical cumulative distribution function.
///
/// # Examples
///
/// ```
/// use avmem_util::stats::Ecdf;
///
/// let cdf = Ecdf::from_values([10.0, 20.0, 30.0, 40.0]);
/// assert_eq!(cdf.fraction_at_or_below(25.0), 0.5);
/// assert_eq!(cdf.fraction_at_or_below(40.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (NaN dropped).
    pub fn from_values<I>(values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let mut sorted: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered out"));
        Ecdf { sorted }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Fraction of samples `≤ x`; `0.0` when empty.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Returns `(x, F(x))` pairs at each distinct sample point, suitable
    /// for plotting a step CDF.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            if i + 1 == n || self.sorted[i + 1] != x {
                out.push((x, (i + 1) as f64 / n as f64));
            }
        }
        out
    }

    /// The value below which fraction `q` of samples fall (inverse CDF,
    /// nearest rank). `0.0` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.sorted.is_empty() {
            return 0.0;
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[rank.min(self.sorted.len() - 1)]
    }
}

/// Linear regression slope of `y` on `x` (least squares), used to check
/// "grows sublinearly" claims like Fig. 3. Returns `0.0` for fewer than
/// two points.
pub fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let mean_x: f64 = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y: f64 = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for &(x, y) in points {
        num += (x - mean_x) * (y - mean_y);
        den += (x - mean_x) * (x - mean_x);
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Pearson correlation coefficient; `0.0` for degenerate inputs. Used to
/// verify "uncorrelated" claims (Figs. 2c, 4).
pub fn correlation(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let mean_x: f64 = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y: f64 = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for &(x, y) in points {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x) * (x - mean_x);
        var_y += (y - mean_y) * (y - mean_y);
    }
    let den = (var_x * var_y).sqrt();
    if den == 0.0 {
        0.0
    } else {
        cov / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Summary::from_values(std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    fn summary_drops_nan() {
        let s = Summary::from_values([1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s = Summary::from_values([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(0.2), 1.0);
        assert_eq!(s.quantile(0.5), 3.0);
        assert_eq!(s.quantile(1.0), 5.0);
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        let s = Summary::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // Known example: population stddev 2; sample stddev = sqrt(32/7).
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_edges() {
        let mut h = Histogram::new(10);
        h.add(0.0);
        h.add(0.099999);
        h.add(0.1);
        h.add(1.0);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(9), 1);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(4);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_zero_buckets_panics() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn histogram_iter_yields_low_edges() {
        let h = Histogram::new(4);
        let edges: Vec<f64> = h.iter().map(|(e, _)| e).collect();
        assert_eq!(edges, vec![0.0, 0.25, 0.5, 0.75]);
    }

    #[test]
    fn ecdf_fractions() {
        let cdf = Ecdf::from_values([1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.25);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
    }

    #[test]
    fn ecdf_steps_deduplicate() {
        let cdf = Ecdf::from_values([1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.steps(), vec![(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]);
    }

    #[test]
    fn ecdf_quantile_inverts_fraction() {
        let cdf = Ecdf::from_values((1..=100).map(f64::from));
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
        assert_eq!(cdf.quantile(0.01), 1.0);
    }

    #[test]
    fn slope_of_line_recovers_coefficient() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((slope(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_of_independent_constant_is_zero() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 42.0)).collect();
        assert_eq!(correlation(&pts), 0.0);
    }

    #[test]
    fn correlation_of_anticorrelated_is_negative() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, -2.0 * i as f64)).collect();
        assert!((correlation(&pts) + 1.0).abs() < 1e-9);
    }
}
