//! Heap and resident-set observability.
//!
//! Two complementary sources feed the memory gauges of the scenario
//! layer:
//!
//! * a **counting global allocator** ([`CountingAlloc`]) that wraps the
//!   system allocator and keeps live/peak heap byte counters plus a
//!   cumulative allocation count. It is only installed when the
//!   `heap-stats` feature is enabled (the `avmem_scenario` crate turns
//!   it on by default); the counters are a handful of relaxed atomic
//!   ops per allocation, cheap enough to leave on in production runs.
//! * **kernel RSS sampling** ([`current_rss_bytes`], [`peak_rss_bytes`])
//!   parsed from `/proc/self/status`, available unconditionally on
//!   Linux and `None` elsewhere.
//!
//! The allocator counters answer "what does the *hot state* cost",
//! the RSS numbers answer "what does the *process* cost" (they include
//! allocator slack, code, and stacks); reports carry both.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the counting allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start.
    pub peak_bytes: u64,
    /// Cumulative number of allocation calls (alloc + realloc).
    pub alloc_calls: u64,
}

/// A [`GlobalAlloc`] wrapper around [`System`] that counts live bytes,
/// the peak, and allocation calls with relaxed atomics.
///
/// Declared as the global allocator by this crate when the
/// `heap-stats` feature is on; downstream crates never install it
/// themselves, they only read [`heap_stats`].
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn on_alloc(size: usize) {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn on_dealloc(size: usize) {
        LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
    }
}

// SAFETY: defers every allocation to `System` and only adds counter
// bookkeeping; sizes passed to on_alloc/on_dealloc mirror the layouts
// handed to the system allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            Self::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            Self::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        new_ptr
    }
}

#[cfg(feature = "heap-stats")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Whether the counting allocator is installed in this build.
///
/// When `false`, [`heap_stats`] returns all-zero counters.
#[must_use]
pub fn heap_tracking_installed() -> bool {
    cfg!(feature = "heap-stats")
}

/// Current counting-allocator snapshot (all zeros when the `heap-stats`
/// feature is off).
#[must_use]
pub fn heap_stats() -> HeapStats {
    HeapStats {
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        alloc_calls: ALLOC_CALLS.load(Ordering::Relaxed),
    }
}

/// Cumulative allocation-call count. Zero when tracking is off.
///
/// This is the probe the phase tracer samples around spans to attribute
/// allocations to maintenance phases.
#[must_use]
pub fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Current resident set size in bytes (`VmRSS`), if the platform
/// exposes it.
#[must_use]
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmRSS:")
}

/// Peak resident set size in bytes (`VmHWM`), if the platform exposes
/// it.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmHWM:")
}

#[cfg(target_os = "linux")]
fn proc_status_bytes(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(not(target_os = "linux"))]
fn proc_status_bytes(_field: &str) -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_coherent() {
        let stats = heap_stats();
        assert!(stats.peak_bytes >= stats.live_bytes || !heap_tracking_installed());
        if heap_tracking_installed() {
            // Allocate something and watch the counters move.
            let before = heap_stats();
            let v: Vec<u8> = Vec::with_capacity(1 << 16);
            let during = heap_stats();
            assert!(during.alloc_calls > before.alloc_calls);
            assert!(during.live_bytes >= before.live_bytes + (1 << 16));
            drop(v);
            let after = heap_stats();
            assert!(after.live_bytes < during.live_bytes);
            assert!(after.peak_bytes >= during.live_bytes);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_sampling_works_on_linux() {
        let rss = current_rss_bytes().expect("VmRSS present");
        let peak = peak_rss_bytes().expect("VmHWM present");
        assert!(rss > 0);
        assert!(peak >= rss);
    }
}
