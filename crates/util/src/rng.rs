//! Deterministic random number generation.
//!
//! Every protocol decision in the simulator that is *random but not
//! consistent* (gossip target choice, latency draws, churn generation, …)
//! flows through these generators so that a run is fully determined by its
//! seed. We provide [`SplitMix64`] (seed expansion, cheap decorrelated
//! streams) and [`Xoshiro256`] (xoshiro256**, the general-purpose
//! generator), both behind the small [`Rng`] trait.
//!
//! These are textbook public-domain algorithms (Vigna et al.); implementing
//! them here keeps the core protocol crates free of external RNG
//! dependencies and bit-reproducible across platforms.

/// Minimal random-source trait used across the workspace.
///
/// The provided combinators (`next_f64`, `range_u64`, `chance`, …) are
/// implemented in terms of [`Rng::next_u64`], so implementors only supply
/// the raw stream.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53-bit precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range_u64 bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn index(&mut self, bound: usize) -> usize {
        self.range_u64(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct elements uniformly without replacement
    /// (reservoir sampling). Returns fewer than `k` if the iterator is
    /// shorter than `k`.
    fn sample<T, I>(&mut self, iter: I, k: usize) -> Vec<T>
    where
        I: IntoIterator<Item = T>,
        Self: Sized,
    {
        let mut reservoir: Vec<T> = Vec::with_capacity(k);
        if k == 0 {
            return reservoir;
        }
        for (seen, item) in iter.into_iter().enumerate() {
            if seen < k {
                reservoir.push(item);
            } else {
                let j = self.index(seen + 1);
                if j < k {
                    reservoir[j] = item;
                }
            }
        }
        reservoir
    }

    /// Reservoir sampling into a caller-provided buffer.
    ///
    /// Draw-for-draw identical to [`Rng::sample`] — the RNG consumption
    /// depends only on the iterator length and `k`, never on the buffer —
    /// so hot paths can reuse pooled Vecs without perturbing determinism.
    /// The buffer is cleared first.
    fn sample_into<T, I>(&mut self, iter: I, k: usize, out: &mut Vec<T>)
    where
        I: IntoIterator<Item = T>,
        Self: Sized,
    {
        out.clear();
        if k == 0 {
            return;
        }
        out.reserve(k);
        for (seen, item) in iter.into_iter().enumerate() {
            if seen < k {
                out.push(item);
            } else {
                let j = self.index(seen + 1);
                if j < k {
                    out[j] = item;
                }
            }
        }
    }
}

/// SplitMix64: fast, tiny state; ideal for seed expansion and for deriving
/// decorrelated per-node streams from a master seed.
///
/// # Examples
///
/// ```
/// use avmem_util::{Rng, SplitMix64};
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives a decorrelated child generator, e.g. one stream per node.
    pub fn fork(&mut self, tag: u64) -> SplitMix64 {
        let mixed = self.next_u64() ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SplitMix64::new(mixed)
    }

    /// Creates a *counter-keyed* stream: the generator determined by a
    /// key tuple such as `(run_seed, node, epoch)`, independent of any
    /// other stream's draw history.
    ///
    /// Where [`SplitMix64::fork`] derives children by *consuming* a parent
    /// stream — so the child depends on how many forks happened before it
    /// — `keyed` depends only on the key words themselves. That is what
    /// makes parallel simulation deterministic: every worker can rebuild
    /// the exact stream for `(seed, node, epoch)` without coordinating
    /// over a shared generator, so results cannot depend on thread count
    /// or event drain order.
    ///
    /// Each word is folded into the state through a full SplitMix64
    /// output step, so keys differing in any single word (including by
    /// ±1, the common case for node indices and epochs) yield
    /// decorrelated streams.
    ///
    /// # Examples
    ///
    /// ```
    /// use avmem_util::{Rng, SplitMix64};
    ///
    /// let mut a = SplitMix64::keyed(&[7, 42, 3]);
    /// let mut b = SplitMix64::keyed(&[7, 42, 3]);
    /// assert_eq!(a.next_u64(), b.next_u64()); // key-determined
    ///
    /// let mut c = SplitMix64::keyed(&[7, 43, 3]);
    /// assert_ne!(a.next_u64(), c.next_u64()); // neighbors decorrelate
    /// ```
    pub fn keyed(words: &[u64]) -> SplitMix64 {
        let mut rng = SplitMix64::new(0x243f_6a88_85a3_08d3); // π fraction
        for &w in words {
            // Same mixing as `fork`: avalanche the current state through
            // one output step, then fold the word in. The avalanche
            // between words prevents the xor/add cancellations a purely
            // linear fold would allow.
            rng.state = rng.next_u64() ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        rng
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's general-purpose deterministic generator.
///
/// # Examples
///
/// ```
/// use avmem_util::{Rng, Xoshiro256};
///
/// let mut rng = Xoshiro256::new(7);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding the seed through SplitMix64 as
    /// recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference output for seed 0 from the public-domain C code.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(rng.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(rng.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::new(99);
        let mut b = Xoshiro256::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(5);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_u64_respects_bound() {
        let mut rng = Xoshiro256::new(11);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.range_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn range_u64_is_roughly_uniform() {
        let mut rng = Xoshiro256::new(13);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.range_u64(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn range_u64_zero_bound_panics() {
        let mut rng = SplitMix64::new(0);
        let _ = rng.range_u64(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::new(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement_has_distinct_items() {
        let mut rng = Xoshiro256::new(33);
        let picked = rng.sample(0..1000u32, 50);
        assert_eq!(picked.len(), 50);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
    }

    #[test]
    fn sample_shorter_input_returns_everything() {
        let mut rng = Xoshiro256::new(34);
        let picked = rng.sample(0..3u32, 10);
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn sample_into_is_bit_identical_to_sample() {
        for (n, k) in [(0usize, 5usize), (3, 10), (50, 7), (1000, 50), (8, 8)] {
            let mut a = Xoshiro256::new(97);
            let mut b = Xoshiro256::new(97);
            let allocated = a.sample(0..n as u32, k);
            let mut pooled = vec![0u32; 13]; // stale contents must not leak
            b.sample_into(0..n as u32, k, &mut pooled);
            assert_eq!(allocated, pooled, "n={n} k={k}");
            assert_eq!(a.next_u64(), b.next_u64(), "stream diverged n={n} k={k}");
        }
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut master = SplitMix64::new(77);
        let mut a = master.fork(1);
        let mut b = master.fork(2);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn keyed_streams_are_key_determined() {
        let mut a = SplitMix64::keyed(&[1, 2, 3]);
        let mut b = SplitMix64::keyed(&[1, 2, 3]);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keyed_streams_decorrelate_neighboring_keys() {
        // Node/epoch keys differ by small deltas in practice; streams for
        // any two distinct keys must diverge immediately and stay apart.
        let keys: Vec<Vec<u64>> = vec![
            vec![9, 0, 0],
            vec![9, 1, 0],
            vec![9, 0, 1],
            vec![9, 1, 1],
            vec![10, 0, 0],
            vec![9, 0],
            vec![9],
        ];
        for (i, ka) in keys.iter().enumerate() {
            for kb in keys.iter().skip(i + 1) {
                let mut a = SplitMix64::keyed(ka);
                let mut b = SplitMix64::keyed(kb);
                let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
                assert_eq!(same, 0, "keys {ka:?} / {kb:?} correlate");
            }
        }
    }

    #[test]
    fn keyed_stream_does_not_consume_a_parent() {
        // Unlike fork, keyed needs no shared parent: rebuilding the
        // stream anywhere (any thread, any order) gives identical draws.
        let first: Vec<u64> = {
            let mut r = SplitMix64::keyed(&[5, 77]);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let mut other = SplitMix64::keyed(&[6, 78]);
        let _ = other.next_u64(); // unrelated stream activity
        let again: Vec<u64> = {
            let mut r = SplitMix64::keyed(&[5, 77]);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(first, again);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256::new(55);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
