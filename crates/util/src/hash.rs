//! Consistent, normalized hashing.
//!
//! The AVMEM predicate framework (Eq. 1 of the paper) is
//!
//! ```text
//! M(x, y) ≡ { H(id(x), id(y)) ≤ f(av(x), av(y)) }
//! ```
//!
//! where `H` is "a (consistent) normalized cryptographic hash function with
//! range \[0, 1\] — a normalized version of SHA-1 or MD-5 could be used".
//! This module provides exactly that: a from-scratch [SHA-256](sha256)
//! implementation (FIPS 180-4) plus [`normalized_hash`] /
//! [`consistent_hash`] helpers that map digests to the unit interval.
//!
//! The implementation is self-contained so the workspace needs no external
//! cryptography crates; the predicate only requires a fixed, well-known
//! function with uniformly distributed output.

use crate::NodeId;

/// A SHA-256 digest.
pub type Digest = [u8; 32];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Computes the SHA-256 digest of `data`.
///
/// This is a straightforward implementation of FIPS 180-4, validated
/// against the official test vectors (see the module tests).
///
/// # Examples
///
/// ```
/// use avmem_util::sha256;
///
/// let digest = sha256(b"abc");
/// assert_eq!(digest[0], 0xba);
/// assert_eq!(digest[31], 0xad);
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut state = H0;

    // Whole blocks straight from the input; the FIPS padding (0x80, zero
    // fill, 8-byte big-endian bit length) fits a fixed two-block tail, so
    // hashing never allocates — the predicate and monitor-assignment hot
    // paths call this hundreds of millions of times per run.
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        compress(&mut state, block);
    }
    let rem = blocks.remainder();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        compress(&mut state, block);
    }

    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One SHA-256 compression round over a 64-byte block.
///
/// Dispatches to the SHA-NI hardware implementation when the CPU supports
/// it (one relaxed atomic load of a cached `cpuid` probe), falling back to
/// the portable scalar rounds. Both produce bit-identical digests — SHA-256
/// is fully specified, so this is an implementation choice invisible to
/// every consumer, including the Eq. 1 predicate whose reproducibility
/// depends on exact digests.
fn compress(state: &mut [u32; 8], block: &[u8]) {
    #[cfg(target_arch = "x86_64")]
    if ni::available() {
        // SAFETY: `available` confirmed the sha/ssse3/sse4.1 features at
        // runtime, and callers always pass a full 64-byte block.
        unsafe { ni::compress(state, block) };
        return;
    }
    compress_scalar(state, block);
}

/// Portable FIPS 180-4 compression (message schedule + 64 scalar rounds).
fn compress_scalar(state: &mut [u32; 8], block: &[u8]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// SHA-NI (Intel SHA extensions) compression.
///
/// The pair-hash hot path is one compression per `H(id(x), id(y))`, so at
/// 10^4 hosts the maintenance loop runs tens of millions of compressions per
/// simulated hour; the hardware rounds cut each from roughly 280 ns to under
/// 60 ns on this workload. The implementation follows the standard
/// `sha256rnds2`/`sha256msg1`/`sha256msg2` schedule (the same structure as
/// Intel's reference code) and is pinned bit-for-bit by the FIPS 180-4
/// vectors in the module tests, which exercise both this path and the scalar
/// fallback.
#[cfg(target_arch = "x86_64")]
mod ni {
    use super::K;
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Cached `cpuid` probe: 0 = unknown, 1 = unavailable, 2 = available.
    static DETECTED: AtomicU8 = AtomicU8::new(0);

    /// Whether the CPU supports the SHA extensions (plus the SSSE3/SSE4.1
    /// shuffles the state massaging needs). Probes once, then costs a single
    /// relaxed load.
    #[inline]
    pub(super) fn available() -> bool {
        match DETECTED.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let ok = is_x86_feature_detected!("sha")
                    && is_x86_feature_detected!("ssse3")
                    && is_x86_feature_detected!("sse4.1");
                DETECTED.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
        }
    }

    /// Hardware SHA-256 compression over one 64-byte block.
    ///
    /// # Safety
    ///
    /// Requires the `sha`, `ssse3`, and `sse4.1` target features (checked by
    /// [`available`]) and `block.len() >= 64`.
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub(super) unsafe fn compress(state: &mut [u32; 8], block: &[u8]) {
        debug_assert!(block.len() >= 64);

        // `sha256rnds2` wants the state packed as ABEF / CDGH.
        let tmp = _mm_loadu_si128(state.as_ptr().cast::<__m128i>());
        let st1 = _mm_loadu_si128(state.as_ptr().add(4).cast::<__m128i>());
        let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
        let st1 = _mm_shuffle_epi32(st1, 0x1B); // EFGH
        let mut state0 = _mm_alignr_epi8(tmp, st1, 8); // ABEF
        let mut state1 = _mm_blend_epi16(st1, tmp, 0xF0); // CDGH

        let abef_save = state0;
        let cdgh_save = state1;

        // Byte shuffle turning each big-endian 32-bit message word into a
        // little-endian lane.
        let mask = _mm_set_epi64x(0x0c0d0e0f08090a0b_u64 as i64, 0x0405060700010203_u64 as i64);

        // Sixteen message words in four rolling registers.
        let mut msgs = [
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast::<__m128i>()), mask),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast::<__m128i>()), mask),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast::<__m128i>()), mask),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast::<__m128i>()), mask),
        ];

        for i in 0..16 {
            // W[4i..4i+4] + K[4i..4i+4]; `rnds2` consumes the low pair then
            // the high pair.
            let k = _mm_loadu_si128(K.as_ptr().add(4 * i).cast::<__m128i>());
            let wk = _mm_add_epi32(msgs[i & 3], k);
            state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
            let wk_hi = _mm_shuffle_epi32(wk, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, wk_hi);

            if i < 12 {
                // Schedule the next four words:
                //   W[t] = σ1(W[t-2]) + W[t-7] + σ0(W[t-15]) + W[t-16]
                let x0 = msgs[i & 3];
                let x1 = msgs[(i + 1) & 3];
                let x2 = msgs[(i + 2) & 3];
                let x3 = msgs[(i + 3) & 3];
                let w_minus_7 = _mm_alignr_epi8(x3, x2, 4);
                let partial = _mm_add_epi32(_mm_sha256msg1_epu32(x0, x1), w_minus_7);
                msgs[i & 3] = _mm_sha256msg2_epu32(partial, x3);
            }
        }

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);

        // Unpack ABEF / CDGH back to word order.
        let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
        let st1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
        let out0 = _mm_blend_epi16(tmp, st1, 0xF0); // DCBA
        let out1 = _mm_alignr_epi8(st1, tmp, 8); // HGFE

        _mm_storeu_si128(state.as_mut_ptr().cast::<__m128i>(), out0);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast::<__m128i>(), out1);
    }
}

/// Maps a digest to the unit interval `[0, 1)` using its first 8 bytes.
///
/// The output is uniform on `[0, 1)` given a uniform digest, with 53 bits
/// of effective precision (an `f64` mantissa).
fn digest_to_unit(digest: &Digest) -> f64 {
    let raw = u64::from_be_bytes(digest[..8].try_into().expect("digest has 32 bytes"));
    // Keep 53 significant bits so the conversion to f64 is exact.
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

/// Computes a normalized hash of an arbitrary byte string: `[0, 1)`.
///
/// # Examples
///
/// ```
/// use avmem_util::normalized_hash;
///
/// let h = normalized_hash(b"hello");
/// assert!((0.0..1.0).contains(&h));
/// assert_eq!(h, normalized_hash(b"hello"));
/// assert_ne!(h, normalized_hash(b"world"));
/// ```
pub fn normalized_hash(data: &[u8]) -> f64 {
    digest_to_unit(&sha256(data))
}

/// The paper's `H(id(x), id(y))`: a consistent, normalized hash of an
/// **ordered** pair of node identifiers.
///
/// The pair is ordered — `consistent_hash(x, y)` and `consistent_hash(y, x)`
/// are independent values — because the membership relation `M(x, y)` is
/// directed: `y` may be in `x`'s list while `x` is not in `y`'s.
///
/// # Examples
///
/// ```
/// use avmem_util::{consistent_hash, NodeId};
///
/// let h_xy = consistent_hash(NodeId::new(1), NodeId::new(2));
/// let h_yx = consistent_hash(NodeId::new(2), NodeId::new(1));
/// assert!((0.0..1.0).contains(&h_xy));
/// // Directed: the two orientations hash independently.
/// assert_ne!(h_xy, h_yx);
/// ```
pub fn consistent_hash(x: NodeId, y: NodeId) -> f64 {
    let mut buf = [0u8; 16];
    buf[..8].copy_from_slice(&x.to_bytes());
    buf[8..].copy_from_slice(&y.to_bytes());
    normalized_hash(&buf)
}

/// A keyed variant of [`consistent_hash`] for deriving independent
/// consistent values from the same node pair (e.g. the AVMON monitor
/// assignment needs a hash family independent from the AVMEM predicate's).
///
/// # Examples
///
/// ```
/// use avmem_util::{consistent_hash_keyed, NodeId};
///
/// let a = consistent_hash_keyed(b"avmon", NodeId::new(1), NodeId::new(2));
/// let b = consistent_hash_keyed(b"avmem", NodeId::new(1), NodeId::new(2));
/// assert_ne!(a, b);
/// ```
pub fn consistent_hash_keyed(key: &[u8], x: NodeId, y: NodeId) -> f64 {
    digest_to_unit(&keyed_pair_digest(key, x, y))
}

/// Digest of `key ‖ id(x) ‖ id(y)` shared by [`consistent_hash_keyed`]
/// and [`consistent_point_keyed`], so both views of a pair agree on the
/// underlying hash.
fn keyed_pair_digest(key: &[u8], x: NodeId, y: NodeId) -> Digest {
    // Domain tags are short; a stack buffer keeps the per-pair hot path
    // (the AVMON monitor assignment evaluates all N² ordered pairs)
    // allocation-free. The hashed bytes are identical either way.
    if key.len() <= 32 {
        let mut buf = [0u8; 48];
        buf[..key.len()].copy_from_slice(key);
        buf[key.len()..key.len() + 8].copy_from_slice(&x.to_bytes());
        buf[key.len() + 8..key.len() + 16].copy_from_slice(&y.to_bytes());
        sha256(&buf[..key.len() + 16])
    } else {
        let mut buf = Vec::with_capacity(key.len() + 16);
        buf.extend_from_slice(key);
        buf.extend_from_slice(&x.to_bytes());
        buf.extend_from_slice(&y.to_bytes());
        sha256(&buf)
    }
}

/// The 128-bit sibling of [`consistent_hash_keyed`]: the same keyed
/// digest of the ordered pair, exposed as a full-precision point on the
/// `u128` circle instead of a normalized `f64`.
///
/// Consistent-hash rings ([`crate::ring::HashRing`]) place members and
/// lookups on this circle; 128 bits make accidental point collisions
/// negligible even with `10⁶ hosts × vnodes` points on one ring, which
/// an `f64` (53 significant bits) could not guarantee.
///
/// # Examples
///
/// ```
/// use avmem_util::{consistent_point_keyed, NodeId};
///
/// let p = consistent_point_keyed(b"ring", NodeId::new(1), NodeId::new(0));
/// assert_eq!(p, consistent_point_keyed(b"ring", NodeId::new(1), NodeId::new(0)));
/// assert_ne!(p, consistent_point_keyed(b"ring", NodeId::new(2), NodeId::new(0)));
/// ```
pub fn consistent_point_keyed(key: &[u8], x: NodeId, y: NodeId) -> u128 {
    let digest = keyed_pair_digest(key, x, y);
    u128::from_be_bytes(digest[..16].try_into().expect("digest has 32 bytes"))
}

/// A fast, non-cryptographic hasher for *in-memory tables keyed by packed
/// integers* (e.g. a `(x, y)` node pair packed into one `u64`). This is
/// the SplitMix64 finalizer — full 64-bit avalanche in three multiplies —
/// so every input bit perturbs every output bit, which is all a hash map
/// needs; it has nothing to do with the consistent SHA-256 hashing above
/// (protocol-visible values must keep using [`consistent_hash`]).
///
/// # Examples
///
/// ```
/// use avmem_util::hash::PairKeyHashBuilder;
/// use std::collections::HashMap;
///
/// let mut map: HashMap<u64, f64, PairKeyHashBuilder> = HashMap::default();
/// map.insert((3u64 << 32) | 7, 0.25);
/// assert_eq!(map.get(&((3u64 << 32) | 7)), Some(&0.25));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PairKeyHashBuilder;

impl std::hash::BuildHasher for PairKeyHashBuilder {
    type Hasher = PairKeyHasher;

    fn build_hasher(&self) -> PairKeyHasher {
        PairKeyHasher(0)
    }
}

/// The hasher produced by [`PairKeyHashBuilder`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PairKeyHasher(u64);

/// The SplitMix64 output mix (Steele et al.): a 64-bit finalizer with
/// full avalanche.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl std::hash::Hasher for PairKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for non-integer keys: fold 8-byte chunks.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.write_u64(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.write_u64(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = mix64(self.0 ^ n);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &Digest) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / NIST CAVP test vectors.
    #[test]
    fn sha256_empty_string() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_exact_block_boundaries() {
        // Lengths 55, 56, 63, 64, 65 cross the padding boundary cases.
        for len in [55usize, 56, 63, 64, 65] {
            let data = vec![0x5au8; len];
            let d = sha256(&data);
            // Re-hashing must be deterministic.
            assert_eq!(d, sha256(&data), "len={len}");
        }
    }

    #[test]
    fn hardware_and_scalar_compress_agree() {
        // The FIPS vectors above pin whichever path `compress` dispatches
        // to; this pins the two implementations against each other on
        // varied block counts and contents. On CPUs without SHA-NI both
        // sides are the scalar path and the test is trivially true.
        for len in [0usize, 1, 17, 55, 56, 63, 64, 65, 127, 128, 129, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(7)).collect();
            let dispatched = sha256(&data);

            let mut state = H0;
            let mut blocks = data.chunks_exact(64);
            for block in &mut blocks {
                compress_scalar(&mut state, block);
            }
            let rem = blocks.remainder();
            let bit_len = (data.len() as u64).wrapping_mul(8);
            let mut tail = [0u8; 128];
            tail[..rem.len()].copy_from_slice(rem);
            tail[rem.len()] = 0x80;
            let tail_len = if rem.len() < 56 { 64 } else { 128 };
            tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
            for block in tail[..tail_len].chunks_exact(64) {
                compress_scalar(&mut state, block);
            }
            let mut scalar = [0u8; 32];
            for (i, word) in state.iter().enumerate() {
                scalar[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
            }

            assert_eq!(dispatched, scalar, "len={len}");
        }
    }

    #[test]
    fn normalized_hash_is_in_unit_interval() {
        for i in 0..100u64 {
            let h = normalized_hash(&i.to_be_bytes());
            assert!((0.0..1.0).contains(&h));
        }
    }

    #[test]
    fn normalized_hash_looks_uniform() {
        // Crude uniformity check: mean of many hashes near 0.5.
        let n = 2000u64;
        let sum: f64 = (0..n).map(|i| normalized_hash(&i.to_be_bytes())).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn consistent_hash_is_directed() {
        let x = NodeId::new(10);
        let y = NodeId::new(20);
        assert_ne!(consistent_hash(x, y), consistent_hash(y, x));
    }

    #[test]
    fn consistent_hash_is_stable_across_calls() {
        let x = NodeId::new(123);
        let y = NodeId::new(456);
        assert_eq!(consistent_hash(x, y), consistent_hash(x, y));
    }

    #[test]
    fn keyed_hash_separates_domains() {
        let x = NodeId::new(1);
        let y = NodeId::new(2);
        assert_ne!(
            consistent_hash_keyed(b"a", x, y),
            consistent_hash_keyed(b"b", x, y)
        );
    }

    #[test]
    fn keyed_point_and_keyed_hash_share_one_digest() {
        // The f64 view is the first 8 bytes (53 bits kept); the u128
        // point is the first 16 bytes. Their common prefix must agree.
        for i in 0..50u64 {
            let x = NodeId::new(i);
            let y = NodeId::new(i.wrapping_mul(31) + 7);
            let point = consistent_point_keyed(b"avmon", x, y);
            let raw = (point >> 64) as u64;
            let expect = (raw >> 11) as f64 / (1u64 << 53) as f64;
            assert_eq!(consistent_hash_keyed(b"avmon", x, y), expect);
        }
    }

    #[test]
    fn pair_key_hasher_avalanches_and_is_deterministic() {
        use std::hash::{BuildHasher, Hasher};
        let builder = PairKeyHashBuilder;
        let hash_one = |n: u64| {
            let mut h = builder.build_hasher();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash_one(42), hash_one(42));
        // Neighboring keys (the packed-pair pattern: y varies fastest)
        // must not collide or cluster.
        let mut seen = std::collections::BTreeSet::new();
        for x in 0..64u64 {
            for y in 0..64u64 {
                seen.insert(hash_one((x << 32) | y));
            }
        }
        assert_eq!(seen.len(), 64 * 64, "packed pairs must not collide");
    }

    #[test]
    fn pair_key_hasher_byte_fallback_matches_itself_only() {
        use std::hash::{BuildHasher, Hasher};
        let builder = PairKeyHashBuilder;
        let hash_bytes = |b: &[u8]| {
            let mut h = builder.build_hasher();
            h.write(b);
            h.finish()
        };
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
        // Length is folded in, so a zero-padded prefix differs.
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
    }

    #[test]
    fn keyed_point_separates_domains_and_pairs() {
        let x = NodeId::new(1);
        let y = NodeId::new(2);
        assert_ne!(
            consistent_point_keyed(b"a", x, y),
            consistent_point_keyed(b"b", x, y)
        );
        assert_ne!(
            consistent_point_keyed(b"a", x, y),
            consistent_point_keyed(b"a", y, x)
        );
    }
}
