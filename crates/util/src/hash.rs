//! Consistent, normalized hashing.
//!
//! The AVMEM predicate framework (Eq. 1 of the paper) is
//!
//! ```text
//! M(x, y) ≡ { H(id(x), id(y)) ≤ f(av(x), av(y)) }
//! ```
//!
//! where `H` is "a (consistent) normalized cryptographic hash function with
//! range \[0, 1\] — a normalized version of SHA-1 or MD-5 could be used".
//! This module provides exactly that: a from-scratch [SHA-256](sha256)
//! implementation (FIPS 180-4) plus [`normalized_hash`] /
//! [`consistent_hash`] helpers that map digests to the unit interval.
//!
//! The implementation is self-contained so the workspace needs no external
//! cryptography crates; the predicate only requires a fixed, well-known
//! function with uniformly distributed output.

use crate::NodeId;

/// A SHA-256 digest.
pub type Digest = [u8; 32];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Computes the SHA-256 digest of `data`.
///
/// This is a straightforward implementation of FIPS 180-4, validated
/// against the official test vectors (see the module tests).
///
/// # Examples
///
/// ```
/// use avmem_util::sha256;
///
/// let digest = sha256(b"abc");
/// assert_eq!(digest[0], 0xba);
/// assert_eq!(digest[31], 0xad);
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut state = H0;

    // Whole blocks straight from the input; the FIPS padding (0x80, zero
    // fill, 8-byte big-endian bit length) fits a fixed two-block tail, so
    // hashing never allocates — the predicate and monitor-assignment hot
    // paths call this hundreds of millions of times per run.
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        compress(&mut state, block);
    }
    let rem = blocks.remainder();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        compress(&mut state, block);
    }

    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One SHA-256 compression round over a 64-byte block.
fn compress(state: &mut [u32; 8], block: &[u8]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Maps a digest to the unit interval `[0, 1)` using its first 8 bytes.
///
/// The output is uniform on `[0, 1)` given a uniform digest, with 53 bits
/// of effective precision (an `f64` mantissa).
fn digest_to_unit(digest: &Digest) -> f64 {
    let raw = u64::from_be_bytes(digest[..8].try_into().expect("digest has 32 bytes"));
    // Keep 53 significant bits so the conversion to f64 is exact.
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

/// Computes a normalized hash of an arbitrary byte string: `[0, 1)`.
///
/// # Examples
///
/// ```
/// use avmem_util::normalized_hash;
///
/// let h = normalized_hash(b"hello");
/// assert!((0.0..1.0).contains(&h));
/// assert_eq!(h, normalized_hash(b"hello"));
/// assert_ne!(h, normalized_hash(b"world"));
/// ```
pub fn normalized_hash(data: &[u8]) -> f64 {
    digest_to_unit(&sha256(data))
}

/// The paper's `H(id(x), id(y))`: a consistent, normalized hash of an
/// **ordered** pair of node identifiers.
///
/// The pair is ordered — `consistent_hash(x, y)` and `consistent_hash(y, x)`
/// are independent values — because the membership relation `M(x, y)` is
/// directed: `y` may be in `x`'s list while `x` is not in `y`'s.
///
/// # Examples
///
/// ```
/// use avmem_util::{consistent_hash, NodeId};
///
/// let h_xy = consistent_hash(NodeId::new(1), NodeId::new(2));
/// let h_yx = consistent_hash(NodeId::new(2), NodeId::new(1));
/// assert!((0.0..1.0).contains(&h_xy));
/// // Directed: the two orientations hash independently.
/// assert_ne!(h_xy, h_yx);
/// ```
pub fn consistent_hash(x: NodeId, y: NodeId) -> f64 {
    let mut buf = [0u8; 16];
    buf[..8].copy_from_slice(&x.to_bytes());
    buf[8..].copy_from_slice(&y.to_bytes());
    normalized_hash(&buf)
}

/// A keyed variant of [`consistent_hash`] for deriving independent
/// consistent values from the same node pair (e.g. the AVMON monitor
/// assignment needs a hash family independent from the AVMEM predicate's).
///
/// # Examples
///
/// ```
/// use avmem_util::{consistent_hash_keyed, NodeId};
///
/// let a = consistent_hash_keyed(b"avmon", NodeId::new(1), NodeId::new(2));
/// let b = consistent_hash_keyed(b"avmem", NodeId::new(1), NodeId::new(2));
/// assert_ne!(a, b);
/// ```
pub fn consistent_hash_keyed(key: &[u8], x: NodeId, y: NodeId) -> f64 {
    digest_to_unit(&keyed_pair_digest(key, x, y))
}

/// Digest of `key ‖ id(x) ‖ id(y)` shared by [`consistent_hash_keyed`]
/// and [`consistent_point_keyed`], so both views of a pair agree on the
/// underlying hash.
fn keyed_pair_digest(key: &[u8], x: NodeId, y: NodeId) -> Digest {
    // Domain tags are short; a stack buffer keeps the per-pair hot path
    // (the AVMON monitor assignment evaluates all N² ordered pairs)
    // allocation-free. The hashed bytes are identical either way.
    if key.len() <= 32 {
        let mut buf = [0u8; 48];
        buf[..key.len()].copy_from_slice(key);
        buf[key.len()..key.len() + 8].copy_from_slice(&x.to_bytes());
        buf[key.len() + 8..key.len() + 16].copy_from_slice(&y.to_bytes());
        sha256(&buf[..key.len() + 16])
    } else {
        let mut buf = Vec::with_capacity(key.len() + 16);
        buf.extend_from_slice(key);
        buf.extend_from_slice(&x.to_bytes());
        buf.extend_from_slice(&y.to_bytes());
        sha256(&buf)
    }
}

/// The 128-bit sibling of [`consistent_hash_keyed`]: the same keyed
/// digest of the ordered pair, exposed as a full-precision point on the
/// `u128` circle instead of a normalized `f64`.
///
/// Consistent-hash rings ([`crate::ring::HashRing`]) place members and
/// lookups on this circle; 128 bits make accidental point collisions
/// negligible even with `10⁶ hosts × vnodes` points on one ring, which
/// an `f64` (53 significant bits) could not guarantee.
///
/// # Examples
///
/// ```
/// use avmem_util::{consistent_point_keyed, NodeId};
///
/// let p = consistent_point_keyed(b"ring", NodeId::new(1), NodeId::new(0));
/// assert_eq!(p, consistent_point_keyed(b"ring", NodeId::new(1), NodeId::new(0)));
/// assert_ne!(p, consistent_point_keyed(b"ring", NodeId::new(2), NodeId::new(0)));
/// ```
pub fn consistent_point_keyed(key: &[u8], x: NodeId, y: NodeId) -> u128 {
    let digest = keyed_pair_digest(key, x, y);
    u128::from_be_bytes(digest[..16].try_into().expect("digest has 32 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &Digest) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / NIST CAVP test vectors.
    #[test]
    fn sha256_empty_string() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_exact_block_boundaries() {
        // Lengths 55, 56, 63, 64, 65 cross the padding boundary cases.
        for len in [55usize, 56, 63, 64, 65] {
            let data = vec![0x5au8; len];
            let d = sha256(&data);
            // Re-hashing must be deterministic.
            assert_eq!(d, sha256(&data), "len={len}");
        }
    }

    #[test]
    fn normalized_hash_is_in_unit_interval() {
        for i in 0..100u64 {
            let h = normalized_hash(&i.to_be_bytes());
            assert!((0.0..1.0).contains(&h));
        }
    }

    #[test]
    fn normalized_hash_looks_uniform() {
        // Crude uniformity check: mean of many hashes near 0.5.
        let n = 2000u64;
        let sum: f64 = (0..n).map(|i| normalized_hash(&i.to_be_bytes())).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn consistent_hash_is_directed() {
        let x = NodeId::new(10);
        let y = NodeId::new(20);
        assert_ne!(consistent_hash(x, y), consistent_hash(y, x));
    }

    #[test]
    fn consistent_hash_is_stable_across_calls() {
        let x = NodeId::new(123);
        let y = NodeId::new(456);
        assert_eq!(consistent_hash(x, y), consistent_hash(x, y));
    }

    #[test]
    fn keyed_hash_separates_domains() {
        let x = NodeId::new(1);
        let y = NodeId::new(2);
        assert_ne!(
            consistent_hash_keyed(b"a", x, y),
            consistent_hash_keyed(b"b", x, y)
        );
    }

    #[test]
    fn keyed_point_and_keyed_hash_share_one_digest() {
        // The f64 view is the first 8 bytes (53 bits kept); the u128
        // point is the first 16 bytes. Their common prefix must agree.
        for i in 0..50u64 {
            let x = NodeId::new(i);
            let y = NodeId::new(i.wrapping_mul(31) + 7);
            let point = consistent_point_keyed(b"avmon", x, y);
            let raw = (point >> 64) as u64;
            let expect = (raw >> 11) as f64 / (1u64 << 53) as f64;
            assert_eq!(consistent_hash_keyed(b"avmon", x, y), expect);
        }
    }

    #[test]
    fn keyed_point_separates_domains_and_pairs() {
        let x = NodeId::new(1);
        let y = NodeId::new(2);
        assert_ne!(
            consistent_point_keyed(b"a", x, y),
            consistent_point_keyed(b"b", x, y)
        );
        assert_ne!(
            consistent_point_keyed(b"a", x, y),
            consistent_point_keyed(b"a", y, x)
        );
    }
}
