//! A keyed consistent-hash ring with virtual points.
//!
//! The AVMON monitor assignment of the seed implementation evaluates the
//! paper's hash predicate over all N² ordered pairs — 32 s of SHA-256 at
//! 10⁴ hosts and hopeless beyond. A consistent-hash ring replaces that
//! with structure: every member owns `vnodes` pseudo-random points on the
//! `u128` circle, a lookup walks clockwise from its own point to the next
//! owners, and a join or leave only perturbs the arcs adjacent to the
//! touched points. Assignment queries become `O(log P)` (`P` = ring
//! points) and membership changes are local repairs instead of global
//! rebuilds.
//!
//! Points come from [`consistent_point_keyed`], the 128-bit sibling of
//! the pairwise hash the rest of the workspace already uses, so rings in
//! different roles (say monitor placement vs target lookup) stay
//! independent by domain key. Members are compact `u32` indexes — the
//! same representation the hot columnar structures use at 10⁶ hosts.
//!
//! # Examples
//!
//! ```
//! use avmem_util::ring::HashRing;
//!
//! let mut ring = HashRing::new(b"demo", 4);
//! for member in 0..10u32 {
//!     ring.insert(member);
//! }
//! assert_eq!(ring.len(), 10);
//! assert_eq!(ring.points(), 40);
//!
//! // Three distinct owners clockwise from an arbitrary point.
//! let owners = ring.distinct_successors(42, 3, None);
//! assert_eq!(owners.len(), 3);
//!
//! // Removing an uninvolved member leaves the lookup unchanged.
//! let absent = (0..10u32).find(|m| !owners.contains(m)).unwrap();
//! ring.remove(absent);
//! assert_eq!(ring.distinct_successors(42, 3, None), owners);
//! ```

use std::collections::BTreeMap;

use crate::hash::consistent_point_keyed;
use crate::NodeId;

/// A consistent-hash ring: `vnodes` points per member on the `u128`
/// circle, keyed by a domain tag so independent rings do not correlate.
///
/// Lookups walk clockwise (ascending points, wrapping at the top) and
/// report point *owners*; [`HashRing::distinct_successors`] collects the
/// first `k` distinct owners, which is exactly the "a target's monitors
/// are its k distinct ring successors" rule of the ring assignment
/// strategy.
#[derive(Debug, Clone)]
pub struct HashRing {
    key: Vec<u8>,
    vnodes: u32,
    /// point → owning member. `BTreeMap` gives `O(log P)` insert/remove
    /// and ordered range scans for the clockwise walk.
    ring: BTreeMap<u128, u32>,
    members: usize,
}

impl HashRing {
    /// Creates an empty ring under the given domain `key` with `vnodes`
    /// virtual points per member.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes == 0` — a member with no points would own
    /// nothing and silently vanish from every lookup.
    pub fn new(key: &[u8], vnodes: u32) -> Self {
        assert!(vnodes > 0, "a ring member needs at least one point");
        HashRing {
            key: key.to_vec(),
            vnodes,
            ring: BTreeMap::new(),
            members: 0,
        }
    }

    /// Virtual points per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Number of members currently on the ring.
    pub fn len(&self) -> usize {
        self.members
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// Total points on the ring (`len() * vnodes`).
    pub fn points(&self) -> usize {
        self.ring.len()
    }

    /// The `vnodes` circle points `member` owns (present on the ring or
    /// not — the placement is a pure function of key, member and vnode
    /// index, which is what makes the ring *consistent*).
    pub fn member_points(&self, member: u32) -> Vec<u128> {
        (0..self.vnodes)
            .map(|v| {
                consistent_point_keyed(
                    &self.key,
                    NodeId::new(u64::from(member)),
                    NodeId::new(u64::from(v)),
                )
            })
            .collect()
    }

    /// Whether `member` is currently on the ring.
    pub fn contains(&self, member: u32) -> bool {
        let first = self.member_points(member)[0];
        self.ring.get(&first) == Some(&member)
    }

    /// Adds `member`'s points to the ring. Returns `false` (and changes
    /// nothing) if the member is already present.
    ///
    /// # Panics
    ///
    /// Panics if one of the member's points collides with a different
    /// member's point — with 128-bit points this is astronomically
    /// unlikely and indicates a broken hash, not bad luck.
    pub fn insert(&mut self, member: u32) -> bool {
        if self.contains(member) {
            return false;
        }
        for point in self.member_points(member) {
            if let Some(&other) = self.ring.get(&point) {
                panic!("ring point collision between members {other} and {member}");
            }
            self.ring.insert(point, member);
        }
        self.members += 1;
        true
    }

    /// Removes `member`'s points from the ring. Returns `false` if the
    /// member was not present.
    pub fn remove(&mut self, member: u32) -> bool {
        if !self.contains(member) {
            return false;
        }
        for point in self.member_points(member) {
            let owner = self.ring.remove(&point);
            debug_assert_eq!(owner, Some(member));
        }
        self.members -= 1;
        true
    }

    /// Owners of ring points clockwise from `point` (inclusive), wrapping
    /// at the top of the circle; every point is visited exactly once, so
    /// the iterator yields [`points()`](HashRing::points) items with
    /// members repeating once per vnode.
    pub fn successors(&self, point: u128) -> impl Iterator<Item = u32> + '_ {
        self.ring
            .range(point..)
            .chain(self.ring.range(..point))
            .map(|(_, &member)| member)
    }

    /// The first `k` *distinct* owners clockwise from `point`, skipping
    /// `exclude` — the ring assignment rule (a node never monitors
    /// itself). Returns fewer than `k` members when the ring (minus the
    /// exclusion) holds fewer.
    pub fn distinct_successors(&self, point: u128, k: usize, exclude: Option<u32>) -> Vec<u32> {
        let mut owners = Vec::with_capacity(k);
        for member in self.successors(point) {
            if Some(member) == exclude || owners.contains(&member) {
                continue;
            }
            owners.push(member);
            if owners.len() == k {
                break;
            }
        }
        owners
    }

    /// Walks counter-clockwise from `point` (exclusive) until `distinct`
    /// distinct owners have been seen and returns the ring point where
    /// the last of them was found — the start of the arc that any
    /// clockwise `distinct`-owner walk ending before `point` must leave.
    ///
    /// This is the delta-window primitive for incremental join/leave: a
    /// lookup whose own point lies strictly *before* the returned point
    /// (in counter-clockwise distance from `point`) resolves all of its
    /// owners without ever reaching `point`, so a membership change at
    /// `point` cannot affect it. Returns `None` when the whole ring holds
    /// fewer than `distinct` distinct owners (every lookup is affected).
    pub fn predecessor_window_start(&self, point: u128, distinct: usize) -> Option<u128> {
        let mut seen: Vec<u32> = Vec::with_capacity(distinct);
        let backward = self
            .ring
            .range(..point)
            .rev()
            .chain(self.ring.range(point..).rev());
        for (&p, &member) in backward {
            if p == point {
                // Fully wrapped back to the origin without finding
                // `distinct` owners elsewhere on the ring.
                break;
            }
            if !seen.contains(&member) {
                seen.push(member);
                if seen.len() == distinct {
                    return Some(p);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_with(members: u32, vnodes: u32) -> HashRing {
        let mut ring = HashRing::new(b"test-ring", vnodes);
        for m in 0..members {
            assert!(ring.insert(m));
        }
        ring
    }

    #[test]
    fn insert_and_remove_track_membership() {
        let mut ring = ring_with(8, 3);
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.points(), 24);
        assert!(ring.contains(5));
        assert!(!ring.insert(5), "double insert must be a no-op");
        assert_eq!(ring.points(), 24);
        assert!(ring.remove(5));
        assert!(!ring.contains(5));
        assert!(!ring.remove(5), "double remove must be a no-op");
        assert_eq!(ring.len(), 7);
        assert_eq!(ring.points(), 21);
    }

    #[test]
    fn placement_is_consistent() {
        let a = ring_with(20, 4);
        let b = ring_with(20, 4);
        for probe in [0u128, 1, u128::MAX / 3, u128::MAX] {
            assert_eq!(
                a.distinct_successors(probe, 5, None),
                b.distinct_successors(probe, 5, None)
            );
        }
        assert_eq!(a.member_points(7), b.member_points(7));
    }

    #[test]
    fn distinct_successors_are_distinct_and_respect_exclusion() {
        let ring = ring_with(12, 4);
        for probe in 0..40u128 {
            let probe = probe.wrapping_mul(u128::MAX / 41);
            let owners = ring.distinct_successors(probe, 4, Some(3));
            assert_eq!(owners.len(), 4);
            assert!(!owners.contains(&3));
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), owners.len());
        }
    }

    #[test]
    fn lookup_wraps_around_the_top_of_the_circle() {
        let ring = ring_with(6, 2);
        let first_owner = *ring.ring.values().next().unwrap();
        // A probe past the last point must wrap to the first point.
        let last_point = *ring.ring.keys().next_back().unwrap();
        if last_point < u128::MAX {
            let wrapped = ring.distinct_successors(last_point + 1, 1, None);
            assert_eq!(wrapped, vec![first_owner]);
        }
    }

    #[test]
    fn removal_only_reroutes_lookups_owned_by_the_removed_member() {
        let mut ring = ring_with(30, 4);
        let probes: Vec<u128> = (0..200u128).map(|i| i.wrapping_mul(u128::MAX / 201)).collect();
        let before: Vec<Vec<u32>> = probes
            .iter()
            .map(|&p| ring.distinct_successors(p, 1, None))
            .collect();
        ring.remove(11);
        for (probe, owners) in probes.iter().zip(&before) {
            let after = ring.distinct_successors(*probe, 1, None);
            if owners == &vec![11] {
                assert_ne!(after, vec![11]);
            } else {
                assert_eq!(&after, owners, "unrelated lookup moved");
            }
        }
    }

    #[test]
    fn vnodes_spread_load() {
        // With enough virtual points the busiest member's share of the
        // circle stays within a small factor of the mean.
        let ring = ring_with(40, 16);
        let probes = 4000u128;
        let mut load = [0u32; 40];
        for i in 0..probes {
            let p = i.wrapping_mul(u128::MAX / (probes + 1));
            load[ring.distinct_successors(p, 1, None)[0] as usize] += 1;
        }
        let mean = probes as f64 / 40.0;
        let max = *load.iter().max().unwrap() as f64;
        assert!(max < mean * 3.0, "max load {max} vs mean {mean}");
    }

    #[test]
    fn predecessor_window_bounds_the_distinct_walk() {
        let ring = ring_with(25, 4);
        for i in 0..50u128 {
            let point = i.wrapping_mul(u128::MAX / 51);
            let start = ring
                .predecessor_window_start(point, 5)
                .expect("25 members hold 5 distinct owners");
            assert!(ring.ring.contains_key(&start));
            // Walking clockwise from the window start must reach 5
            // distinct owners at or before `point`'s predecessor arc —
            // i.e. the arc [start, point) contains exactly 5 owners.
            let mut seen: Vec<u32> = Vec::new();
            for m in ring.successors(start) {
                if !seen.contains(&m) {
                    seen.push(m);
                }
                if seen.len() == 5 {
                    break;
                }
            }
            assert_eq!(seen.len(), 5);
        }
    }

    #[test]
    fn small_rings_report_exhaustion() {
        let ring = ring_with(3, 2);
        assert_eq!(ring.distinct_successors(0, 5, None).len(), 3);
        assert_eq!(ring.distinct_successors(0, 5, Some(1)).len(), 2);
        assert!(ring.predecessor_window_start(77, 4).is_none());
        let empty = HashRing::new(b"empty", 2);
        assert!(empty.distinct_successors(0, 3, None).is_empty());
        assert!(empty.predecessor_window_start(0, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn zero_vnodes_is_rejected() {
        let _ = HashRing::new(b"bad", 0);
    }
}
