//! Shard partitioning of a node population.
//!
//! [`ShardPartition`] carves `n` node indices into `S` contiguous,
//! near-equal ranges — the ownership map of the sharded maintenance
//! harness. Each shard *owns* the state of its nodes (shuffle views,
//! membership lists, event queue); anything crossing a shard boundary
//! travels as an explicit message batch exchanged between phases, never
//! as a shared-memory reach into another shard's slice.
//!
//! Contiguity is the load-bearing property: a shard's slice of any
//! node-indexed `Vec` is obtainable with [`ShardPartition::split_mut`]
//! as plain disjoint sub-slices, so per-shard workers get `&mut` access
//! with no locks, no `unsafe`, and no false sharing of interleaved
//! elements.
//!
//! The first `n % S` shards hold one extra node, so shard sizes differ
//! by at most one for every `(n, S)`.

use std::ops::Range;

/// A partition of node indices `0..n` into `S` contiguous shards.
///
/// # Examples
///
/// ```
/// use avmem_util::shard::ShardPartition;
///
/// let part = ShardPartition::new(10, 4);
/// // 10 nodes over 4 shards: sizes 3, 3, 2, 2.
/// assert_eq!(part.range(0), 0..3);
/// assert_eq!(part.range(3), 8..10);
/// assert_eq!(part.owner(7), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPartition {
    n: usize,
    shards: usize,
}

impl ShardPartition {
    /// Creates the partition of `0..n` into `shards` ranges. A shard
    /// count of zero is treated as one; counts above `n` leave the
    /// excess shards empty (every node still has exactly one owner).
    pub fn new(n: usize, shards: usize) -> Self {
        ShardPartition {
            n,
            shards: shards.max(1),
        }
    }

    /// Number of shards in the partition.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes partitioned.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the partition covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The shard owning node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n, "node {i} outside population {}", self.n);
        let base = self.n / self.shards;
        let rem = self.n % self.shards;
        // The first `rem` shards are `base + 1` wide. (When `base == 0`
        // every node lands in the first branch: `rem == n` there.)
        let wide = rem * (base + 1);
        if i < wide {
            i / (base + 1)
        } else {
            rem + (i - wide) / base
        }
    }

    /// The index range shard `s` owns (empty when `s` drew no nodes).
    ///
    /// # Panics
    ///
    /// Panics if `s >= shards()`.
    pub fn range(&self, s: usize) -> Range<usize> {
        assert!(s < self.shards, "shard {s} outside partition {}", self.shards);
        let base = self.n / self.shards;
        let rem = self.n % self.shards;
        let start = s * base + s.min(rem);
        let len = base + usize::from(s < rem);
        start..start + len
    }

    /// Splits a node-indexed slice into one sub-slice per shard, in
    /// shard order. The sub-slices are disjoint and cover `items`
    /// exactly, so they can be handed to per-shard workers as owned
    /// `&mut` state.
    ///
    /// # Panics
    ///
    /// Panics if `items.len() != len()`.
    pub fn split_mut<'a, T>(&self, items: &'a mut [T]) -> Vec<&'a mut [T]> {
        assert_eq!(
            items.len(),
            self.n,
            "slice length must match the partitioned population"
        );
        let mut slices = Vec::with_capacity(self.shards);
        let mut rest = items;
        for s in 0..self.shards {
            let (head, tail) = rest.split_at_mut(self.range(s).len());
            slices.push(head);
            rest = tail;
        }
        slices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_population() {
        for n in [0usize, 1, 2, 7, 16, 100, 101] {
            for shards in [1usize, 2, 3, 4, 8, 13, 150] {
                let part = ShardPartition::new(n, shards);
                let mut next = 0usize;
                for s in 0..part.shards() {
                    let range = part.range(s);
                    assert_eq!(range.start, next, "n={n} shards={shards} s={s}");
                    next = range.end;
                }
                assert_eq!(next, n, "ranges must cover 0..{n}");
            }
        }
    }

    #[test]
    fn owner_matches_range() {
        for n in [1usize, 5, 16, 97] {
            for shards in [1usize, 2, 4, 8, 97, 200] {
                let part = ShardPartition::new(n, shards);
                for i in 0..n {
                    let s = part.owner(i);
                    assert!(
                        part.range(s).contains(&i),
                        "n={n} shards={shards}: node {i} not in its owner's range"
                    );
                }
            }
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let part = ShardPartition::new(103, 8);
        let sizes: Vec<usize> = (0..8).map(|s| part.range(s).len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 103);
    }

    #[test]
    fn zero_shards_collapses_to_one() {
        let part = ShardPartition::new(9, 0);
        assert_eq!(part.shards(), 1);
        assert_eq!(part.range(0), 0..9);
    }

    #[test]
    fn more_shards_than_nodes_leaves_tails_empty() {
        let part = ShardPartition::new(3, 8);
        for i in 0..3 {
            assert_eq!(part.owner(i), i);
        }
        for s in 3..8 {
            assert!(part.range(s).is_empty());
        }
    }

    #[test]
    fn split_mut_hands_out_disjoint_owned_slices() {
        let part = ShardPartition::new(11, 4);
        let mut items: Vec<u32> = vec![0; 11];
        let slices = part.split_mut(&mut items);
        assert_eq!(slices.len(), 4);
        for (s, slice) in slices.into_iter().enumerate() {
            assert_eq!(slice.len(), part.range(s).len());
            for x in slice {
                *x = s as u32 + 1;
            }
        }
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(x as usize, part.owner(i) + 1, "node {i}");
        }
    }

    #[test]
    #[should_panic(expected = "outside population")]
    fn owner_rejects_out_of_range() {
        let _ = ShardPartition::new(4, 2).owner(4);
    }
}
