//! The CYCLON shuffle state machine.
//!
//! Pure message-in/message-out: the host simulation decides when to call
//! [`ShuffleNode::initiate`] (once per protocol period while online),
//! routes [`ShuffleMessage`]s between nodes, and reports unresponsive
//! targets with [`ShuffleNode::handle_timeout`].

use avmem_util::{NodeId, SplitMix64};
use serde::{Deserialize, Serialize};

use crate::view::{View, ViewEntry};

/// Configuration of the shuffle protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShuffleConfig {
    /// Partial-view capacity (`v` in §3.1; `√N` is optimal).
    pub view_size: usize,
    /// Number of entries exchanged per shuffle (`ℓ`), self included.
    pub shuffle_length: usize,
}

impl ShuffleConfig {
    /// Creates a config, validating `0 < shuffle_length ≤ view_size`.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated.
    pub fn new(view_size: usize, shuffle_length: usize) -> Self {
        assert!(view_size > 0, "view size must be positive");
        assert!(
            (1..=view_size).contains(&shuffle_length),
            "shuffle length must be in 1..=view_size"
        );
        ShuffleConfig {
            view_size,
            shuffle_length,
        }
    }

    /// The paper-scale default for a system of `n` nodes: view `√N`,
    /// exchanging half the view (min 4).
    pub fn for_system_size(n: usize) -> Self {
        let v = crate::optimal_view_size(n);
        ShuffleConfig::new(v, (v / 2).max(4).min(v))
    }
}

/// A shuffle exchange message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShuffleMessage {
    /// Initiator → target: a random subset of the initiator's view
    /// (including a fresh entry for the initiator itself).
    Request {
        /// Entries shipped to the target.
        entries: Vec<ViewEntry>,
    },
    /// Target → initiator: a random subset of the target's view.
    Reply {
        /// Entries shipped back to the initiator.
        entries: Vec<ViewEntry>,
    },
}

/// Per-node CYCLON state.
///
/// # Examples
///
/// A complete exchange between two nodes:
///
/// ```
/// use avmem_shuffle::{ShuffleConfig, ShuffleNode};
/// use avmem_util::NodeId;
///
/// let cfg = ShuffleConfig::new(8, 4);
/// let mut a = ShuffleNode::new(NodeId::new(1), cfg, 11);
/// let mut b = ShuffleNode::new(NodeId::new(2), cfg, 22);
/// a.bootstrap([NodeId::new(2)]);
///
/// let (target, request) = a.initiate().expect("view non-empty");
/// assert_eq!(target, NodeId::new(2));
/// let reply = b.handle_request(request);
/// a.handle_reply(reply);
///
/// // After the exchange the target has learned about the initiator.
/// assert!(b.view().contains(NodeId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct ShuffleNode {
    id: NodeId,
    config: ShuffleConfig,
    view: View,
    rng: SplitMix64,
    /// Entries sent in the in-flight exchange (for merge bookkeeping).
    in_flight: Option<InFlight>,
}

#[derive(Debug, Clone)]
struct InFlight {
    target: NodeId,
    sent: Vec<ViewEntry>,
    removed_target_entry: ViewEntry,
}

impl ShuffleNode {
    /// Creates a node with an empty view.
    pub fn new(id: NodeId, config: ShuffleConfig, seed: u64) -> Self {
        ShuffleNode {
            id,
            config,
            view: View::new(config.view_size),
            rng: SplitMix64::new(seed),
            in_flight: None,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Read access to the current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Seeds the view with known peers (used on join/rejoin).
    pub fn bootstrap<I>(&mut self, seeds: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        for seed in seeds {
            if seed != self.id {
                self.view.insert(ViewEntry::fresh(seed));
            }
        }
    }

    /// Clears all state except identity (a node that crashed and lost its
    /// soft state).
    pub fn reset(&mut self) {
        self.view = View::new(self.config.view_size);
        self.in_flight = None;
    }

    /// Starts one shuffle period: ages the view, removes the oldest entry
    /// as the exchange target, and produces the request to send to it.
    ///
    /// Returns `None` when the view is empty (nothing to exchange with) or
    /// an exchange is already in flight.
    pub fn initiate(&mut self) -> Option<(NodeId, ShuffleMessage)> {
        if self.in_flight.is_some() {
            return None;
        }
        self.view.age_all();
        let target_entry = self.view.oldest()?;
        let target = target_entry.id;
        self.view.remove(target);

        let mut entries = self
            .view
            .random_subset(&mut self.rng, self.config.shuffle_length - 1, Some(target));
        entries.push(ViewEntry::fresh(self.id));
        self.in_flight = Some(InFlight {
            target,
            sent: entries.clone(),
            removed_target_entry: target_entry,
        });
        Some((target, ShuffleMessage::Request { entries }))
    }

    /// Handles an incoming request, returning the reply to send back.
    ///
    /// # Panics
    ///
    /// Panics if called with a [`ShuffleMessage::Reply`].
    pub fn handle_request(&mut self, message: ShuffleMessage) -> ShuffleMessage {
        let ShuffleMessage::Request { entries } = message else {
            panic!("handle_request expects a Request message");
        };
        let reply = self
            .view
            .random_subset(&mut self.rng, self.config.shuffle_length, None);
        self.view.merge(self.id, &entries, &reply);
        ShuffleMessage::Reply { entries: reply }
    }

    /// Handles the reply to our in-flight request, completing the
    /// exchange. A reply with no exchange in flight (e.g. from a target
    /// already timed out) is ignored.
    ///
    /// # Panics
    ///
    /// Panics if called with a [`ShuffleMessage::Request`].
    pub fn handle_reply(&mut self, message: ShuffleMessage) {
        let ShuffleMessage::Reply { entries } = message else {
            panic!("handle_reply expects a Reply message");
        };
        let Some(in_flight) = self.in_flight.take() else {
            return;
        };
        self.view.merge(self.id, &entries, &in_flight.sent);
    }

    /// Reports that the in-flight target never answered. CYCLON's
    /// self-cleaning: the dead entry stays removed. Entries we planned to
    /// trade are retained.
    pub fn handle_timeout(&mut self, target: NodeId) {
        if let Some(in_flight) = &self.in_flight {
            if in_flight.target == target {
                self.in_flight = None;
            }
        }
    }

    /// Reports that the exchange target was reachable but we want to undo
    /// the removal (used when the host simulation knows the request was
    /// lost before reaching the target, not that the target is dead).
    pub fn restore_target(&mut self, target: NodeId) {
        if let Some(in_flight) = self.in_flight.take() {
            if in_flight.target == target {
                self.view.insert(in_flight.removed_target_entry);
            } else {
                self.in_flight = Some(in_flight);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> NodeId {
        NodeId::new(n)
    }

    fn node(n: u64) -> ShuffleNode {
        ShuffleNode::new(id(n), ShuffleConfig::new(8, 4), n)
    }

    #[test]
    fn bootstrap_skips_self() {
        let mut a = node(1);
        a.bootstrap([id(1), id(2), id(3)]);
        assert_eq!(a.view().len(), 2);
        assert!(!a.view().contains(id(1)));
    }

    #[test]
    fn initiate_on_empty_view_returns_none() {
        let mut a = node(1);
        assert!(a.initiate().is_none());
    }

    #[test]
    fn initiate_targets_oldest_and_removes_it() {
        let mut a = node(1);
        a.bootstrap([id(2)]);
        // Age id(2), then add a fresh id(3): id(2) is oldest.
        let _ = a.initiate(); // ages, targets 2, removes it
        // After initiate, 2 removed.
        assert!(!a.view().contains(id(2)));
    }

    #[test]
    fn request_carries_fresh_self_entry() {
        let mut a = node(1);
        a.bootstrap([id(2), id(3)]);
        let (_, msg) = a.initiate().unwrap();
        let ShuffleMessage::Request { entries } = msg else {
            panic!("expected request");
        };
        assert!(entries.iter().any(|e| e.id == id(1) && e.age == 0));
    }

    #[test]
    fn exchange_spreads_knowledge_both_ways() {
        let cfg = ShuffleConfig::new(8, 4);
        let mut a = ShuffleNode::new(id(1), cfg, 10);
        let mut b = ShuffleNode::new(id(2), cfg, 20);
        a.bootstrap([id(2)]);
        b.bootstrap([id(5), id(6)]);

        let (target, req) = a.initiate().unwrap();
        assert_eq!(target, id(2));
        // Give a some more context for the assertion below.
        a.bootstrap([id(3), id(4)]);
        let reply = b.handle_request(req);
        a.handle_reply(reply);

        // b learned about a.
        assert!(b.view().contains(id(1)));
        // a learned something from b's view.
        let knows_from_b = a.view().contains(id(5)) || a.view().contains(id(6));
        assert!(knows_from_b, "a's view: {:?}", a.view());
    }

    #[test]
    fn second_initiate_while_in_flight_is_noop() {
        let mut a = node(1);
        a.bootstrap([id(2), id(3)]);
        let first = a.initiate();
        assert!(first.is_some());
        assert!(a.initiate().is_none());
    }

    #[test]
    fn timeout_clears_in_flight_and_drops_dead_entry() {
        let mut a = node(1);
        a.bootstrap([id(2)]);
        let (target, _) = a.initiate().unwrap();
        a.handle_timeout(target);
        assert!(!a.view().contains(target));
        // Can initiate again (view empty now though).
        assert!(a.initiate().is_none());
    }

    #[test]
    fn restore_target_reinserts_entry() {
        let mut a = node(1);
        a.bootstrap([id(2)]);
        let (target, _) = a.initiate().unwrap();
        a.restore_target(target);
        assert!(a.view().contains(id(2)));
    }

    #[test]
    fn stray_reply_is_ignored() {
        let mut a = node(1);
        a.bootstrap([id(2)]);
        a.handle_reply(ShuffleMessage::Reply {
            entries: vec![ViewEntry::fresh(id(9))],
        });
        // No in-flight exchange: nothing merged.
        assert!(!a.view().contains(id(9)));
    }

    #[test]
    fn reset_clears_view() {
        let mut a = node(1);
        a.bootstrap([id(2), id(3)]);
        a.reset();
        assert!(a.view().is_empty());
    }

    #[test]
    #[should_panic(expected = "shuffle length")]
    fn invalid_config_panics() {
        let _ = ShuffleConfig::new(4, 5);
    }
}
