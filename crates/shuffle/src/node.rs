//! The CYCLON shuffle state machine.
//!
//! Pure message-in/message-out: the host simulation decides when to call
//! [`ShuffleNode::initiate`] (once per protocol period while online),
//! routes [`ShuffleMessage`]s between nodes, and reports unresponsive
//! targets with [`ShuffleNode::handle_timeout`].

use avmem_util::{NodeId, Rng, SplitMix64};
use serde::{Deserialize, Serialize};

use crate::pool::EntryPool;
use crate::view::{View, ViewEntry};

/// Configuration of the shuffle protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShuffleConfig {
    /// Partial-view capacity (`v` in §3.1; `√N` is optimal).
    pub view_size: usize,
    /// Number of entries exchanged per shuffle (`ℓ`), self included.
    pub shuffle_length: usize,
}

impl ShuffleConfig {
    /// Creates a config, validating `0 < shuffle_length ≤ view_size`.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated.
    pub fn new(view_size: usize, shuffle_length: usize) -> Self {
        assert!(view_size > 0, "view size must be positive");
        assert!(
            (1..=view_size).contains(&shuffle_length),
            "shuffle length must be in 1..=view_size"
        );
        ShuffleConfig {
            view_size,
            shuffle_length,
        }
    }

    /// The paper-scale default for a system of `n` nodes: view `√N`,
    /// exchanging half the view (min 4).
    pub fn for_system_size(n: usize) -> Self {
        let v = crate::optimal_view_size(n);
        ShuffleConfig::new(v, (v / 2).max(4).min(v))
    }
}

/// A shuffle exchange message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShuffleMessage {
    /// Initiator → target: a random subset of the initiator's view
    /// (including a fresh entry for the initiator itself).
    Request {
        /// Entries shipped to the target.
        entries: Vec<ViewEntry>,
    },
    /// Target → initiator: a random subset of the target's view.
    Reply {
        /// Entries shipped back to the initiator.
        entries: Vec<ViewEntry>,
    },
}

/// Per-node CYCLON state.
///
/// # Examples
///
/// A complete exchange between two nodes:
///
/// ```
/// use avmem_shuffle::{ShuffleConfig, ShuffleNode};
/// use avmem_util::NodeId;
///
/// let cfg = ShuffleConfig::new(8, 4);
/// let mut a = ShuffleNode::new(NodeId::new(1), cfg, 11);
/// let mut b = ShuffleNode::new(NodeId::new(2), cfg, 22);
/// a.bootstrap([NodeId::new(2)]);
///
/// let (target, request) = a.initiate().expect("view non-empty");
/// assert_eq!(target, NodeId::new(2));
/// let reply = b.handle_request(request);
/// a.handle_reply(reply);
///
/// // After the exchange the target has learned about the initiator.
/// assert!(b.view().contains(NodeId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct ShuffleNode {
    id: NodeId,
    config: ShuffleConfig,
    view: View,
    rng: SplitMix64,
    /// Entries sent in the in-flight exchange (for merge bookkeeping).
    in_flight: Option<InFlight>,
}

#[derive(Debug, Clone)]
struct InFlight {
    target: NodeId,
    sent: Vec<ViewEntry>,
    removed_target_entry: ViewEntry,
}

/// A shuffle exchange this node *would* start now: the target (its oldest
/// view entry) and the request entries, sampled from the post-aging view.
///
/// Produced by the read-only [`ShuffleNode::propose`] and turned into
/// state by [`ShuffleNode::apply`]. Splitting the two lets a batch driver
/// compute every node's proposal in parallel from a frozen view of the
/// system — randomness comes from the caller's (typically counter-keyed)
/// generator, not from shared node state — and then commit the resulting
/// request/reply exchanges in a deterministic serial order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuffleProposal {
    target: NodeId,
    entries: Vec<ViewEntry>,
}

impl ShuffleProposal {
    /// The node this exchange would contact.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The entries the request would carry (a fresh self-entry last).
    pub fn entries(&self) -> &[ViewEntry] {
        &self.entries
    }

    /// Consumes the proposal into the wire-format request.
    pub fn into_request(self) -> (NodeId, ShuffleMessage) {
        (
            self.target,
            ShuffleMessage::Request {
                entries: self.entries,
            },
        )
    }

    /// Consumes a proposal that will never become a request (e.g. its
    /// target is offline), recycling the entry buffer into `pool`.
    pub fn recycle_into(self, pool: &mut EntryPool) {
        pool.recycle(self.entries);
    }
}

impl ShuffleNode {
    /// Creates a node with an empty view.
    pub fn new(id: NodeId, config: ShuffleConfig, seed: u64) -> Self {
        ShuffleNode {
            id,
            config,
            view: View::new(config.view_size),
            rng: SplitMix64::new(seed),
            in_flight: None,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Read access to the current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Seeds the view with known peers (used on join/rejoin).
    pub fn bootstrap<I>(&mut self, seeds: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        for seed in seeds {
            if seed != self.id {
                self.view.insert(ViewEntry::fresh(seed));
            }
        }
    }

    /// Clears all state except identity (a node that crashed and lost its
    /// soft state).
    pub fn reset(&mut self) {
        self.view = View::new(self.config.view_size);
        self.in_flight = None;
    }

    /// Computes the exchange this node would start now, *without mutating
    /// any state*: the target is the oldest view entry and the request
    /// entries are a random subset of the view as it will look after
    /// aging, plus a fresh self-entry.
    ///
    /// All randomness comes from `rng`, so a driver that keys the
    /// generator by `(run_seed, node, epoch)` gets proposals that are
    /// independent of evaluation order — the property the batched
    /// parallel maintenance loop relies on. Returns `None` when the view
    /// is empty or an exchange is already in flight.
    ///
    /// A proposal is only meaningful against the exact view it was
    /// computed from; pass it to [`ShuffleNode::apply`] before anything
    /// else touches this node.
    pub fn propose<R: Rng>(&self, rng: &mut R) -> Option<ShuffleProposal> {
        self.propose_with(rng, &mut EntryPool::new())
    }

    /// [`ShuffleNode::propose`] drawing its entry buffer from `pool`.
    ///
    /// Draw-for-draw identical to the allocating form; batch drivers use
    /// this with a per-shard pool so proposal buffers are recycled across
    /// cohorts instead of reallocated.
    pub fn propose_with<R: Rng>(
        &self,
        rng: &mut R,
        pool: &mut EntryPool,
    ) -> Option<ShuffleProposal> {
        if self.in_flight.is_some() {
            return None;
        }
        let target = self.view.oldest()?.id;
        let mut entries = pool.take(self.config.shuffle_length);
        rng.sample_into(
            self.view
                .iter()
                .filter(|e| e.id != target)
                .map(|e| ViewEntry {
                    id: e.id,
                    age: e.age.saturating_add(1),
                }),
            self.config.shuffle_length - 1,
            &mut entries,
        );
        entries.push(ViewEntry::fresh(self.id));
        Some(ShuffleProposal { target, entries })
    }

    /// Applies a proposal from [`ShuffleNode::propose`]: ages the view,
    /// removes the target entry, and records the in-flight exchange. The
    /// host then routes [`ShuffleProposal::into_request`] to the target
    /// and completes with [`ShuffleNode::handle_reply`] or
    /// [`ShuffleNode::handle_timeout`].
    ///
    /// # Panics
    ///
    /// Panics if the proposal does not match this node's state (its
    /// target is no longer in the view, or an exchange is in flight) —
    /// i.e. if the view changed between `propose` and `apply`.
    pub fn apply(&mut self, proposal: &ShuffleProposal) {
        self.apply_with(proposal, &mut EntryPool::new());
    }

    /// [`ShuffleNode::apply`] drawing its in-flight bookkeeping buffer
    /// from `pool` instead of cloning the proposal entries into a fresh
    /// allocation.
    ///
    /// # Panics
    ///
    /// As [`ShuffleNode::apply`].
    pub fn apply_with(&mut self, proposal: &ShuffleProposal, pool: &mut EntryPool) {
        assert!(
            self.in_flight.is_none(),
            "apply with an exchange already in flight"
        );
        self.view.age_all();
        let removed_target_entry = self
            .view
            .remove(proposal.target)
            .expect("proposal target vanished from the view before apply");
        let mut sent = pool.take(proposal.entries.len());
        sent.extend_from_slice(&proposal.entries);
        self.in_flight = Some(InFlight {
            target: proposal.target,
            sent,
            removed_target_entry,
        });
    }

    /// Starts one shuffle period: ages the view, removes the oldest entry
    /// as the exchange target, and produces the request to send to it —
    /// [`ShuffleNode::propose`] + [`ShuffleNode::apply`] driven by the
    /// node's own generator, for serial hosts.
    ///
    /// Returns `None` when the view is empty (nothing to exchange with) or
    /// an exchange is already in flight.
    pub fn initiate(&mut self) -> Option<(NodeId, ShuffleMessage)> {
        let mut rng = self.rng.clone();
        let proposal = self.propose(&mut rng)?;
        self.rng = rng;
        self.apply(&proposal);
        Some(proposal.into_request())
    }

    /// Handles an incoming request, returning the reply to send back.
    ///
    /// # Panics
    ///
    /// Panics if called with a [`ShuffleMessage::Reply`].
    pub fn handle_request(&mut self, message: ShuffleMessage) -> ShuffleMessage {
        self.handle_request_with(message, &mut EntryPool::new())
    }

    /// [`ShuffleNode::handle_request`] drawing the reply buffer from
    /// `pool` and recycling the spent request entries into it.
    ///
    /// # Panics
    ///
    /// As [`ShuffleNode::handle_request`].
    pub fn handle_request_with(
        &mut self,
        message: ShuffleMessage,
        pool: &mut EntryPool,
    ) -> ShuffleMessage {
        let ShuffleMessage::Request { entries } = message else {
            panic!("handle_request expects a Request message");
        };
        let mut reply = pool.take(self.config.shuffle_length);
        self.view
            .random_subset_into(&mut self.rng, self.config.shuffle_length, None, &mut reply);
        self.view.merge(self.id, &entries, &reply);
        pool.recycle(entries);
        ShuffleMessage::Reply { entries: reply }
    }

    /// Handles the reply to our in-flight request, completing the
    /// exchange. A reply with no exchange in flight (e.g. from a target
    /// already timed out) is ignored.
    ///
    /// # Panics
    ///
    /// Panics if called with a [`ShuffleMessage::Request`].
    pub fn handle_reply(&mut self, message: ShuffleMessage) {
        self.handle_reply_with(message, &mut EntryPool::new());
    }

    /// [`ShuffleNode::handle_reply`] recycling the spent reply and
    /// in-flight buffers into `pool`.
    ///
    /// # Panics
    ///
    /// As [`ShuffleNode::handle_reply`].
    pub fn handle_reply_with(&mut self, message: ShuffleMessage, pool: &mut EntryPool) {
        let ShuffleMessage::Reply { entries } = message else {
            panic!("handle_reply expects a Reply message");
        };
        let Some(in_flight) = self.in_flight.take() else {
            pool.recycle(entries);
            return;
        };
        self.view.merge(self.id, &entries, &in_flight.sent);
        pool.recycle(entries);
        pool.recycle(in_flight.sent);
    }

    /// Reports that the in-flight target never answered. CYCLON's
    /// self-cleaning: the dead entry stays removed. Entries we planned to
    /// trade are retained.
    pub fn handle_timeout(&mut self, target: NodeId) {
        self.handle_timeout_with(target, &mut EntryPool::new());
    }

    /// [`ShuffleNode::handle_timeout`] recycling the in-flight buffer
    /// into `pool`.
    pub fn handle_timeout_with(&mut self, target: NodeId, pool: &mut EntryPool) {
        if let Some(in_flight) = &self.in_flight {
            if in_flight.target == target {
                if let Some(in_flight) = self.in_flight.take() {
                    pool.recycle(in_flight.sent);
                }
            }
        }
    }

    /// Reports that the exchange target was reachable but we want to undo
    /// the removal (used when the host simulation knows the request was
    /// lost before reaching the target, not that the target is dead).
    pub fn restore_target(&mut self, target: NodeId) {
        if let Some(in_flight) = self.in_flight.take() {
            if in_flight.target == target {
                self.view.insert(in_flight.removed_target_entry);
            } else {
                self.in_flight = Some(in_flight);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> NodeId {
        NodeId::new(n)
    }

    fn node(n: u64) -> ShuffleNode {
        ShuffleNode::new(id(n), ShuffleConfig::new(8, 4), n)
    }

    #[test]
    fn bootstrap_skips_self() {
        let mut a = node(1);
        a.bootstrap([id(1), id(2), id(3)]);
        assert_eq!(a.view().len(), 2);
        assert!(!a.view().contains(id(1)));
    }

    #[test]
    fn initiate_on_empty_view_returns_none() {
        let mut a = node(1);
        assert!(a.initiate().is_none());
    }

    #[test]
    fn initiate_targets_oldest_and_removes_it() {
        let mut a = node(1);
        a.bootstrap([id(2)]);
        // Age id(2), then add a fresh id(3): id(2) is oldest.
        let _ = a.initiate(); // ages, targets 2, removes it
        // After initiate, 2 removed.
        assert!(!a.view().contains(id(2)));
    }

    #[test]
    fn request_carries_fresh_self_entry() {
        let mut a = node(1);
        a.bootstrap([id(2), id(3)]);
        let (_, msg) = a.initiate().unwrap();
        let ShuffleMessage::Request { entries } = msg else {
            panic!("expected request");
        };
        assert!(entries.iter().any(|e| e.id == id(1) && e.age == 0));
    }

    #[test]
    fn exchange_spreads_knowledge_both_ways() {
        let cfg = ShuffleConfig::new(8, 4);
        let mut a = ShuffleNode::new(id(1), cfg, 10);
        let mut b = ShuffleNode::new(id(2), cfg, 20);
        a.bootstrap([id(2)]);
        b.bootstrap([id(5), id(6)]);

        let (target, req) = a.initiate().unwrap();
        assert_eq!(target, id(2));
        // Give a some more context for the assertion below.
        a.bootstrap([id(3), id(4)]);
        let reply = b.handle_request(req);
        a.handle_reply(reply);

        // b learned about a.
        assert!(b.view().contains(id(1)));
        // a learned something from b's view.
        let knows_from_b = a.view().contains(id(5)) || a.view().contains(id(6));
        assert!(knows_from_b, "a's view: {:?}", a.view());
    }

    #[test]
    fn second_initiate_while_in_flight_is_noop() {
        let mut a = node(1);
        a.bootstrap([id(2), id(3)]);
        let first = a.initiate();
        assert!(first.is_some());
        assert!(a.initiate().is_none());
    }

    #[test]
    fn timeout_clears_in_flight_and_drops_dead_entry() {
        let mut a = node(1);
        a.bootstrap([id(2)]);
        let (target, _) = a.initiate().unwrap();
        a.handle_timeout(target);
        assert!(!a.view().contains(target));
        // Can initiate again (view empty now though).
        assert!(a.initiate().is_none());
    }

    #[test]
    fn restore_target_reinserts_entry() {
        let mut a = node(1);
        a.bootstrap([id(2)]);
        let (target, _) = a.initiate().unwrap();
        a.restore_target(target);
        assert!(a.view().contains(id(2)));
    }

    #[test]
    fn stray_reply_is_ignored() {
        let mut a = node(1);
        a.bootstrap([id(2)]);
        a.handle_reply(ShuffleMessage::Reply {
            entries: vec![ViewEntry::fresh(id(9))],
        });
        // No in-flight exchange: nothing merged.
        assert!(!a.view().contains(id(9)));
    }

    #[test]
    fn reset_clears_view() {
        let mut a = node(1);
        a.bootstrap([id(2), id(3)]);
        a.reset();
        assert!(a.view().is_empty());
    }

    #[test]
    #[should_panic(expected = "shuffle length")]
    fn invalid_config_panics() {
        let _ = ShuffleConfig::new(4, 5);
    }

    #[test]
    fn initiate_is_bit_identical_to_legacy_behavior() {
        // `initiate` is now propose + apply; pin it against a hand-rolled
        // copy of the pre-split algorithm (age everything, target the
        // oldest entry, remove it, sample the post-aging view, append a
        // fresh self-entry): same target, same wire entries, same view,
        // same rng consumption, for many seeds.
        for seed in 0..20u64 {
            let cfg = ShuffleConfig::new(8, 4);
            let mut node = ShuffleNode::new(id(1), cfg, seed);
            node.bootstrap((2..9).map(id));

            let mut legacy_view = node.view.clone();
            let mut legacy_rng = node.rng.clone();
            legacy_view.age_all();
            let target_entry = legacy_view.oldest().unwrap();
            legacy_view.remove(target_entry.id);
            let mut legacy_entries = legacy_view.random_subset(
                &mut legacy_rng,
                cfg.shuffle_length - 1,
                Some(target_entry.id),
            );
            legacy_entries.push(ViewEntry::fresh(id(1)));

            let (target, message) = node.initiate().unwrap();
            assert_eq!(target, target_entry.id, "seed {seed}");
            assert_eq!(
                message,
                ShuffleMessage::Request {
                    entries: legacy_entries
                },
                "seed {seed}"
            );
            assert_eq!(node.view, legacy_view, "seed {seed}");
            assert_eq!(node.rng, legacy_rng, "seed {seed}");
        }
    }

    #[test]
    fn propose_does_not_mutate_state() {
        let mut a = node(1);
        a.bootstrap([id(2), id(3), id(4)]);
        let before = a.view().clone();
        let mut rng = SplitMix64::new(99);
        let proposal = a.propose(&mut rng).unwrap();
        assert_eq!(*a.view(), before, "propose must be read-only");
        assert!(before.contains(proposal.target()));
        // Request carries a fresh self-entry last, like initiate's.
        assert_eq!(*proposal.entries().last().unwrap(), ViewEntry::fresh(id(1)));
    }

    #[test]
    fn propose_uses_post_aging_ages() {
        let mut a = node(1);
        a.bootstrap([id(2), id(3)]);
        let mut rng = SplitMix64::new(7);
        let proposal = a.propose(&mut rng).unwrap();
        for e in proposal.entries() {
            if e.id != id(1) {
                assert_eq!(e.age, 1, "sampled entries must reflect aging");
            }
        }
    }

    #[test]
    fn apply_sets_in_flight_until_resolved() {
        let mut a = node(1);
        a.bootstrap([id(2), id(3)]);
        let mut rng = SplitMix64::new(5);
        let proposal = a.propose(&mut rng).unwrap();
        a.apply(&proposal);
        assert!(a.propose(&mut rng).is_none(), "exchange is in flight");
        assert!(!a.view().contains(proposal.target()));
        a.handle_timeout(proposal.target());
        assert!(a.propose(&mut rng).is_some());
    }

    #[test]
    fn propose_on_empty_view_or_in_flight_consumes_no_randomness() {
        let mut rng = SplitMix64::new(11);
        let reference = rng.clone();
        let a = node(1);
        assert!(a.propose(&mut rng).is_none());
        assert_eq!(rng, reference, "refused propose must not draw");
    }

    #[test]
    #[should_panic(expected = "vanished from the view")]
    fn apply_against_a_changed_view_panics() {
        let mut a = node(1);
        a.bootstrap([id(2)]);
        let mut rng = SplitMix64::new(3);
        let proposal = a.propose(&mut rng).unwrap();
        a.view.remove(proposal.target());
        a.apply(&proposal);
    }
}
