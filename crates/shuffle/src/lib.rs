#![warn(missing_docs)]

//! Shuffling partial-membership substrate (the "coarse view").
//!
//! AVMEM's discovery sub-protocol (§3.1 of the paper) consumes "a
//! decentralized shuffling partial membership service, e.g., SCAMP,
//! CYCLON, T-MAN, LOCKSS": each node keeps a small, weakly consistent,
//! continuously *shuffled* list of random other nodes, so that any pair of
//! long-lived nodes eventually sees each other. The paper's implementation
//! reuses AVMON's coarse-view mechanism; ours is a faithful CYCLON-style
//! exchange (Voulgaris, Gavidia & van Steen, JNSM 2005):
//!
//! * every entry carries an **age**; each period a node contacts the
//!   *oldest* entry and swaps a small random subset of its view
//!   ([`ShuffleNode::initiate`] / [`ShuffleNode::handle_request`] /
//!   [`ShuffleNode::handle_reply`]);
//! * unresponsive targets are simply dropped (their entry was removed when
//!   the exchange started), which cleans dead nodes out of views;
//! * joining nodes bootstrap from any live seed.
//!
//! §3.1's optimality analysis picks the view size `v` to minimize
//! `v + N/v`, giving `v = O(√N)` — see [`optimal_view_size`].
//!
//! The state machines here are pure (no engine dependency): callers pass
//! messages between nodes however they like. [`sim::RoundSim`] is a
//! miniature synchronous driver used by the tests and the discovery-time
//! microbenchmarks.

pub mod node;
pub mod pool;
pub mod sim;
pub mod view;

pub use node::{ShuffleConfig, ShuffleMessage, ShuffleNode, ShuffleProposal};
pub use pool::EntryPool;
pub use view::{View, ViewEntry};

/// The view size minimizing memory/bandwidth vs discovery time, per the
/// paper's §3.1: `f(v) = v + N/v` is minimized at `v = √N`.
///
/// The result is at least 8, because tiny views make the exchange
/// degenerate in very small systems.
///
/// # Examples
///
/// ```
/// use avmem_shuffle::optimal_view_size;
///
/// assert_eq!(optimal_view_size(100_000), 316);
/// assert_eq!(optimal_view_size(1442), 37);
/// assert_eq!(optimal_view_size(4), 8); // floor for tiny systems
/// ```
pub fn optimal_view_size(n: usize) -> usize {
    ((n as f64).sqrt().floor() as usize).max(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_view_size_is_sqrt_n() {
        assert_eq!(optimal_view_size(10_000), 100);
        assert_eq!(optimal_view_size(1_000_000), 1000);
    }

    #[test]
    fn optimal_view_size_has_floor() {
        assert_eq!(optimal_view_size(1), 8);
        assert_eq!(optimal_view_size(63), 8);
        assert_eq!(optimal_view_size(82), 9);
    }
}
