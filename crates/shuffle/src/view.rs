//! The partial view data structure.
//!
//! A [`View`] is a bounded set of [`ViewEntry`]s (node id + age) with the
//! merge semantics CYCLON needs: no duplicates (keep the younger entry),
//! bounded capacity with a controllable replacement order, and age-based
//! selection of the exchange target.
//!
//! # Storage
//!
//! Entries are stored struct-of-arrays (`ids: Vec<u32>`, `ages: Vec<u32>`)
//! rather than as `Vec<ViewEntry>`: 8 bytes per slot instead of 16, and
//! the arrays grow lazily instead of eagerly reserving `capacity` slots.
//! At 10⁶ hosts with √N-sized views this halves the dominant term of the
//! resident set. The id arrays hold **index-space ids** — views are the
//! harness's per-node neighbor slots, where ids are dense indexes `< N`;
//! inserting an id above `u32::MAX` panics.

use avmem_util::{NodeId, Rng};
use serde::{Deserialize, Serialize};

/// One entry of a partial view: a node and the entry's age in protocol
/// periods (freshness indicator — *not* the node's uptime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewEntry {
    /// The referenced node.
    pub id: NodeId,
    /// Age in protocol periods since this entry was created.
    pub age: u32,
}

impl ViewEntry {
    /// Creates a fresh (age 0) entry.
    pub fn fresh(id: NodeId) -> Self {
        ViewEntry { id, age: 0 }
    }
}

#[inline]
fn packed(id: NodeId) -> u32 {
    u32::try_from(id.raw()).expect("view ids are index-space (must fit u32)")
}

/// A bounded partial view of the system.
///
/// # Examples
///
/// ```
/// use avmem_shuffle::{View, ViewEntry};
/// use avmem_util::NodeId;
///
/// let mut view = View::new(3);
/// view.insert(ViewEntry::fresh(NodeId::new(1)));
/// view.insert(ViewEntry { id: NodeId::new(2), age: 5 });
/// assert_eq!(view.len(), 2);
/// assert_eq!(view.oldest().unwrap().id, NodeId::new(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    ids: Vec<u32>,
    ages: Vec<u32>,
    capacity: u32,
}

impl View {
    /// Creates an empty view with the given capacity.
    ///
    /// Slots are allocated lazily as entries arrive — a fresh view costs
    /// no heap at all, which matters when most of a million bootstrap
    /// views stay far below capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        View {
            ids: Vec::new(),
            ages: Vec::new(),
            capacity: u32::try_from(capacity).expect("view capacity fits u32"),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    #[inline]
    fn entry(&self, pos: usize) -> ViewEntry {
        ViewEntry {
            id: NodeId::new(u64::from(self.ids[pos])),
            age: self.ages[pos],
        }
    }

    /// Iterates over the entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = ViewEntry> + '_ {
        self.ids
            .iter()
            .zip(self.ages.iter())
            .map(|(&id, &age)| ViewEntry {
                id: NodeId::new(u64::from(id)),
                age,
            })
    }

    /// Returns the ids currently in the view.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ids.iter().map(|&id| NodeId::new(u64::from(id)))
    }

    /// Whether `id` appears in the view.
    pub fn contains(&self, id: NodeId) -> bool {
        match u32::try_from(id.raw()) {
            Ok(raw) => self.ids.contains(&raw),
            Err(_) => false,
        }
    }

    /// Increments every entry's age by one period.
    pub fn age_all(&mut self) {
        for age in &mut self.ages {
            *age = age.saturating_add(1);
        }
    }

    /// The entry with the largest age, if any (ties resolve as
    /// `max_by_key` does, to the last such entry).
    pub fn oldest(&self) -> Option<ViewEntry> {
        (0..self.ids.len())
            .map(|pos| self.entry(pos))
            .max_by_key(|e| e.age)
    }

    /// Removes and returns the entry for `id`, if present.
    pub fn remove(&mut self, id: NodeId) -> Option<ViewEntry> {
        let raw = u32::try_from(id.raw()).ok()?;
        let pos = self.ids.iter().position(|&e| e == raw)?;
        let entry = self.entry(pos);
        self.ids.remove(pos);
        self.ages.remove(pos);
        Some(entry)
    }

    /// Inserts an entry. If `id` is already present the younger age wins.
    /// If the view is full the entry is dropped (use [`View::merge`] for
    /// CYCLON's replacement semantics). Returns whether the entry is now
    /// present with the given (or younger) age.
    pub fn insert(&mut self, entry: ViewEntry) -> bool {
        let raw = packed(entry.id);
        if let Some(pos) = self.ids.iter().position(|&e| e == raw) {
            self.ages[pos] = self.ages[pos].min(entry.age);
            return true;
        }
        if self.ids.len() < self.capacity as usize {
            self.ids.push(raw);
            self.ages.push(entry.age);
            true
        } else {
            false
        }
    }

    /// Selects up to `k` random entries (without replacement), excluding
    /// `exclude` if given.
    pub fn random_subset<R: Rng>(
        &self,
        rng: &mut R,
        k: usize,
        exclude: Option<NodeId>,
    ) -> Vec<ViewEntry> {
        rng.sample(self.iter().filter(|e| Some(e.id) != exclude), k)
    }

    /// [`View::random_subset`] into a caller-provided buffer — draw-for-
    /// draw identical to the allocating form (see [`Rng::sample_into`]).
    pub fn random_subset_into<R: Rng>(
        &self,
        rng: &mut R,
        k: usize,
        exclude: Option<NodeId>,
        out: &mut Vec<ViewEntry>,
    ) {
        rng.sample_into(self.iter().filter(|e| Some(e.id) != exclude), k, out);
    }

    /// CYCLON merge: incorporate `received` entries, preferring to fill
    /// empty slots, then to replace the entries in `sent` (the ones we
    /// shipped to the peer), and finally — if the view is somehow still
    /// full — replacing the oldest entries.
    ///
    /// Entries for `self_id` and duplicates are skipped (younger age
    /// wins on duplicates). Allocation-free: sent-entry victims are
    /// consumed back-to-front straight from `sent`.
    pub fn merge(&mut self, self_id: NodeId, received: &[ViewEntry], sent: &[ViewEntry]) {
        // Cursor over `sent`, consumed from the end — same victim order
        // as the old `replaceable: Vec<NodeId>` + `pop()` scheme.
        let mut next_victim = sent.len();
        for &entry in received {
            if entry.id == self_id {
                continue;
            }
            let raw = packed(entry.id);
            if let Some(pos) = self.ids.iter().position(|&e| e == raw) {
                self.ages[pos] = self.ages[pos].min(entry.age);
                continue;
            }
            if self.ids.len() < self.capacity as usize {
                self.ids.push(raw);
                self.ages.push(entry.age);
                continue;
            }
            // Replace one of the entries we sent away, if still present.
            let mut replaced = false;
            while next_victim > 0 {
                next_victim -= 1;
                let victim = packed(sent[next_victim].id);
                if let Some(pos) = self.ids.iter().position(|&e| e == victim) {
                    self.ids[pos] = raw;
                    self.ages[pos] = entry.age;
                    replaced = true;
                    break;
                }
            }
            if !replaced {
                // Last resort: replace the oldest entry.
                if let Some(pos) = self
                    .ages
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &age)| age)
                    .map(|(pos, _)| pos)
                {
                    if self.ages[pos] >= entry.age {
                        self.ids[pos] = raw;
                        self.ages[pos] = entry.age;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_util::Xoshiro256;

    fn id(n: u64) -> NodeId {
        NodeId::new(n)
    }

    #[test]
    fn insert_deduplicates_keeping_younger() {
        let mut v = View::new(4);
        v.insert(ViewEntry { id: id(1), age: 9 });
        v.insert(ViewEntry { id: id(1), age: 2 });
        assert_eq!(v.len(), 1);
        assert_eq!(v.oldest().unwrap().age, 2);
    }

    #[test]
    fn insert_respects_capacity() {
        let mut v = View::new(2);
        assert!(v.insert(ViewEntry::fresh(id(1))));
        assert!(v.insert(ViewEntry::fresh(id(2))));
        assert!(!v.insert(ViewEntry::fresh(id(3))));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn oldest_picks_max_age() {
        let mut v = View::new(4);
        v.insert(ViewEntry { id: id(1), age: 3 });
        v.insert(ViewEntry { id: id(2), age: 7 });
        v.insert(ViewEntry { id: id(3), age: 5 });
        assert_eq!(v.oldest().unwrap().id, id(2));
    }

    #[test]
    fn age_all_increments() {
        let mut v = View::new(4);
        v.insert(ViewEntry { id: id(1), age: 0 });
        v.age_all();
        v.age_all();
        assert_eq!(v.iter().next().unwrap().age, 2);
    }

    #[test]
    fn remove_returns_entry() {
        let mut v = View::new(4);
        v.insert(ViewEntry { id: id(1), age: 4 });
        let removed = v.remove(id(1)).unwrap();
        assert_eq!(removed.age, 4);
        assert!(v.is_empty());
        assert!(v.remove(id(1)).is_none());
    }

    #[test]
    fn random_subset_excludes_and_bounds() {
        let mut v = View::new(10);
        for n in 0..10 {
            v.insert(ViewEntry::fresh(id(n)));
        }
        let mut rng = Xoshiro256::new(1);
        let subset = v.random_subset(&mut rng, 4, Some(id(3)));
        assert_eq!(subset.len(), 4);
        assert!(subset.iter().all(|e| e.id != id(3)));
    }

    #[test]
    fn random_subset_into_matches_allocating_form() {
        let mut v = View::new(10);
        for n in 0..10 {
            v.insert(ViewEntry { id: id(n), age: n as u32 });
        }
        let mut a = Xoshiro256::new(5);
        let mut b = Xoshiro256::new(5);
        let allocated = v.random_subset(&mut a, 4, Some(id(2)));
        let mut pooled = vec![ViewEntry::fresh(id(99)); 7];
        v.random_subset_into(&mut b, 4, Some(id(2)), &mut pooled);
        assert_eq!(allocated, pooled);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn merge_fills_empty_slots_first() {
        let mut v = View::new(4);
        v.insert(ViewEntry::fresh(id(1)));
        v.merge(id(0), &[ViewEntry::fresh(id(2)), ViewEntry::fresh(id(3))], &[]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn merge_skips_self_and_duplicates() {
        let mut v = View::new(4);
        v.insert(ViewEntry { id: id(1), age: 5 });
        v.merge(
            id(0),
            &[ViewEntry::fresh(id(0)), ViewEntry { id: id(1), age: 1 }],
            &[],
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v.oldest().unwrap().age, 1); // younger duplicate won
        assert!(!v.contains(id(0)));
    }

    #[test]
    fn merge_replaces_sent_entries_when_full() {
        let mut v = View::new(2);
        v.insert(ViewEntry::fresh(id(1)));
        v.insert(ViewEntry::fresh(id(2)));
        let sent = vec![ViewEntry::fresh(id(1))];
        v.merge(id(0), &[ViewEntry::fresh(id(9))], &sent);
        assert!(v.contains(id(9)));
        assert!(!v.contains(id(1)));
        assert!(v.contains(id(2)));
    }

    #[test]
    fn merge_full_view_replaces_oldest_as_last_resort() {
        let mut v = View::new(2);
        v.insert(ViewEntry { id: id(1), age: 9 });
        v.insert(ViewEntry { id: id(2), age: 1 });
        v.merge(id(0), &[ViewEntry::fresh(id(9))], &[]);
        assert!(v.contains(id(9)));
        assert!(!v.contains(id(1))); // oldest evicted
        assert!(v.contains(id(2)));
    }

    #[test]
    fn merge_keeps_newer_resident_over_older_incoming() {
        let mut v = View::new(1);
        v.insert(ViewEntry { id: id(1), age: 0 });
        v.merge(id(0), &[ViewEntry { id: id(9), age: 8 }], &[]);
        // Resident entry is younger than the incoming one; keep it.
        assert!(v.contains(id(1)));
        assert!(!v.contains(id(9)));
    }

    #[test]
    fn fresh_views_hold_no_heap() {
        let v = View::new(1000);
        assert_eq!(v.capacity(), 1000);
        assert_eq!(v.len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = View::new(0);
    }
}
