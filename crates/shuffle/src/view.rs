//! The partial view data structure.
//!
//! A [`View`] is a bounded set of [`ViewEntry`]s (node id + age) with the
//! merge semantics CYCLON needs: no duplicates (keep the younger entry),
//! bounded capacity with a controllable replacement order, and age-based
//! selection of the exchange target.

use avmem_util::{NodeId, Rng};
use serde::{Deserialize, Serialize};

/// One entry of a partial view: a node and the entry's age in protocol
/// periods (freshness indicator — *not* the node's uptime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewEntry {
    /// The referenced node.
    pub id: NodeId,
    /// Age in protocol periods since this entry was created.
    pub age: u32,
}

impl ViewEntry {
    /// Creates a fresh (age 0) entry.
    pub fn fresh(id: NodeId) -> Self {
        ViewEntry { id, age: 0 }
    }
}

/// A bounded partial view of the system.
///
/// # Examples
///
/// ```
/// use avmem_shuffle::{View, ViewEntry};
/// use avmem_util::NodeId;
///
/// let mut view = View::new(3);
/// view.insert(ViewEntry::fresh(NodeId::new(1)));
/// view.insert(ViewEntry { id: NodeId::new(2), age: 5 });
/// assert_eq!(view.len(), 2);
/// assert_eq!(view.oldest().unwrap().id, NodeId::new(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    entries: Vec<ViewEntry>,
    capacity: usize,
}

impl View {
    /// Creates an empty view with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        View {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &ViewEntry> + '_ {
        self.entries.iter()
    }

    /// Returns the ids currently in the view.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.id)
    }

    /// Whether `id` appears in the view.
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Increments every entry's age by one period.
    pub fn age_all(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// The entry with the largest age (ties: first inserted), if any.
    pub fn oldest(&self) -> Option<ViewEntry> {
        self.entries.iter().copied().max_by_key(|e| e.age)
    }

    /// Removes and returns the entry for `id`, if present.
    pub fn remove(&mut self, id: NodeId) -> Option<ViewEntry> {
        let pos = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.remove(pos))
    }

    /// Inserts an entry. If `id` is already present the younger age wins.
    /// If the view is full the entry is dropped (use [`View::merge`] for
    /// CYCLON's replacement semantics). Returns whether the entry is now
    /// present with the given (or younger) age.
    pub fn insert(&mut self, entry: ViewEntry) -> bool {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.id == entry.id) {
            existing.age = existing.age.min(entry.age);
            return true;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            true
        } else {
            false
        }
    }

    /// Selects up to `k` random entries (without replacement), excluding
    /// `exclude` if given.
    pub fn random_subset<R: Rng>(
        &self,
        rng: &mut R,
        k: usize,
        exclude: Option<NodeId>,
    ) -> Vec<ViewEntry> {
        rng.sample(
            self.entries
                .iter()
                .copied()
                .filter(|e| Some(e.id) != exclude),
            k,
        )
    }

    /// CYCLON merge: incorporate `received` entries, preferring to fill
    /// empty slots, then to replace the entries in `sent` (the ones we
    /// shipped to the peer), and finally — if the view is somehow still
    /// full — replacing the oldest entries.
    ///
    /// Entries for `self_id` and duplicates are skipped (younger age
    /// wins on duplicates).
    pub fn merge(&mut self, self_id: NodeId, received: &[ViewEntry], sent: &[ViewEntry]) {
        let mut replaceable: Vec<NodeId> = sent.iter().map(|e| e.id).collect();
        for &entry in received {
            if entry.id == self_id {
                continue;
            }
            if let Some(existing) = self.entries.iter_mut().find(|e| e.id == entry.id) {
                existing.age = existing.age.min(entry.age);
                continue;
            }
            if self.entries.len() < self.capacity {
                self.entries.push(entry);
                continue;
            }
            // Replace one of the entries we sent away, if still present.
            let replaced = loop {
                match replaceable.pop() {
                    Some(victim) => {
                        if let Some(pos) = self.entries.iter().position(|e| e.id == victim) {
                            self.entries[pos] = entry;
                            break true;
                        }
                    }
                    None => break false,
                }
            };
            if !replaced {
                // Last resort: replace the oldest entry.
                if let Some(pos) = self
                    .entries
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, e)| e.age)
                    .map(|(i, _)| i)
                {
                    if self.entries[pos].age >= entry.age {
                        self.entries[pos] = entry;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_util::Xoshiro256;

    fn id(n: u64) -> NodeId {
        NodeId::new(n)
    }

    #[test]
    fn insert_deduplicates_keeping_younger() {
        let mut v = View::new(4);
        v.insert(ViewEntry { id: id(1), age: 9 });
        v.insert(ViewEntry { id: id(1), age: 2 });
        assert_eq!(v.len(), 1);
        assert_eq!(v.oldest().unwrap().age, 2);
    }

    #[test]
    fn insert_respects_capacity() {
        let mut v = View::new(2);
        assert!(v.insert(ViewEntry::fresh(id(1))));
        assert!(v.insert(ViewEntry::fresh(id(2))));
        assert!(!v.insert(ViewEntry::fresh(id(3))));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn oldest_picks_max_age() {
        let mut v = View::new(4);
        v.insert(ViewEntry { id: id(1), age: 3 });
        v.insert(ViewEntry { id: id(2), age: 7 });
        v.insert(ViewEntry { id: id(3), age: 5 });
        assert_eq!(v.oldest().unwrap().id, id(2));
    }

    #[test]
    fn age_all_increments() {
        let mut v = View::new(4);
        v.insert(ViewEntry { id: id(1), age: 0 });
        v.age_all();
        v.age_all();
        assert_eq!(v.iter().next().unwrap().age, 2);
    }

    #[test]
    fn remove_returns_entry() {
        let mut v = View::new(4);
        v.insert(ViewEntry { id: id(1), age: 4 });
        let removed = v.remove(id(1)).unwrap();
        assert_eq!(removed.age, 4);
        assert!(v.is_empty());
        assert!(v.remove(id(1)).is_none());
    }

    #[test]
    fn random_subset_excludes_and_bounds() {
        let mut v = View::new(10);
        for n in 0..10 {
            v.insert(ViewEntry::fresh(id(n)));
        }
        let mut rng = Xoshiro256::new(1);
        let subset = v.random_subset(&mut rng, 4, Some(id(3)));
        assert_eq!(subset.len(), 4);
        assert!(subset.iter().all(|e| e.id != id(3)));
    }

    #[test]
    fn merge_fills_empty_slots_first() {
        let mut v = View::new(4);
        v.insert(ViewEntry::fresh(id(1)));
        v.merge(id(0), &[ViewEntry::fresh(id(2)), ViewEntry::fresh(id(3))], &[]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn merge_skips_self_and_duplicates() {
        let mut v = View::new(4);
        v.insert(ViewEntry { id: id(1), age: 5 });
        v.merge(
            id(0),
            &[ViewEntry::fresh(id(0)), ViewEntry { id: id(1), age: 1 }],
            &[],
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v.oldest().unwrap().age, 1); // younger duplicate won
        assert!(!v.contains(id(0)));
    }

    #[test]
    fn merge_replaces_sent_entries_when_full() {
        let mut v = View::new(2);
        v.insert(ViewEntry::fresh(id(1)));
        v.insert(ViewEntry::fresh(id(2)));
        let sent = vec![ViewEntry::fresh(id(1))];
        v.merge(id(0), &[ViewEntry::fresh(id(9))], &sent);
        assert!(v.contains(id(9)));
        assert!(!v.contains(id(1)));
        assert!(v.contains(id(2)));
    }

    #[test]
    fn merge_full_view_replaces_oldest_as_last_resort() {
        let mut v = View::new(2);
        v.insert(ViewEntry { id: id(1), age: 9 });
        v.insert(ViewEntry { id: id(2), age: 1 });
        v.merge(id(0), &[ViewEntry::fresh(id(9))], &[]);
        assert!(v.contains(id(9)));
        assert!(!v.contains(id(1))); // oldest evicted
        assert!(v.contains(id(2)));
    }

    #[test]
    fn merge_keeps_newer_resident_over_older_incoming() {
        let mut v = View::new(1);
        v.insert(ViewEntry { id: id(1), age: 0 });
        v.merge(id(0), &[ViewEntry { id: id(9), age: 8 }], &[]);
        // Resident entry is younger than the incoming one; keep it.
        assert!(v.contains(id(1)));
        assert!(!v.contains(id(9)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = View::new(0);
    }
}
