//! A miniature synchronous driver for the shuffle protocol.
//!
//! [`RoundSim`] runs a population of [`ShuffleNode`]s in lock-step rounds
//! with instant message delivery. It exists for tests and for the
//! discovery-time microbenchmarks of §3.1 (expected appearance time of a
//! given node in another's view is `O(N/v)` periods); the full AVMEM
//! system simulation in the `avmem` crate drives the same state machines
//! through the discrete-event engine instead.

use avmem_util::{NodeId, Rng, SplitMix64};

use crate::node::{ShuffleConfig, ShuffleNode};

/// A synchronous, round-based shuffle simulation.
///
/// # Examples
///
/// ```
/// use avmem_shuffle::{sim::RoundSim, ShuffleConfig};
///
/// let mut sim = RoundSim::new(50, ShuffleConfig::new(8, 4), 7);
/// sim.run_rounds(20);
/// // After some rounds every view is full.
/// assert!(sim.nodes().iter().all(|n| n.view().len() == 8));
/// ```
#[derive(Debug)]
pub struct RoundSim {
    nodes: Vec<ShuffleNode>,
    online: Vec<bool>,
    rng: SplitMix64,
    rounds: u64,
}

impl RoundSim {
    /// Creates `n` nodes, each bootstrapped with a few random seeds (a
    /// connected bootstrap graph: node `i` knows `i+1 mod n` plus two
    /// random peers).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, config: ShuffleConfig, seed: u64) -> Self {
        assert!(n >= 2, "simulation needs at least two nodes");
        let mut master = SplitMix64::new(seed);
        let mut nodes: Vec<ShuffleNode> = (0..n)
            .map(|i| ShuffleNode::new(NodeId::new(i as u64), config, master.fork(i as u64).next_u64()))
            .collect();
        let mut boot_rng = master.fork(u64::MAX);
        for (i, node) in nodes.iter_mut().enumerate() {
            let ring_next = NodeId::new(((i + 1) % n) as u64);
            let r1 = NodeId::new(boot_rng.range_u64(n as u64));
            let r2 = NodeId::new(boot_rng.range_u64(n as u64));
            node.bootstrap([ring_next, r1, r2]);
        }
        RoundSim {
            nodes,
            online: vec![true; n],
            rng: master,
            rounds: 0,
        }
    }

    /// The nodes (indexed by their dense id).
    pub fn nodes(&self) -> &[ShuffleNode] {
        &self.nodes
    }

    /// Number of rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Marks node `i` online or offline. Offline nodes neither initiate
    /// nor answer exchanges; coming back online keeps the stale view (the
    /// protocol self-cleans it).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_online(&mut self, i: usize, online: bool) {
        self.online[i] = online;
    }

    /// Whether node `i` is online.
    pub fn is_online(&self, i: usize) -> bool {
        self.online[i]
    }

    /// Runs one synchronous round: every online node initiates one
    /// exchange; requests to offline targets time out.
    pub fn run_round(&mut self) {
        self.rounds += 1;
        // Randomize initiation order each round to avoid systematic bias.
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        self.rng.shuffle(&mut order);
        for i in order {
            if !self.online[i] {
                continue;
            }
            let Some((target, request)) = self.nodes[i].initiate() else {
                continue;
            };
            let t = target.raw() as usize;
            if t >= self.nodes.len() || !self.online[t] {
                self.nodes[i].handle_timeout(target);
                continue;
            }
            let reply = self.nodes[t].handle_request(request);
            self.nodes[i].handle_reply(reply);
        }
    }

    /// Runs `k` rounds.
    pub fn run_rounds(&mut self, k: usize) {
        for _ in 0..k {
            self.run_round();
        }
    }

    /// Rounds until `observer`'s view contains `subject`, starting from
    /// the current state, up to `max_rounds`. Returns `None` on timeout.
    pub fn rounds_until_seen(
        &mut self,
        observer: usize,
        subject: NodeId,
        max_rounds: usize,
    ) -> Option<usize> {
        for k in 0..max_rounds {
            if self.nodes[observer].view().contains(subject) {
                return Some(k);
            }
            self.run_round();
        }
        if self.nodes[observer].view().contains(subject) {
            Some(max_rounds)
        } else {
            None
        }
    }

    /// In-degree of each node: how many other views reference it.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut degrees = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for entry in node.view().iter() {
                let idx = entry.id.raw() as usize;
                if idx < degrees.len() {
                    degrees[idx] += 1;
                }
            }
        }
        degrees
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_fill_up() {
        let mut sim = RoundSim::new(64, ShuffleConfig::new(8, 4), 3);
        sim.run_rounds(30);
        assert!(sim.nodes().iter().all(|n| n.view().len() == 8));
    }

    #[test]
    fn views_keep_changing() {
        // Shuffling means a node's view k rounds apart should differ.
        let mut sim = RoundSim::new(100, ShuffleConfig::new(8, 4), 5);
        sim.run_rounds(20);
        let before: Vec<NodeId> = sim.nodes()[0].view().ids().collect();
        sim.run_rounds(20);
        let after: Vec<NodeId> = sim.nodes()[0].view().ids().collect();
        assert_ne!(before, after, "view did not shuffle");
    }

    #[test]
    fn in_degree_concentration_is_bounded() {
        // CYCLON keeps in-degrees balanced; no node should dominate.
        let mut sim = RoundSim::new(100, ShuffleConfig::new(10, 5), 7);
        sim.run_rounds(50);
        let degrees = sim.in_degrees();
        let max = *degrees.iter().max().unwrap();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(
            (max as f64) < mean * 5.0,
            "max in-degree {max} too far above mean {mean}"
        );
    }

    #[test]
    fn eventually_discovers_any_node() {
        let mut sim = RoundSim::new(60, ShuffleConfig::new(8, 4), 11);
        sim.run_rounds(5);
        // Pick a subject not currently in observer's view.
        let observer = 0;
        let subject = (1..60)
            .map(|i| NodeId::new(i as u64))
            .find(|&s| !sim.nodes()[observer].view().contains(s))
            .expect("some node is unknown");
        let rounds = sim.rounds_until_seen(observer, subject, 2000);
        assert!(rounds.is_some(), "subject never discovered");
    }

    #[test]
    fn offline_nodes_drain_from_views() {
        let mut sim = RoundSim::new(50, ShuffleConfig::new(8, 4), 13);
        sim.run_rounds(20);
        sim.set_online(7, false);
        sim.run_rounds(60);
        let references: usize = sim
            .nodes()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 7 && sim.is_online(i))
            .map(|(_, n)| usize::from(n.view().contains(NodeId::new(7))))
            .sum();
        // Self-cleaning: hardly anyone still references the dead node.
        assert!(references <= 5, "{references} stale references remain");
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_sim_panics() {
        let _ = RoundSim::new(1, ShuffleConfig::new(4, 2), 0);
    }
}
