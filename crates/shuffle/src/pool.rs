//! A free-list of recycled entry buffers.
//!
//! Every shuffle exchange allocates a handful of short `Vec<ViewEntry>`s
//! (request entries, reply subset, in-flight bookkeeping). At harness
//! scale that is four to five allocations per exchange × millions of
//! exchanges per run. An [`EntryPool`] is a trivial free-list the batch
//! driver owns per shard: buffers are taken, filled, shipped through a
//! [`ShuffleMessage`](crate::ShuffleMessage), and recycled once the
//! exchange settles — cleared and reused, never freed.
//!
//! Pooling is invisible to determinism: `Vec` equality ignores capacity,
//! and the pooled fill paths (`Rng::sample_into`-based) consume the
//! generator draw-for-draw like their allocating twins.

use crate::view::ViewEntry;

/// Free-list of `Vec<ViewEntry>` buffers; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct EntryPool {
    free: Vec<Vec<ViewEntry>>,
}

impl EntryPool {
    /// An empty pool.
    pub fn new() -> EntryPool {
        EntryPool::default()
    }

    /// Takes a cleared buffer from the pool, or allocates one with the
    /// requested capacity if the pool is dry.
    pub fn take(&mut self, capacity: usize) -> Vec<ViewEntry> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Returns a buffer to the pool. Zero-capacity buffers are dropped
    /// (nothing to reuse).
    pub fn recycle(&mut self, mut buf: Vec<ViewEntry>) {
        if buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Buffers currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.free.len()
    }

    /// Drops every parked buffer. Semantically a no-op for users of the
    /// pool — only the reuse is lost.
    pub fn reset(&mut self) {
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_util::NodeId;

    #[test]
    fn take_recycle_round_trips_cleared() {
        let mut pool = EntryPool::new();
        let mut buf = pool.take(4);
        buf.push(ViewEntry::fresh(NodeId::new(7)));
        pool.recycle(buf);
        assert_eq!(pool.parked(), 1);
        let reused = pool.take(4);
        assert!(reused.is_empty(), "recycled buffers come back cleared");
        assert!(reused.capacity() >= 1);
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn zero_capacity_buffers_are_not_parked() {
        let mut pool = EntryPool::new();
        pool.recycle(Vec::new());
        assert_eq!(pool.parked(), 0);
    }
}
