//! Property-based tests for the shuffle substrate's invariants.

use proptest::prelude::*;

use avmem_shuffle::{sim::RoundSim, ShuffleConfig, ShuffleMessage, ShuffleNode, View, ViewEntry};
use avmem_util::NodeId;

proptest! {
    #[test]
    fn view_never_exceeds_capacity(
        capacity in 1usize..16,
        inserts in proptest::collection::vec((any::<u64>(), 0u32..100), 0..64),
    ) {
        let mut view = View::new(capacity);
        for (id, age) in inserts {
            view.insert(ViewEntry { id: NodeId::new(id), age });
            prop_assert!(view.len() <= capacity);
        }
    }

    #[test]
    fn view_never_holds_duplicates(
        capacity in 1usize..16,
        inserts in proptest::collection::vec((0u64..8, 0u32..100), 0..64),
    ) {
        let mut view = View::new(capacity);
        for (id, age) in inserts {
            view.insert(ViewEntry { id: NodeId::new(id), age });
        }
        let mut ids: Vec<u64> = view.ids().map(|i| i.raw()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before);
    }

    #[test]
    fn merge_never_introduces_self_or_overflows(
        capacity in 1usize..12,
        resident in proptest::collection::vec(0u64..20, 0..12),
        incoming in proptest::collection::vec((0u64..20, 0u32..50), 0..24),
    ) {
        let me = NodeId::new(99);
        let mut view = View::new(capacity);
        for id in resident {
            view.insert(ViewEntry::fresh(NodeId::new(id)));
        }
        let entries: Vec<ViewEntry> = incoming
            .into_iter()
            .map(|(id, age)| ViewEntry { id: NodeId::new(id), age })
            .collect();
        view.merge(me, &entries, &[]);
        prop_assert!(view.len() <= capacity);
        prop_assert!(!view.contains(me));
    }

    #[test]
    fn exchange_preserves_population_invariants(seed in any::<u64>(), n in 2usize..40) {
        // After arbitrary rounds, no view contains its owner or exceeds
        // its capacity, and every referenced id is a real node.
        let mut sim = RoundSim::new(n, ShuffleConfig::new(6.min(n), 3.min(n)), seed);
        sim.run_rounds(15);
        for (i, node) in sim.nodes().iter().enumerate() {
            prop_assert!(node.view().len() <= 6.min(n));
            prop_assert!(!node.view().contains(NodeId::new(i as u64)));
            for entry in node.view().iter() {
                prop_assert!((entry.id.raw() as usize) < n);
            }
        }
    }

    #[test]
    fn request_always_carries_fresh_self(seed in any::<u64>(), peers in 1u64..10) {
        let cfg = ShuffleConfig::new(8, 4);
        let mut node = ShuffleNode::new(NodeId::new(0), cfg, seed);
        node.bootstrap((1..=peers).map(NodeId::new));
        if let Some((_, ShuffleMessage::Request { entries })) = node.initiate() {
            prop_assert!(entries.iter().any(|e| e.id == NodeId::new(0) && e.age == 0));
            prop_assert!(entries.len() <= 4);
        }
    }

    #[test]
    fn handle_request_reply_is_bounded(seed in any::<u64>(), peers in 0u64..12) {
        let cfg = ShuffleConfig::new(8, 4);
        let mut a = ShuffleNode::new(NodeId::new(0), cfg, seed);
        let mut b = ShuffleNode::new(NodeId::new(1), cfg, seed.wrapping_add(1));
        a.bootstrap([NodeId::new(1)]);
        b.bootstrap((2..2 + peers).map(NodeId::new));
        if let Some((_, request)) = a.initiate() {
            let ShuffleMessage::Reply { entries } = b.handle_request(request) else {
                panic!("expected reply");
            };
            prop_assert!(entries.len() <= 4);
            a.handle_reply(ShuffleMessage::Reply { entries });
            prop_assert!(a.view().len() <= 8);
            prop_assert!(!a.view().contains(NodeId::new(0)));
        }
    }
}
