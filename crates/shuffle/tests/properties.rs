//! Property-based tests for the shuffle substrate's invariants.

use proptest::prelude::*;

use avmem_shuffle::{
    sim::RoundSim, EntryPool, ShuffleConfig, ShuffleMessage, ShuffleNode, View, ViewEntry,
};
use avmem_util::{NodeId, SplitMix64};

proptest! {
    #[test]
    fn view_never_exceeds_capacity(
        capacity in 1usize..16,
        // View ids are index-space: u32 by contract.
        inserts in proptest::collection::vec((any::<u32>().prop_map(u64::from), 0u32..100), 0..64),
    ) {
        let mut view = View::new(capacity);
        for (id, age) in inserts {
            view.insert(ViewEntry { id: NodeId::new(id), age });
            prop_assert!(view.len() <= capacity);
        }
    }

    #[test]
    fn view_never_holds_duplicates(
        capacity in 1usize..16,
        inserts in proptest::collection::vec((0u64..8, 0u32..100), 0..64),
    ) {
        let mut view = View::new(capacity);
        for (id, age) in inserts {
            view.insert(ViewEntry { id: NodeId::new(id), age });
        }
        let mut ids: Vec<u64> = view.ids().map(|i| i.raw()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before);
    }

    #[test]
    fn merge_never_introduces_self_or_overflows(
        capacity in 1usize..12,
        resident in proptest::collection::vec(0u64..20, 0..12),
        incoming in proptest::collection::vec((0u64..20, 0u32..50), 0..24),
    ) {
        let me = NodeId::new(99);
        let mut view = View::new(capacity);
        for id in resident {
            view.insert(ViewEntry::fresh(NodeId::new(id)));
        }
        let entries: Vec<ViewEntry> = incoming
            .into_iter()
            .map(|(id, age)| ViewEntry { id: NodeId::new(id), age })
            .collect();
        view.merge(me, &entries, &[]);
        prop_assert!(view.len() <= capacity);
        prop_assert!(!view.contains(me));
    }

    #[test]
    fn exchange_preserves_population_invariants(seed in any::<u64>(), n in 2usize..40) {
        // After arbitrary rounds, no view contains its owner or exceeds
        // its capacity, and every referenced id is a real node.
        let mut sim = RoundSim::new(n, ShuffleConfig::new(6.min(n), 3.min(n)), seed);
        sim.run_rounds(15);
        for (i, node) in sim.nodes().iter().enumerate() {
            prop_assert!(node.view().len() <= 6.min(n));
            prop_assert!(!node.view().contains(NodeId::new(i as u64)));
            for entry in node.view().iter() {
                prop_assert!((entry.id.raw() as usize) < n);
            }
        }
    }

    #[test]
    fn request_always_carries_fresh_self(seed in any::<u64>(), peers in 1u64..10) {
        let cfg = ShuffleConfig::new(8, 4);
        let mut node = ShuffleNode::new(NodeId::new(0), cfg, seed);
        node.bootstrap((1..=peers).map(NodeId::new));
        if let Some((_, ShuffleMessage::Request { entries })) = node.initiate() {
            prop_assert!(entries.iter().any(|e| e.id == NodeId::new(0) && e.age == 0));
            prop_assert!(entries.len() <= 4);
        }
    }

    #[test]
    fn handle_request_reply_is_bounded(seed in any::<u64>(), peers in 0u64..12) {
        let cfg = ShuffleConfig::new(8, 4);
        let mut a = ShuffleNode::new(NodeId::new(0), cfg, seed);
        let mut b = ShuffleNode::new(NodeId::new(1), cfg, seed.wrapping_add(1));
        a.bootstrap([NodeId::new(1)]);
        b.bootstrap((2..2 + peers).map(NodeId::new));
        if let Some((_, request)) = a.initiate() {
            let ShuffleMessage::Reply { entries } = b.handle_request(request) else {
                panic!("expected reply");
            };
            prop_assert!(entries.len() <= 4);
            a.handle_reply(ShuffleMessage::Reply { entries });
            prop_assert!(a.view().len() <= 8);
            prop_assert!(!a.view().contains(NodeId::new(0)));
        }
    }

    #[test]
    fn pooled_paths_match_allocating_paths_with_a_dirty_pool(
        seed in any::<u64>(),
        peers_a in 1u64..10,
        peers_b in 0u64..12,
        junk in proptest::collection::vec((0u32..50, 0u32..9), 0..8),
    ) {
        // Twin protocol runs: `fresh` uses the allocating entry points
        // (a brand-new pool per call), `pooled` threads one long-lived
        // pool through every call. Buffer reuse must be invisible — any
        // recycled contents leaking into a later exchange diverges the
        // twins immediately.
        let cfg = ShuffleConfig::new(8, 4);
        let mut pool = EntryPool::new();
        // Pre-dirty the pool with buffers that held unrelated entries.
        for &(id, age) in &junk {
            let mut buf = pool.take(2);
            buf.push(ViewEntry { id: NodeId::new(u64::from(id)), age });
            buf.push(ViewEntry::fresh(NodeId::new(u64::from(id) + 1)));
            pool.recycle(buf);
        }
        let mut a_fresh = ShuffleNode::new(NodeId::new(0), cfg, seed);
        let mut a_pooled = ShuffleNode::new(NodeId::new(0), cfg, seed);
        a_fresh.bootstrap((1..=peers_a).map(NodeId::new));
        a_pooled.bootstrap((1..=peers_a).map(NodeId::new));
        let mut b_fresh = ShuffleNode::new(NodeId::new(100), cfg, seed.wrapping_add(1));
        let mut b_pooled = ShuffleNode::new(NodeId::new(100), cfg, seed.wrapping_add(1));
        b_fresh.bootstrap((101..101 + peers_b).map(NodeId::new));
        b_pooled.bootstrap((101..101 + peers_b).map(NodeId::new));

        for round in 0..6u64 {
            let mut rng_fresh = SplitMix64::keyed(&[seed, round]);
            let mut rng_pooled = rng_fresh.clone();
            let proposal_fresh = a_fresh.propose(&mut rng_fresh);
            let proposal_pooled = a_pooled.propose_with(&mut rng_pooled, &mut pool);
            prop_assert_eq!(&proposal_fresh, &proposal_pooled, "round {}", round);
            prop_assert_eq!(rng_fresh, rng_pooled, "round {}: rng consumption", round);
            let (Some(pf), Some(pp)) = (proposal_fresh, proposal_pooled) else {
                break;
            };
            if round % 3 == 2 {
                // A proposal abandoned before becoming a request (its
                // target went offline, in harness terms).
                pp.recycle_into(&mut pool);
                continue;
            }
            let target = pf.target();
            a_fresh.apply(&pf);
            a_pooled.apply_with(&pp, &mut pool);
            let (_, request_fresh) = pf.into_request();
            let (_, request_pooled) = pp.into_request();
            let reply_fresh = b_fresh.handle_request(request_fresh);
            let reply_pooled = b_pooled.handle_request_with(request_pooled, &mut pool);
            prop_assert_eq!(&reply_fresh, &reply_pooled, "round {}", round);
            if round % 2 == 0 {
                a_fresh.handle_reply(reply_fresh);
                a_pooled.handle_reply_with(reply_pooled, &mut pool);
            } else {
                a_fresh.handle_timeout(target);
                a_pooled.handle_timeout_with(target, &mut pool);
            }
            prop_assert_eq!(a_fresh.view(), a_pooled.view(), "round {}: initiator", round);
            prop_assert_eq!(b_fresh.view(), b_pooled.view(), "round {}: responder", round);
        }
    }
}
