//! Property-based tests for the discrete-event engine and network model.

use proptest::prelude::*;

use avmem_sim::{Counters, Engine, EngineGroup, LatencyModel, Network, SimDuration, SimTime};

proptest! {
    #[test]
    fn engine_dispatches_in_nondecreasing_time_order(
        times in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule(SimTime::from_millis(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0usize;
        engine.run_until(SimTime::MAX, |_, at, _| {
            assert!(at >= last, "time went backwards");
            last = at;
            count += 1;
        });
        prop_assert_eq!(count, times.len());
        prop_assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn engine_ties_break_by_insertion(
        n in 1usize..100,
        t in 0u64..1000,
    ) {
        let mut engine = Engine::new();
        for i in 0..n {
            engine.schedule(SimTime::from_millis(t), i);
        }
        let mut order = Vec::new();
        engine.run_until(SimTime::MAX, |_, _, e| order.push(e));
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn engine_deadline_splits_cleanly(
        times in proptest::collection::vec(0u64..1000, 0..100),
        deadline in 0u64..1000,
    ) {
        let mut engine = Engine::new();
        for &t in &times {
            engine.schedule(SimTime::from_millis(t), t);
        }
        let mut before = 0usize;
        engine.run_until(SimTime::from_millis(deadline), |_, _, t| {
            assert!(t <= deadline);
            before += 1;
        });
        let expected_before = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(before, expected_before);
        prop_assert_eq!(engine.pending(), times.len() - expected_before);
    }

    #[test]
    fn uniform_latency_within_bounds(seed in any::<u64>(), lo in 0u64..500, span in 0u64..500) {
        let hi = lo + span;
        let mut net = Network::new(
            LatencyModel::Uniform { lo_millis: lo, hi_millis: hi },
            0.0,
            seed,
        );
        for _ in 0..100 {
            let d = net.hop_latency().as_millis();
            prop_assert!((lo..=hi).contains(&d));
        }
    }

    #[test]
    fn network_is_deterministic_per_seed(seed in any::<u64>()) {
        let mut a = Network::new(LatencyModel::PAPER, 0.2, seed);
        let mut b = Network::new(LatencyModel::PAPER, 0.2, seed);
        for _ in 0..50 {
            prop_assert_eq!(a.hop_latency(), b.hop_latency());
            prop_assert_eq!(a.delivers(), b.delivers());
        }
    }

    #[test]
    fn counters_merge_is_sum(
        a_vals in proptest::collection::vec((0usize..5, 1u64..100), 0..20),
        b_vals in proptest::collection::vec((0usize..5, 1u64..100), 0..20),
    ) {
        let names = ["a", "b", "c", "d", "e"];
        let mut a = Counters::new();
        let mut b = Counters::new();
        for &(k, v) in &a_vals {
            a.add(names[k], v);
        }
        for &(k, v) in &b_vals {
            b.add(names[k], v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        for name in names {
            prop_assert_eq!(merged.get(name), a.get(name) + b.get(name));
        }
    }

    #[test]
    fn durations_add_commutatively(x in 0u64..1_000_000, y in 0u64..1_000_000) {
        let a = SimDuration::from_millis(x);
        let b = SimDuration::from_millis(y);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b).as_millis(), x + y);
    }

    #[test]
    fn time_add_then_subtract_roundtrips(base in 0u64..1_000_000, delta in 0u64..1_000_000) {
        let t = SimTime::from_millis(base);
        let d = SimDuration::from_millis(delta);
        prop_assert_eq!((t + d) - t, d);
    }

    #[test]
    fn engine_group_replays_the_global_cohort_stream(
        events in proptest::collection::vec((0u64..60, 0usize..8), 0..250),
        shards in 1usize..8,
    ) {
        // A group of per-shard engines drained with aligned cohorts must
        // observe the same (time, cohort) sequence a single global engine
        // does, with each cohort partitioned by the scheduling shard.
        let mut global = Engine::new();
        let mut group = EngineGroup::new(shards);
        for (i, &(t, owner)) in events.iter().enumerate() {
            let time = SimTime::from_millis(t);
            global.schedule(time, i);
            group.schedule(owner % shards, time, i);
        }

        let mut global_batch = Vec::new();
        let mut batches = vec![Vec::new(); shards];
        loop {
            let gt = global.pop_batch_until(SimTime::MAX, &mut global_batch);
            let st = group.pop_batch_until(SimTime::MAX, &mut batches);
            prop_assert_eq!(gt, st, "cohort timestamps diverged");
            if gt.is_none() {
                break;
            }
            let mut merged: Vec<usize> = batches.iter().flatten().copied().collect();
            merged.sort_unstable();
            let mut expect = global_batch.clone();
            expect.sort_unstable();
            prop_assert_eq!(merged, expect, "cohort membership diverged");
            for (s, batch) in batches.iter().enumerate() {
                // Per-shard seq order (insertion order) is preserved.
                prop_assert!(batch.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(batch.iter().all(|&e| events[e].1 % shards == s));
            }
        }
        prop_assert_eq!(group.pending(), 0);
        prop_assert_eq!(group.dispatched(), events.len() as u64);
    }
}
