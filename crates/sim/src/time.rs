//! Virtual time.
//!
//! [`SimTime`] is an instant on the simulation clock and [`SimDuration`] a
//! span between instants, both with millisecond resolution. Millisecond
//! granularity matches the paper's latency scale (hop latencies of tens of
//! milliseconds, protocol periods of minutes, traces spanning days) while
//! keeping arithmetic in `u64` exact — no floating-point clock drift.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock (milliseconds since simulation
/// start).
///
/// # Examples
///
/// ```
/// use avmem_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(90);
/// assert_eq!(t.as_millis(), 90_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(90));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time (milliseconds).
///
/// # Examples
///
/// ```
/// use avmem_sim::SimDuration;
///
/// assert_eq!(SimDuration::from_mins(20), SimDuration::from_secs(1200));
/// assert_eq!(SimDuration::from_days(7).as_millis(), 604_800_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as a "run to completion" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration elapsed since an earlier instant, saturating at zero.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Compact 32-bit millisecond stamp, saturating at `u32::MAX`
    /// (~49.7 simulated days — beyond every scenario horizon).
    ///
    /// Hot-state layouts (membership stamps) store instants in 4 bytes;
    /// exact for every instant below the cap, and round-tripped by
    /// [`SimTime::from_compact_ms`].
    pub const fn as_compact_ms(self) -> u32 {
        if self.0 > u32::MAX as u64 {
            u32::MAX
        } else {
            self.0 as u32
        }
    }

    /// Reconstructs an instant from a compact stamp; inverse of
    /// [`SimTime::as_compact_ms`] below the saturation cap.
    pub const fn from_compact_ms(ms: u32) -> SimTime {
        SimTime(ms as u64)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000)
    }

    /// Creates a duration from minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a duration from hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Creates a duration from days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400_000)
    }

    /// The duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The duration in seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Integer multiplication, e.g. `period * tick_index`.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }

    /// How many whole `self` periods fit in `span`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub const fn periods_in(self, span: SimDuration) -> u64 {
        assert!(self.0 > 0, "period must be positive");
        span.0 / self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(self.0 >= rhs.0, "time subtraction would underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact() {
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_mins(1).as_millis(), 60_000);
        assert_eq!(SimDuration::from_hours(1).as_millis(), 3_600_000);
        assert_eq!(SimDuration::from_days(1).as_millis(), 86_400_000);
    }

    #[test]
    fn add_and_subtract_round_trip() {
        let t = SimTime::ZERO + SimDuration::from_mins(20);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_mins(20));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtracting_later_from_earlier_panics() {
        let _ = SimTime::ZERO - SimTime::from_millis(1);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(50);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(40));
    }

    #[test]
    fn periods_in_counts_whole_periods() {
        let period = SimDuration::from_mins(20);
        assert_eq!(period.periods_in(SimDuration::from_days(7)), 504);
        assert_eq!(period.periods_in(SimDuration::from_mins(19)), 0);
    }

    #[test]
    fn add_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(5) < SimTime::from_millis(6));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(12).to_string(), "t+12ms");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7ms");
    }
}
