//! Per-shard event queues with aligned cohort draining.
//!
//! [`EngineGroup`] holds one [`Engine`] per shard so each shard of a
//! sharded driver owns its event queue outright — scheduling a follow-up
//! event touches only the owning shard's heap, with no contention on a
//! global queue. Draining stays globally deterministic because cohorts
//! are *aligned*: [`EngineGroup::pop_batch_until`] finds the earliest
//! pending timestamp across all shards and pops exactly that timestamp's
//! cohort from every shard that has one, leaving the other shards' queues
//! untouched. The union of the per-shard batches is exactly the cohort a
//! single global [`Engine`] would have popped — partitioned by shard —
//! so a sharded driver sees the same timeline as a serial one.

use crate::engine::Engine;
use crate::time::SimTime;

/// A group of per-shard [`Engine`]s drained in aligned timestamp cohorts.
///
/// # Examples
///
/// ```
/// use avmem_sim::{EngineGroup, SimTime};
///
/// let mut group: EngineGroup<&'static str> = EngineGroup::new(2);
/// group.schedule(0, SimTime::from_millis(5), "a");
/// group.schedule(1, SimTime::from_millis(5), "b");
/// group.schedule(1, SimTime::from_millis(9), "c");
///
/// let mut batches = vec![Vec::new(), Vec::new()];
/// let t = group.pop_batch_until(SimTime::MAX, &mut batches).unwrap();
/// assert_eq!(t, SimTime::from_millis(5));
/// assert_eq!(batches, vec![vec!["a"], vec!["b"]]); // "c" stays queued
/// ```
#[derive(Debug)]
pub struct EngineGroup<E> {
    engines: Vec<Engine<E>>,
}

impl<E> EngineGroup<E> {
    /// Creates a group of `shards` empty engines (zero is treated as one).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        EngineGroup {
            engines: (0..shards).map(|_| Engine::new()).collect(),
        }
    }

    /// Number of shards (engines) in the group.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// Schedules `event` at absolute time `at` on shard `s`'s queue.
    ///
    /// # Panics
    ///
    /// Panics if `s >= shards()`.
    pub fn schedule(&mut self, s: usize, at: SimTime, event: E) {
        self.engines[s].schedule(at, event);
    }

    /// Timestamp of the earliest pending event across all shards.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.engines.iter().filter_map(Engine::peek_time).min()
    }

    /// Total number of events still pending across all shards.
    pub fn pending(&self) -> usize {
        self.engines.iter().map(Engine::pending).sum()
    }

    /// Total number of events dispatched so far across all shards.
    pub fn dispatched(&self) -> u64 {
        self.engines.iter().map(Engine::dispatched).sum()
    }

    /// Pops the globally earliest timestamp cohort into per-shard batches.
    ///
    /// Finds the minimum pending timestamp `t` over every shard; if
    /// `t <= deadline`, each shard whose head is exactly `t` pops its
    /// cohort (in its own seq order) into `batches[s]`, and every other
    /// shard's batch is cleared. Returns `t`, or `None` (with all batches
    /// cleared) when no shard has an event at or before `deadline`.
    ///
    /// # Panics
    ///
    /// Panics if `batches.len() != shards()`.
    pub fn pop_batch_until(
        &mut self,
        deadline: SimTime,
        batches: &mut [Vec<E>],
    ) -> Option<SimTime> {
        assert_eq!(
            batches.len(),
            self.engines.len(),
            "one batch buffer per shard"
        );
        let head = self.peek_time().filter(|&t| t <= deadline);
        let Some(t) = head else {
            for batch in batches.iter_mut() {
                batch.clear();
            }
            return None;
        };
        for (engine, batch) in self.engines.iter_mut().zip(batches.iter_mut()) {
            if engine.peek_time() == Some(t) {
                let popped = engine.pop_batch_until(t, batch);
                debug_assert_eq!(popped, Some(t));
            } else {
                batch.clear();
            }
        }
        Some(t)
    }

    /// Drops all pending events on every shard.
    pub fn clear(&mut self) {
        for engine in &mut self.engines {
            engine.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_collapses_to_one() {
        let group: EngineGroup<()> = EngineGroup::new(0);
        assert_eq!(group.shards(), 1);
    }

    #[test]
    fn peek_is_the_minimum_over_shards() {
        let mut group = EngineGroup::new(3);
        assert_eq!(group.peek_time(), None);
        group.schedule(1, SimTime::from_millis(40), "late");
        group.schedule(2, SimTime::from_millis(10), "early");
        assert_eq!(group.peek_time(), Some(SimTime::from_millis(10)));
    }

    #[test]
    fn aligned_pop_takes_only_the_earliest_cohort() {
        let mut group = EngineGroup::new(3);
        group.schedule(0, SimTime::from_millis(5), 'a');
        group.schedule(0, SimTime::from_millis(5), 'b');
        group.schedule(1, SimTime::from_millis(7), 'c');
        group.schedule(2, SimTime::from_millis(5), 'd');

        let mut batches = vec![Vec::new(); 3];
        let t = group.pop_batch_until(SimTime::MAX, &mut batches).unwrap();
        assert_eq!(t, SimTime::from_millis(5));
        assert_eq!(batches, vec![vec!['a', 'b'], vec![], vec!['d']]);
        assert_eq!(group.pending(), 1);

        let t = group.pop_batch_until(SimTime::MAX, &mut batches).unwrap();
        assert_eq!(t, SimTime::from_millis(7));
        assert_eq!(batches, vec![vec![], vec!['c'], vec![]]);
        assert!(group.pop_batch_until(SimTime::MAX, &mut batches).is_none());
    }

    #[test]
    fn deadline_refusal_clears_all_batches() {
        let mut group = EngineGroup::new(2);
        group.schedule(0, SimTime::from_millis(100), ());
        let mut batches = vec![vec![()], vec![(), ()]];
        assert!(group
            .pop_batch_until(SimTime::from_millis(99), &mut batches)
            .is_none());
        assert!(batches.iter().all(Vec::is_empty));
        assert_eq!(group.pending(), 1);
    }

    #[test]
    fn union_of_shard_batches_matches_a_global_engine() {
        // Partition events over shards by `event % shards`; the union of
        // aligned per-shard cohorts must replay the global cohort stream.
        let shards = 4usize;
        let mut global = Engine::new();
        let mut group = EngineGroup::new(shards);
        for i in 0..200u32 {
            let t = SimTime::from_millis((i % 13) as u64);
            global.schedule(t, i);
            group.schedule(i as usize % shards, t, i);
        }

        let mut global_batch = Vec::new();
        let mut batches = vec![Vec::new(); shards];
        loop {
            let gt = global.pop_batch_until(SimTime::MAX, &mut global_batch);
            let st = group.pop_batch_until(SimTime::MAX, &mut batches);
            assert_eq!(gt, st);
            let Some(_) = gt else { break };
            let mut merged: Vec<u32> = batches.iter().flatten().copied().collect();
            merged.sort_unstable();
            let mut expect = global_batch.clone();
            expect.sort_unstable();
            assert_eq!(merged, expect);
            // Within a shard, seq order is preserved.
            for (s, batch) in batches.iter().enumerate() {
                assert!(batch.windows(2).all(|w| w[0] < w[1]), "shard {s} out of order");
                assert!(batch.iter().all(|&e| e as usize % shards == s));
            }
        }
        assert_eq!(group.dispatched(), 200);
        assert_eq!(group.pending(), 0);
    }

    #[test]
    fn clear_drops_everything() {
        let mut group = EngineGroup::new(2);
        group.schedule(0, SimTime::from_millis(1), ());
        group.schedule(1, SimTime::from_millis(2), ());
        group.clear();
        assert_eq!(group.pending(), 0);
        assert_eq!(group.peek_time(), None);
    }
}
