//! The event scheduler.
//!
//! [`Engine`] is a priority queue of `(time, event)` pairs with a strictly
//! deterministic drain order: ties on time are broken by insertion
//! sequence number, never by heap internals. Determinism matters because
//! the whole evaluation methodology rests on reproducible runs — a figure
//! regenerated from the same seed must be identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event; ordered by `(time, seq)` so the heap pops in
/// deterministic chronological order.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event scheduler, generic over the event type.
///
/// # Examples
///
/// Running a simple self-rescheduling clock:
///
/// ```
/// use avmem_sim::{Engine, SimDuration, SimTime};
///
/// #[derive(Debug)]
/// struct Tick;
///
/// let mut engine = Engine::new();
/// engine.schedule(SimTime::ZERO, Tick);
/// let mut ticks = 0;
/// engine.run_until(SimTime::ZERO + SimDuration::from_secs(5), |eng, now, Tick| {
///     ticks += 1;
///     eng.schedule(now + SimDuration::from_secs(1), Tick);
/// });
/// assert_eq!(ticks, 6); // t = 0s, 1s, 2s, 3s, 4s, 5s
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    dispatched: u64,
}

impl<E> Engine<E> {
    /// Creates an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            dispatched: 0,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// dispatched event (or the epoch before any dispatch).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timestamp of the earliest pending event, without popping it.
    ///
    /// Drivers that interleave external work with event processing (e.g.
    /// operation injection between maintenance cohorts) use this to decide
    /// how far they can advance before the next cohort is due.
    ///
    /// # Examples
    ///
    /// ```
    /// use avmem_sim::{Engine, SimTime};
    ///
    /// let mut engine = Engine::new();
    /// assert_eq!(engine.peek_time(), None);
    /// engine.schedule(SimTime::from_millis(40), "tick");
    /// assert_eq!(engine.peek_time(), Some(SimTime::from_millis(40)));
    /// ```
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|sched| sched.time)
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Events scheduled in the past (before [`Engine::now`]) are dispatched
    /// immediately on the next pop, still in deterministic order; this
    /// mirrors a message that was already in flight.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event if its timestamp does not exceed `deadline`.
    ///
    /// Advances the clock to the event's time (clamped to be monotone).
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let head_time = self.queue.peek()?.time;
        if head_time > deadline {
            return None;
        }
        let sched = self.queue.pop().expect("peeked entry exists");
        // Clamp: late-scheduled events never move the clock backwards.
        self.now = self.now.max(sched.time);
        self.dispatched += 1;
        Some((sched.time, sched.event))
    }

    /// Pops the entire *timestamp cohort* at the head of the queue — every
    /// event sharing the earliest pending timestamp — into `batch`, in seq
    /// order, provided that timestamp does not exceed `deadline`.
    ///
    /// Returns the cohort's timestamp, or `None` (with `batch` cleared)
    /// when the queue is empty or the next event lies beyond `deadline`.
    /// The clock advances to the cohort's time (clamped to be monotone).
    ///
    /// This is the batched counterpart of [`Engine::pop_until`]: because
    /// ties on time are already broken deterministically by insertion
    /// sequence, a cohort is a well-defined unit — a driver that processes
    /// cohorts (e.g. in parallel over the nodes they touch, committing
    /// conflicts in batch order) observes exactly the order a serial
    /// per-event drain would.
    ///
    /// # Examples
    ///
    /// ```
    /// use avmem_sim::{Engine, SimTime};
    ///
    /// let mut engine = Engine::new();
    /// engine.schedule(SimTime::from_millis(5), "a");
    /// engine.schedule(SimTime::from_millis(5), "b");
    /// engine.schedule(SimTime::from_millis(9), "c");
    ///
    /// let mut batch = Vec::new();
    /// let t = engine.pop_batch_until(SimTime::MAX, &mut batch).unwrap();
    /// assert_eq!(t, SimTime::from_millis(5));
    /// assert_eq!(batch, vec!["a", "b"]);
    /// ```
    pub fn pop_batch_until(&mut self, deadline: SimTime, batch: &mut Vec<E>) -> Option<SimTime> {
        batch.clear();
        let head_time = self.queue.peek()?.time;
        if head_time > deadline {
            return None;
        }
        while let Some(head) = self.queue.peek() {
            if head.time != head_time {
                break;
            }
            let sched = self.queue.pop().expect("peeked entry exists");
            self.dispatched += 1;
            batch.push(sched.event);
        }
        // Clamp: late-scheduled events never move the clock backwards.
        self.now = self.now.max(head_time);
        Some(head_time)
    }

    /// Drains and dispatches events through `handler` until the queue is
    /// empty or the next event lies beyond `deadline`.
    ///
    /// The handler receives the engine itself so it can schedule follow-up
    /// events, the scheduled timestamp, and the event.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        while let Some((time, event)) = self.pop_until(deadline) {
            handler(self, time, event);
        }
        // The clock reflects that the interval up to `deadline` elapsed
        // even if no event was left in it.
        self.now = self.now.max(deadline.min(SimTime::MAX));
    }

    /// Drops all pending events, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn events_dispatch_in_time_order() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(30), 3);
        engine.schedule(SimTime::from_millis(10), 1);
        engine.schedule(SimTime::from_millis(20), 2);
        let mut order = Vec::new();
        engine.run_until(SimTime::MAX, |_, _, e| order.push(e));
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut engine = Engine::new();
        for i in 0..100 {
            engine.schedule(SimTime::from_millis(5), i);
        }
        let mut order = Vec::new();
        engine.run_until(SimTime::MAX, |_, _, e| order.push(e));
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deadline_leaves_later_events_pending() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(10), "early");
        engine.schedule(SimTime::from_millis(1000), "late");
        let mut seen = Vec::new();
        engine.run_until(SimTime::from_millis(100), |_, _, e| seen.push(e));
        assert_eq!(seen, vec!["early"]);
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.now(), SimTime::from_millis(100));
    }

    #[test]
    fn handler_can_schedule_follow_ups() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        engine.run_until(SimTime::from_millis(10), |eng, now, depth| {
            count += 1;
            if depth < 3 {
                eng.schedule(now + SimDuration::from_millis(1), depth + 1);
            }
        });
        assert_eq!(count, 4);
    }

    #[test]
    fn clock_is_monotone_even_with_past_events() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(100), "a");
        let mut times = Vec::new();
        engine.run_until(SimTime::MAX, |eng, _, e| {
            if e == "a" {
                // Schedule "in the past" — delivered next, clock unchanged.
                eng.schedule(SimTime::from_millis(5), "b");
            }
            times.push(eng.now());
        });
        assert_eq!(times, vec![SimTime::from_millis(100), SimTime::from_millis(100)]);
    }

    #[test]
    fn dispatched_counts_events() {
        let mut engine = Engine::new();
        for i in 0..5 {
            engine.schedule(SimTime::from_millis(i), i);
        }
        engine.run_until(SimTime::MAX, |_, _, _| {});
        assert_eq!(engine.dispatched(), 5);
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(100), "first");
        let mut seen = Vec::new();
        engine.run_until(SimTime::MAX, |eng, _, e| {
            seen.push((eng.now(), e));
            if e == "first" {
                eng.schedule_after(SimDuration::from_millis(50), "second");
            }
        });
        assert_eq!(
            seen,
            vec![
                (SimTime::from_millis(100), "first"),
                (SimTime::from_millis(150), "second"),
            ]
        );
    }

    #[test]
    fn pop_batch_drains_one_timestamp_cohort_in_seq_order() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(20), 999);
        for i in 0..50 {
            engine.schedule(SimTime::from_millis(10), i);
        }
        engine.schedule(SimTime::from_millis(10), 50);
        let mut batch = Vec::new();
        let t = engine.pop_batch_until(SimTime::MAX, &mut batch).unwrap();
        assert_eq!(t, SimTime::from_millis(10));
        assert_eq!(batch, (0..51).collect::<Vec<_>>());
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.dispatched(), 51);
        assert_eq!(engine.now(), SimTime::from_millis(10));
    }

    #[test]
    fn pop_batch_respects_deadline() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(100), ());
        let mut batch = vec![()];
        assert!(engine
            .pop_batch_until(SimTime::from_millis(99), &mut batch)
            .is_none());
        assert!(batch.is_empty(), "a refused pop must clear the batch");
        assert_eq!(engine.pending(), 1);
        assert!(engine
            .pop_batch_until(SimTime::from_millis(100), &mut batch)
            .is_some());
    }

    #[test]
    fn pop_batch_on_empty_queue_is_none() {
        let mut engine: Engine<u8> = Engine::new();
        let mut batch = Vec::new();
        assert!(engine.pop_batch_until(SimTime::MAX, &mut batch).is_none());
    }

    #[test]
    fn pop_batch_matches_serial_pop_sequence() {
        // Batched and per-event drains must observe the same (time, event)
        // sequence.
        let schedule = |engine: &mut Engine<u32>| {
            for i in 0..40u32 {
                engine.schedule(SimTime::from_millis((i % 7) as u64), i);
            }
        };
        let mut serial = Engine::new();
        schedule(&mut serial);
        let mut serial_seen = Vec::new();
        while let Some((t, e)) = serial.pop_until(SimTime::MAX) {
            serial_seen.push((t, e));
        }

        let mut batched = Engine::new();
        schedule(&mut batched);
        let mut batched_seen = Vec::new();
        let mut batch = Vec::new();
        while let Some(t) = batched.pop_batch_until(SimTime::MAX, &mut batch) {
            for &e in &batch {
                batched_seen.push((t, e));
            }
        }
        assert_eq!(batched_seen, serial_seen);
    }

    #[test]
    fn clear_drops_pending() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(1), ());
        engine.clear();
        assert_eq!(engine.pending(), 0);
    }
}
