//! The event scheduler.
//!
//! [`Engine`] is a priority queue of `(time, event)` pairs with a strictly
//! deterministic drain order: ties on time are broken by insertion
//! sequence number, never by heap internals. Determinism matters because
//! the whole evaluation methodology rests on reproducible runs — a figure
//! regenerated from the same seed must be identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event; ordered by `(time, seq)` so the heap pops in
/// deterministic chronological order.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event scheduler, generic over the event type.
///
/// # Examples
///
/// Running a simple self-rescheduling clock:
///
/// ```
/// use avmem_sim::{Engine, SimDuration, SimTime};
///
/// #[derive(Debug)]
/// struct Tick;
///
/// let mut engine = Engine::new();
/// engine.schedule(SimTime::ZERO, Tick);
/// let mut ticks = 0;
/// engine.run_until(SimTime::ZERO + SimDuration::from_secs(5), |eng, now, Tick| {
///     ticks += 1;
///     eng.schedule(now + SimDuration::from_secs(1), Tick);
/// });
/// assert_eq!(ticks, 6); // t = 0s, 1s, 2s, 3s, 4s, 5s
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    dispatched: u64,
}

impl<E> Engine<E> {
    /// Creates an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            dispatched: 0,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// dispatched event (or the epoch before any dispatch).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Events scheduled in the past (before [`Engine::now`]) are dispatched
    /// immediately on the next pop, still in deterministic order; this
    /// mirrors a message that was already in flight.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event if its timestamp does not exceed `deadline`.
    ///
    /// Advances the clock to the event's time (clamped to be monotone).
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let head_time = self.queue.peek()?.time;
        if head_time > deadline {
            return None;
        }
        let sched = self.queue.pop().expect("peeked entry exists");
        // Clamp: late-scheduled events never move the clock backwards.
        self.now = self.now.max(sched.time);
        self.dispatched += 1;
        Some((sched.time, sched.event))
    }

    /// Drains and dispatches events through `handler` until the queue is
    /// empty or the next event lies beyond `deadline`.
    ///
    /// The handler receives the engine itself so it can schedule follow-up
    /// events, the scheduled timestamp, and the event.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        while let Some((time, event)) = self.pop_until(deadline) {
            handler(self, time, event);
        }
        // The clock reflects that the interval up to `deadline` elapsed
        // even if no event was left in it.
        self.now = self.now.max(deadline.min(SimTime::MAX));
    }

    /// Drops all pending events, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn events_dispatch_in_time_order() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(30), 3);
        engine.schedule(SimTime::from_millis(10), 1);
        engine.schedule(SimTime::from_millis(20), 2);
        let mut order = Vec::new();
        engine.run_until(SimTime::MAX, |_, _, e| order.push(e));
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut engine = Engine::new();
        for i in 0..100 {
            engine.schedule(SimTime::from_millis(5), i);
        }
        let mut order = Vec::new();
        engine.run_until(SimTime::MAX, |_, _, e| order.push(e));
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deadline_leaves_later_events_pending() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(10), "early");
        engine.schedule(SimTime::from_millis(1000), "late");
        let mut seen = Vec::new();
        engine.run_until(SimTime::from_millis(100), |_, _, e| seen.push(e));
        assert_eq!(seen, vec!["early"]);
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.now(), SimTime::from_millis(100));
    }

    #[test]
    fn handler_can_schedule_follow_ups() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        engine.run_until(SimTime::from_millis(10), |eng, now, depth| {
            count += 1;
            if depth < 3 {
                eng.schedule(now + SimDuration::from_millis(1), depth + 1);
            }
        });
        assert_eq!(count, 4);
    }

    #[test]
    fn clock_is_monotone_even_with_past_events() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(100), "a");
        let mut times = Vec::new();
        engine.run_until(SimTime::MAX, |eng, _, e| {
            if e == "a" {
                // Schedule "in the past" — delivered next, clock unchanged.
                eng.schedule(SimTime::from_millis(5), "b");
            }
            times.push(eng.now());
        });
        assert_eq!(times, vec![SimTime::from_millis(100), SimTime::from_millis(100)]);
    }

    #[test]
    fn dispatched_counts_events() {
        let mut engine = Engine::new();
        for i in 0..5 {
            engine.schedule(SimTime::from_millis(i), i);
        }
        engine.run_until(SimTime::MAX, |_, _, _| {});
        assert_eq!(engine.dispatched(), 5);
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(100), "first");
        let mut seen = Vec::new();
        engine.run_until(SimTime::MAX, |eng, _, e| {
            seen.push((eng.now(), e));
            if e == "first" {
                eng.schedule_after(SimDuration::from_millis(50), "second");
            }
        });
        assert_eq!(
            seen,
            vec![
                (SimTime::from_millis(100), "first"),
                (SimTime::from_millis(150), "second"),
            ]
        );
    }

    #[test]
    fn clear_drops_pending() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(1), ());
        engine.clear();
        assert_eq!(engine.pending(), 0);
    }
}
