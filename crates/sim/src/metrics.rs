//! Lightweight named counters.
//!
//! Protocols increment counters ("shuffle.requests", "anycast.forwarded",
//! …) and the experiment harness reads them back when building a figure.
//! A `BTreeMap` keeps iteration order stable so metric dumps are
//! deterministic.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A set of monotonically increasing named counters.
///
/// # Examples
///
/// ```
/// use avmem_sim::Counters;
///
/// let mut c = Counters::new();
/// c.incr("messages.sent");
/// c.add("messages.sent", 2);
/// assert_eq!(c.get("messages.sent"), 3);
/// assert_eq!(c.get("messages.lost"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Increments `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments `name` by `delta`.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.values.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of `name` (zero if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` pairs in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another counter set into this one (summing values).
    pub fn merge(&mut self, other: &Counters) {
        for (name, value) in &other.values {
            *self.values.entry(name.clone()).or_insert(0) += value;
        }
    }

    /// Resets every counter to zero (forgetting names entirely).
    pub fn reset(&mut self) {
        self.values.clear();
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.values.is_empty() {
            return write!(f, "(no counters)");
        }
        for (name, value) in &self.values {
            writeln!(f, "{name} = {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_counter_reads_zero() {
        let c = Counters::new();
        assert_eq!(c.get("nope"), 0);
    }

    #[test]
    fn incr_and_add_accumulate() {
        let mut c = Counters::new();
        c.incr("a");
        c.incr("a");
        c.add("a", 10);
        assert_eq!(c.get("a"), 12);
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let mut c = Counters::new();
        c.incr("zebra");
        c.incr("alpha");
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zebra"]);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Counters::new();
        a.add("x", 1);
        let mut b = Counters::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Counters::new();
        c.add("x", 5);
        c.reset();
        assert_eq!(c.get("x"), 0);
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn display_is_never_empty() {
        let c = Counters::new();
        assert_eq!(c.to_string(), "(no counters)");
    }
}
