#![warn(missing_docs)]

//! Deterministic discrete-event simulation engine.
//!
//! The AVMEM paper evaluates everything with a discrete event simulation
//! (§4). This crate provides the engine that the substrates (shuffling
//! membership, AVMON monitoring) and AVMEM itself run on:
//!
//! * [`SimTime`] / [`SimDuration`] — a millisecond-resolution virtual
//!   clock;
//! * [`Engine`] — a binary-heap scheduler with a deterministic tie-break,
//!   so that two runs with the same seed produce byte-identical histories;
//! * [`EngineGroup`] — per-shard engines drained in aligned timestamp
//!   cohorts, the queue layer of the sharded maintenance harness;
//! * [`net`] — per-hop latency models (the paper draws hop latency
//!   uniformly from `[20 ms, 80 ms]`) and message-loss injection;
//! * [`metrics`] — counters shared by protocols and the experiment
//!   harness.
//!
//! The engine is generic over the event type: protocol crates define an
//! event enum and drive the loop themselves, which keeps this crate free
//! of any knowledge about overlays.
//!
//! # Examples
//!
//! ```
//! use avmem_sim::{Engine, SimDuration, SimTime};
//!
//! let mut engine: Engine<&'static str> = Engine::new();
//! engine.schedule(SimTime::ZERO + SimDuration::from_millis(5), "world");
//! engine.schedule(SimTime::ZERO, "hello");
//!
//! let mut seen = Vec::new();
//! engine.run_until(SimTime::ZERO + SimDuration::from_secs(1), |_, _, ev| {
//!     seen.push(ev);
//! });
//! assert_eq!(seen, vec!["hello", "world"]);
//! ```

pub mod engine;
pub mod group;
pub mod metrics;
pub mod net;
pub mod time;

pub use engine::Engine;
pub use group::EngineGroup;
pub use metrics::Counters;
pub use net::{LatencyModel, Network};
pub use time::{SimDuration, SimTime};
