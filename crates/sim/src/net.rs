//! Network model: per-hop latency and message loss.
//!
//! The paper's operation experiments draw the latency of each virtual hop
//! "uniformly at random from the interval \[20 ms, 80 ms\]" (§4.2, Fig. 9).
//! [`LatencyModel`] captures that and a couple of alternatives; [`Network`]
//! combines a latency model with an optional uniform loss probability and
//! a deterministic RNG stream.

use avmem_util::{Rng, SplitMix64};
use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// How long a message takes to cross one virtual hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every hop takes exactly this long.
    Constant {
        /// The fixed per-hop latency in milliseconds.
        millis: u64,
    },
    /// Hop latency uniform in `[lo_millis, hi_millis]` — the paper's model
    /// with `lo = 20`, `hi = 80`.
    Uniform {
        /// Inclusive lower bound in milliseconds.
        lo_millis: u64,
        /// Inclusive upper bound in milliseconds.
        hi_millis: u64,
    },
    /// A heavy-ish tail: `lo + Exp(mean_extra)` capped at `cap_millis`,
    /// for sensitivity analyses beyond the paper's uniform model.
    ShiftedExponential {
        /// Minimum latency in milliseconds.
        lo_millis: u64,
        /// Mean of the additional exponential component, in milliseconds.
        mean_extra_millis: u64,
        /// Hard cap in milliseconds.
        cap_millis: u64,
    },
}

impl LatencyModel {
    /// The paper's default hop-latency model: uniform on `[20 ms, 80 ms]`.
    pub const PAPER: LatencyModel = LatencyModel::Uniform {
        lo_millis: 20,
        hi_millis: 80,
    };

    /// Draws one hop latency.
    pub fn draw<R: Rng>(&self, rng: &mut R) -> SimDuration {
        match *self {
            LatencyModel::Constant { millis } => SimDuration::from_millis(millis),
            LatencyModel::Uniform {
                lo_millis,
                hi_millis,
            } => {
                debug_assert!(lo_millis <= hi_millis);
                let span = hi_millis - lo_millis + 1;
                SimDuration::from_millis(lo_millis + rng.range_u64(span))
            }
            LatencyModel::ShiftedExponential {
                lo_millis,
                mean_extra_millis,
                cap_millis,
            } => {
                // Inverse-CDF sampling of Exp(mean); u ∈ [0,1) so ln(1-u) is finite.
                let u = rng.next_f64();
                let extra = -(1.0 - u).ln() * mean_extra_millis as f64;
                let total = (lo_millis as f64 + extra).min(cap_millis as f64);
                SimDuration::from_millis(total.round() as u64)
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::PAPER
    }
}

/// A message network: latency draws plus optional uniform message loss.
///
/// # Examples
///
/// ```
/// use avmem_sim::{LatencyModel, Network, SimDuration};
///
/// let mut net = Network::new(LatencyModel::PAPER, 0.0, 42);
/// let d = net.hop_latency();
/// assert!(d >= SimDuration::from_millis(20) && d <= SimDuration::from_millis(80));
/// assert!(net.delivers()); // loss probability is zero
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    latency: LatencyModel,
    loss_probability: f64,
    rng: SplitMix64,
}

impl Network {
    /// Creates a network with the given latency model, loss probability in
    /// `[0, 1]`, and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `loss_probability` is not in `[0, 1]`.
    pub fn new(latency: LatencyModel, loss_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_probability),
            "loss probability must be in [0, 1]"
        );
        Network {
            latency,
            loss_probability,
            rng: SplitMix64::new(seed),
        }
    }

    /// The configured latency model.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// Draws the latency for one hop.
    pub fn hop_latency(&mut self) -> SimDuration {
        self.latency.draw(&mut self.rng)
    }

    /// Returns whether a message survives the loss process.
    pub fn delivers(&mut self) -> bool {
        !self.rng.chance(self.loss_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_stays_in_bounds() {
        let mut net = Network::new(LatencyModel::PAPER, 0.0, 7);
        for _ in 0..10_000 {
            let d = net.hop_latency().as_millis();
            assert!((20..=80).contains(&d), "latency {d} out of [20, 80]");
        }
    }

    #[test]
    fn paper_model_covers_both_endpoints() {
        let mut net = Network::new(LatencyModel::PAPER, 0.0, 11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..20_000 {
            match net.hop_latency().as_millis() {
                20 => saw_lo = true,
                80 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn constant_model_is_constant() {
        let mut net = Network::new(LatencyModel::Constant { millis: 55 }, 0.0, 1);
        for _ in 0..100 {
            assert_eq!(net.hop_latency().as_millis(), 55);
        }
    }

    #[test]
    fn shifted_exponential_respects_floor_and_cap() {
        let model = LatencyModel::ShiftedExponential {
            lo_millis: 10,
            mean_extra_millis: 50,
            cap_millis: 200,
        };
        let mut net = Network::new(model, 0.0, 3);
        for _ in 0..10_000 {
            let d = net.hop_latency().as_millis();
            assert!((10..=200).contains(&d));
        }
    }

    #[test]
    fn loss_probability_zero_always_delivers() {
        let mut net = Network::new(LatencyModel::PAPER, 0.0, 5);
        assert!((0..1000).all(|_| net.delivers()));
    }

    #[test]
    fn loss_probability_one_never_delivers() {
        let mut net = Network::new(LatencyModel::PAPER, 1.0, 5);
        assert!((0..1000).all(|_| !net.delivers()));
    }

    #[test]
    fn loss_rate_is_close_to_configured() {
        let mut net = Network::new(LatencyModel::PAPER, 0.3, 5);
        let lost = (0..100_000).filter(|_| !net.delivers()).count();
        let rate = lost as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        let _ = Network::new(LatencyModel::PAPER, 1.5, 0);
    }

    #[test]
    fn same_seed_same_draws() {
        let mut a = Network::new(LatencyModel::PAPER, 0.1, 99);
        let mut b = Network::new(LatencyModel::PAPER, 0.1, 99);
        for _ in 0..100 {
            assert_eq!(a.hop_latency(), b.hop_latency());
            assert_eq!(a.delivers(), b.delivers());
        }
    }
}
