//! Pins the sharded event-driven engine to the serial reference
//! implementation.
//!
//! The contract under test (see `AvmemSim::run_event_driven`): a
//! maintenance run's final state — every node's membership lists, every
//! node's shuffle view, and the overlay snapshot with its metrics — is a
//! function of `(trace, config, duration)` only. Neither the engine
//! variant, nor the shard count, nor the worker-thread count may perturb
//! a single bit, for any maintenance period and any oracle fidelity.

use avmem::harness::{
    AvmemSim, InitiatorBand, MaintenanceEngine, MaintenanceMode, OracleChoice, SimConfig,
};
use avmem_sim::SimDuration;
use avmem_trace::{ChurnTrace, OvernetModel};
use avmem_util::NodeId;

/// Shard counts every cell sweeps. 1 exercises the single-shard fast
/// path, the rest exercise cross-shard batch exchange at increasing
/// fan-out (8 shards over ~100 nodes forces small, uneven slices).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Thread counts for the full-matrix cell: single worker (sharded
/// semantics, serial execution), fewer threads than shards, more
/// threads than shards.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn trace(hosts: usize, seed: u64) -> ChurnTrace {
    OvernetModel::default().hosts(hosts).days(1).generate(seed)
}

fn config(
    seed: u64,
    oracle: OracleChoice,
    maintenance: MaintenanceMode,
    engine: MaintenanceEngine,
) -> SimConfig {
    let mut config = SimConfig::paper_default(seed);
    config.oracle = oracle;
    config.maintenance = maintenance;
    config.engine = engine;
    config
}

fn sharded(shards: usize, threads: usize) -> MaintenanceEngine {
    MaintenanceEngine::Sharded {
        shards: Some(shards),
        threads: Some(threads),
    }
}

/// Full-state equality: memberships, shuffle views, snapshot, metrics.
fn assert_state_equal(reference: &AvmemSim, candidate: &AvmemSim, label: &str) {
    for i in 0..reference.trace().num_nodes() {
        let id = NodeId::new(i as u64);
        assert_eq!(
            reference.membership(id),
            candidate.membership(id),
            "{label}: membership of node {i} diverged"
        );
        assert_eq!(
            reference.shuffle_view(id),
            candidate.shuffle_view(id),
            "{label}: shuffle view of node {i} diverged"
        );
    }
    let (a, b) = (reference.snapshot(), candidate.snapshot());
    assert_eq!(a, b, "{label}: snapshots diverged");
    assert_eq!(
        a.mean_degree(),
        b.mean_degree(),
        "{label}: snapshot metrics diverged"
    );
}

/// Runs one (periods, oracle) cell: serial reference vs the sharded
/// engine over `hours` of maintenance. `full_matrix` sweeps every
/// (shard, thread) pair; the reduced sweep runs each shard count at one
/// rotating thread count to keep the suite's runtime in check.
/// `min_degree` guards against vacuous equality (empty == empty).
#[allow(clippy::too_many_arguments)]
fn check_cell(
    hosts: usize,
    seed: u64,
    oracle: OracleChoice,
    maintenance: MaintenanceMode,
    hours: u64,
    min_degree: f64,
    full_matrix: bool,
    label: &str,
) {
    let trace = trace(hosts, seed);
    let mut reference = AvmemSim::new(
        trace.clone(),
        config(seed, oracle, maintenance, MaintenanceEngine::Serial),
    );
    reference.warm_up(SimDuration::from_hours(hours));
    // Guard against vacuous equality: maintenance must have built state.
    assert!(
        reference.snapshot().mean_degree() > min_degree,
        "{label}: reference run built no overlay"
    );

    for (i, shards) in SHARD_COUNTS.into_iter().enumerate() {
        let thread_counts: &[usize] = if full_matrix {
            &THREAD_COUNTS
        } else {
            // Rotate through the thread counts so every count still
            // appears in the cell without the full cross product.
            std::slice::from_ref(&THREAD_COUNTS[i % THREAD_COUNTS.len()])
        };
        for &threads in thread_counts {
            let mut candidate = AvmemSim::new(
                trace.clone(),
                config(seed, oracle, maintenance, sharded(shards, threads)),
            );
            candidate.warm_up(SimDuration::from_hours(hours));
            assert_state_equal(
                &reference,
                &candidate,
                &format!("{label}, {shards} shards x {threads} threads"),
            );
        }
    }
}

fn fast_periods() -> MaintenanceMode {
    MaintenanceMode::EventDriven {
        protocol_period: SimDuration::from_secs(15),
        refresh_period: SimDuration::from_mins(3),
    }
}

#[test]
fn sharded_matches_serial_paper_periods_exact_oracle() {
    // The main cell runs the full shard x thread matrix.
    check_cell(
        150,
        7,
        OracleChoice::Exact,
        MaintenanceMode::paper_event_driven(),
        2,
        0.5,
        true,
        "paper periods / exact oracle",
    );
}

#[test]
fn sharded_matches_serial_paper_periods_noisy_oracle() {
    // Per-querier noise: divergent caches are the worst case for any
    // ordering bug — every (querier, target, epoch) triple draws its own
    // perturbation, so a single out-of-order estimate shows up.
    check_cell(
        150,
        8,
        OracleChoice::paper_noise(),
        MaintenanceMode::paper_event_driven(),
        2,
        0.5,
        false,
        "paper periods / per-querier noisy oracle",
    );
}

#[test]
fn sharded_matches_serial_fast_periods_exact_oracle() {
    check_cell(
        120,
        9,
        OracleChoice::Exact,
        fast_periods(),
        1,
        0.5,
        false,
        "fast periods / exact oracle",
    );
}

#[test]
fn pooled_commit_buffers_match_serial_across_full_matrix() {
    // Commit-path stress leg: 15s protocol periods maximise shuffle
    // traffic, so the counting-bucket placement and the recycled cohort
    // buffers (outboxes, transpose scratch, timeout notices) are
    // exercised thousands of times per run. Pinned across the *full*
    // shard x thread matrix: any stale byte leaking out of a pooled
    // buffer, or any ordering drift in the bucketed commit, breaks
    // bit-identity with the allocating serial reference.
    check_cell(
        120,
        23,
        OracleChoice::Exact,
        fast_periods(),
        2,
        0.5,
        true,
        "pooled counting-bucket commit / full shard x thread matrix",
    );
}

#[test]
fn sharded_matches_serial_fast_periods_shared_noise_oracle() {
    check_cell(
        120,
        10,
        OracleChoice::NoisyShared {
            error: 0.05,
            staleness: SimDuration::from_mins(20),
        },
        fast_periods(),
        1,
        0.5,
        false,
        "fast periods / shared-noise oracle",
    );
}

#[test]
fn sharded_matches_serial_with_full_avmon_service() {
    // The paper's actual monitoring service: AVMON's ping-based
    // estimates evolve as the oracle advances (once per cohort, outside
    // the parallel phases) and are read concurrently by finalize
    // workers. Estimates take hours to appear, so this cell warms
    // longer and accepts a sparser overlay than the instant oracles.
    check_cell(
        100,
        13,
        OracleChoice::Avmon {
            config: avmem_avmon::AvmonConfig::default(),
        },
        MaintenanceMode::paper_event_driven(),
        10,
        0.1,
        false,
        "paper periods / full AVMON service",
    );
}

#[test]
fn hash_store_modes_agree_across_engines() {
    // The pair-hash budget selects the store mode — dense rows, LRU of
    // hot rows, or hash-on-the-fly — and the finalize fast path layers
    // its shard-local caches on top of each. None of it may perturb a
    // bit: every (budget, engine) combination must land on the dense
    // serial reference state. 120 hosts: the default budget is dense
    // (8·N² ≈ 113 KiB); 8 KiB holds a handful of LRU rows; 64 bytes
    // holds none (direct mode with thrash bypass).
    let trace = trace(120, 17);
    let maintenance = fast_periods();
    let budgets: &[(&str, usize)] = &[
        ("dense", avmem::harness::DEFAULT_HASH_BUDGET),
        ("lru", 8 << 10),
        ("direct", 64),
    ];
    let mut reference = AvmemSim::new(
        trace.clone(),
        config(17, OracleChoice::Exact, maintenance, MaintenanceEngine::Serial),
    );
    reference.warm_up(SimDuration::from_hours(1));
    assert!(
        reference.snapshot().mean_degree() > 0.5,
        "hash-store sweep: reference run built no overlay"
    );
    for &(mode, budget) in budgets {
        for engine in [MaintenanceEngine::Serial, sharded(4, 2), sharded(8, 8)] {
            let mut cfg = config(17, OracleChoice::Exact, maintenance, engine);
            cfg.hash_budget = budget;
            let mut candidate = AvmemSim::new(trace.clone(), cfg);
            candidate.warm_up(SimDuration::from_hours(1));
            assert_state_equal(
                &reference,
                &candidate,
                &format!("hash store {mode} ({budget} B), {engine:?}"),
            );
        }
    }
}

#[test]
fn fast_finalize_matches_reference_path_across_oracles() {
    // `finalize_fast = false` recovers the pair-at-a-time reference
    // evaluation; the fast path (epoch-memoized thresholds, shard-local
    // pair caches, batched estimates, refresh short-circuiting) must be
    // bit-identical to it under every oracle fidelity — including
    // per-querier noise, where the missing epoch disables every cache
    // but thresholds are still hoisted per finalize op.
    let cells: &[(&str, OracleChoice, MaintenanceMode, u64)] = &[
        (
            "exact",
            OracleChoice::Exact,
            MaintenanceMode::paper_event_driven(),
            2,
        ),
        (
            "shared noise",
            OracleChoice::NoisyShared {
                error: 0.05,
                staleness: SimDuration::from_mins(20),
            },
            fast_periods(),
            1,
        ),
        (
            "per-querier noise",
            OracleChoice::paper_noise(),
            MaintenanceMode::paper_event_driven(),
            2,
        ),
        (
            "avmon",
            OracleChoice::Avmon {
                config: avmem_avmon::AvmonConfig::default(),
            },
            MaintenanceMode::paper_event_driven(),
            6,
        ),
    ];
    for &(label, oracle, maintenance, hours) in cells {
        let trace = trace(110, 19);
        let mut slow_cfg = config(19, oracle, maintenance, MaintenanceEngine::Serial);
        slow_cfg.finalize_fast = false;
        let mut reference = AvmemSim::new(trace.clone(), slow_cfg);
        reference.warm_up(SimDuration::from_hours(hours));
        for engine in [MaintenanceEngine::Serial, sharded(4, 2)] {
            let fast_cfg = config(19, oracle, maintenance, engine);
            assert!(fast_cfg.finalize_fast, "fast path must be the default");
            let mut candidate = AvmemSim::new(trace.clone(), fast_cfg);
            candidate.warm_up(SimDuration::from_hours(hours));
            assert_state_equal(
                &reference,
                &candidate,
                &format!("fast vs slow finalize, {label}, {engine:?}"),
            );
        }
    }
}

#[test]
fn equivalence_survives_incremental_warm_up() {
    // The schedule persists across warm_up boundaries (chopped advances
    // equal one big advance); the engines must stay in lockstep across
    // those handoffs too.
    let trace = trace(100, 11);
    let maintenance = MaintenanceMode::paper_event_driven();
    let mut reference = AvmemSim::new(
        trace.clone(),
        config(3, OracleChoice::Exact, maintenance, MaintenanceEngine::Serial),
    );
    let mut candidate = AvmemSim::new(
        trace,
        config(3, OracleChoice::Exact, maintenance, sharded(4, 4)),
    );
    for _ in 0..3 {
        reference.warm_up(SimDuration::from_mins(40));
        candidate.warm_up(SimDuration::from_mins(40));
    }
    assert_state_equal(&reference, &candidate, "incremental warm-up");
}

#[test]
fn engines_agree_on_downstream_operations() {
    // Same maintenance state ⇒ same downstream operation randomness: the
    // initiator draw consumes the run RNG identically on both engines.
    let trace = trace(150, 12);
    let maintenance = MaintenanceMode::paper_event_driven();
    let mut reference = AvmemSim::new(
        trace.clone(),
        config(5, OracleChoice::Exact, maintenance, MaintenanceEngine::Serial),
    );
    let mut candidate = AvmemSim::new(
        trace,
        config(5, OracleChoice::Exact, maintenance, sharded(8, 8)),
    );
    reference.warm_up(SimDuration::from_hours(1));
    candidate.warm_up(SimDuration::from_hours(1));
    for band in [InitiatorBand::Low, InitiatorBand::Mid, InitiatorBand::High] {
        assert_eq!(
            reference.random_online_initiator(band),
            candidate.random_online_initiator(band),
            "initiator draw diverged for {band:?}"
        );
    }
}
