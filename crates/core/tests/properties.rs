//! Property-based tests for the AVMEM core: predicate consistency and
//! verifiability, target geometry, and membership invariants.

use proptest::prelude::*;

use avmem::membership::{Membership, SliverScope};
use avmem::ops::AvailabilityTarget;
use avmem::predicate::{
    AvmemPredicate, HorizontalRule, MembershipPredicate, NodeInfo, RandomPredicate, Sliver,
    VerticalRule,
};
use avmem_avmon::AvailabilityOracle;
use avmem_sim::SimTime;
use avmem_trace::AvailabilityPdf;
use avmem_util::{consistent_hash, Availability, NodeId};

fn arbitrary_pdf() -> impl Strategy<Value = AvailabilityPdf> {
    proptest::collection::vec(0.05f64..10.0, 2..20).prop_map(AvailabilityPdf::from_bucket_mass)
}

fn arbitrary_predicate() -> impl Strategy<Value = AvmemPredicate> {
    (
        arbitrary_pdf(),
        0.02f64..0.4,
        10.0f64..10_000.0,
        prop_oneof![
            (0.1f64..5.0).prop_map(|c1| VerticalRule::Logarithmic { c1 }),
            (0.1f64..5.0).prop_map(|c1| VerticalRule::LogarithmicDecreasing { c1 }),
            (0.0f64..=1.0).prop_map(|d1| VerticalRule::Constant { d1 }),
        ],
        prop_oneof![
            (0.1f64..5.0).prop_map(|c2| HorizontalRule::LogarithmicConstant { c2 }),
            (0.0f64..=1.0).prop_map(|d2| HorizontalRule::Constant { d2 }),
        ],
    )
        .prop_map(|(pdf, epsilon, n_star, vertical, horizontal)| {
            AvmemPredicate::new(epsilon, n_star, vertical, horizontal, pdf)
        })
}

proptest! {
    #[test]
    fn threshold_is_always_a_probability(
        pred in arbitrary_predicate(),
        x in 0.0f64..=1.0,
        y in 0.0f64..=1.0,
    ) {
        let t = pred.threshold(Availability::saturating(x), Availability::saturating(y));
        prop_assert!((0.0..=1.0).contains(&t), "threshold {t}");
    }

    #[test]
    fn membership_is_consistent_and_third_party_verifiable(
        pred in arbitrary_predicate(),
        xid in any::<u64>(),
        yid in any::<u64>(),
        xav in 0.0f64..=1.0,
        yav in 0.0f64..=1.0,
    ) {
        prop_assume!(xid != yid);
        let x = NodeInfo::new(NodeId::new(xid), Availability::saturating(xav));
        let y = NodeInfo::new(NodeId::new(yid), Availability::saturating(yav));
        // Consistency: repeated evaluation agrees.
        prop_assert_eq!(pred.member(x, y), pred.member(x, y));
        // Verifiability: the decision is exactly H ≤ f, reproducible by
        // any third party from public inputs.
        let expected = consistent_hash(x.id, y.id)
            <= pred.threshold(x.availability, y.availability);
        prop_assert_eq!(pred.member(x, y), expected);
    }

    #[test]
    fn cushion_is_monotone(
        pred in arbitrary_predicate(),
        xid in any::<u64>(),
        yid in any::<u64>(),
        xav in 0.0f64..=1.0,
        yav in 0.0f64..=1.0,
        c1 in 0.0f64..0.5,
        c2 in 0.0f64..0.5,
    ) {
        prop_assume!(xid != yid);
        let x = NodeInfo::new(NodeId::new(xid), Availability::saturating(xav));
        let y = NodeInfo::new(NodeId::new(yid), Availability::saturating(yav));
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        // A larger cushion never rejects what a smaller one accepted.
        if pred.member_with_cushion(x, y, lo) {
            prop_assert!(pred.member_with_cushion(x, y, hi));
        }
    }

    #[test]
    fn sliver_classification_matches_band(
        pred in arbitrary_predicate(),
        xav in 0.0f64..=1.0,
        yav in 0.0f64..=1.0,
    ) {
        let x = Availability::saturating(xav);
        let y = Availability::saturating(yav);
        let sliver = pred.sliver(x, y);
        if x.distance(y) < pred.epsilon() {
            prop_assert_eq!(sliver, Sliver::Horizontal);
        } else {
            prop_assert_eq!(sliver, Sliver::Vertical);
        }
    }

    #[test]
    fn classify_hashed_agrees_with_classify(
        pred in arbitrary_predicate(),
        xid in any::<u64>(),
        yid in any::<u64>(),
        xav in 0.0f64..=1.0,
        yav in 0.0f64..=1.0,
    ) {
        let x = NodeInfo::new(NodeId::new(xid), Availability::saturating(xav));
        let y = NodeInfo::new(NodeId::new(yid), Availability::saturating(yav));
        let hash = consistent_hash(x.id, y.id);
        prop_assert_eq!(pred.classify(x, y), pred.classify_hashed(x, y, hash, 0.0));
    }

    #[test]
    fn random_predicate_ignores_availability(
        p in 0.0f64..=1.0,
        a1 in 0.0f64..=1.0,
        a2 in 0.0f64..=1.0,
        b1 in 0.0f64..=1.0,
        b2 in 0.0f64..=1.0,
    ) {
        let pred = RandomPredicate::new(p);
        prop_assert_eq!(
            pred.threshold(Availability::saturating(a1), Availability::saturating(a2)),
            pred.threshold(Availability::saturating(b1), Availability::saturating(b2))
        );
    }

    #[test]
    fn target_contains_iff_distance_zero_for_ranges(
        lo in 0.0f64..=1.0,
        width in 0.0f64..=1.0,
        av in 0.0f64..=1.0,
    ) {
        let hi = (lo + width).min(1.0);
        let target = AvailabilityTarget::range(lo, hi);
        let a = Availability::saturating(av);
        prop_assert_eq!(target.contains(a), target.distance(a) == 0.0);
    }

    #[test]
    fn target_distance_is_monotone_toward_range(
        lo in 0.2f64..0.8,
        av1 in 0.0f64..=1.0,
        av2 in 0.0f64..=1.0,
    ) {
        let target = AvailabilityTarget::threshold(lo);
        let (near, far) = if (av1 - lo).abs() <= (av2 - lo).abs() {
            (av1, av2)
        } else {
            (av2, av1)
        };
        // Below the threshold, closer availabilities have smaller distance.
        if near <= lo && far <= lo {
            prop_assert!(
                target.distance(Availability::saturating(near))
                    <= target.distance(Availability::saturating(far))
            );
        }
    }

    #[test]
    fn nearest_edge_is_inside_or_on_the_target(
        lo in 0.0f64..=1.0,
        width in 0.0f64..0.5,
        av in 0.0f64..=1.0,
    ) {
        let hi = (lo + width).min(1.0);
        let target = AvailabilityTarget::range(lo, hi);
        let edge = target.nearest_edge(Availability::saturating(av));
        prop_assert!(edge >= lo - 1e-12 && edge <= hi + 1e-12);
    }
}

/// Oracle over a fixed table for membership property tests.
#[derive(Debug)]
struct VecOracle(Vec<f64>);

impl AvailabilityOracle for VecOracle {
    fn estimate(&self, _q: NodeId, target: NodeId, _now: SimTime) -> Option<Availability> {
        self.0
            .get(target.raw() as usize)
            .map(|&v| Availability::saturating(v))
    }
}

proptest! {
    #[test]
    fn discovery_lists_satisfy_predicate_and_are_duplicate_free(
        avs in proptest::collection::vec(0.0f64..=1.0, 2..60),
        seed_av in 0.0f64..=1.0,
    ) {
        let oracle = VecOracle(avs.clone());
        let pdf = AvailabilityPdf::from_sample(
            &avs.iter().map(|&a| Availability::saturating(a)).collect::<Vec<_>>(),
            10,
        );
        let pred = AvmemPredicate::paper_default(avs.len().max(2) as f64, pdf);
        let own = NodeInfo::new(NodeId::new(0), Availability::saturating(seed_av));
        let mut membership = Membership::new(NodeId::new(0));
        let candidates: Vec<NodeId> = (0..avs.len() as u64).map(NodeId::new).collect();
        // Discover twice: the second pass must add nothing (idempotence).
        let first = membership.discover(own, candidates.clone(), &oracle, &pred, SimTime::ZERO);
        let second = membership.discover(own, candidates, &oracle, &pred, SimTime::ZERO);
        prop_assert_eq!(second, 0, "discovery must be idempotent");
        prop_assert_eq!(membership.len(), first);

        // No duplicates, no self, and every entry satisfies the predicate.
        let mut seen = std::collections::HashSet::new();
        for nb in membership.neighbors(SliverScope::Both) {
            prop_assert!(nb.id != NodeId::new(0));
            prop_assert!(seen.insert(nb.id));
            let info = NodeInfo::new(nb.id, nb.cached_availability);
            prop_assert!(pred.member(own, info));
        }

        // Refresh against the same oracle keeps everything.
        let outcome = membership.refresh(own, &oracle, &pred, SimTime::ZERO);
        prop_assert_eq!(outcome.evicted, 0);
        prop_assert_eq!(outcome.migrated, 0);
    }

    #[test]
    fn hs_and_vs_partition_by_band(
        avs in proptest::collection::vec(0.0f64..=1.0, 2..60),
        own_av in 0.0f64..=1.0,
    ) {
        let oracle = VecOracle(avs.clone());
        let pdf = AvailabilityPdf::uniform(10);
        let pred = AvmemPredicate::paper_default(avs.len().max(2) as f64, pdf);
        let own = NodeInfo::new(NodeId::new(0), Availability::saturating(own_av));
        let mut membership = Membership::new(NodeId::new(0));
        membership.discover(
            own,
            (0..avs.len() as u64).map(NodeId::new),
            &oracle,
            &pred,
            SimTime::ZERO,
        );
        for nb in membership.hs() {
            prop_assert!(
                nb.cached_availability.distance(own.availability) < pred.epsilon()
            );
        }
        for nb in membership.vs() {
            prop_assert!(
                nb.cached_availability.distance(own.availability) >= pred.epsilon()
            );
        }
    }
}
